"""Abstract cache array: lookup, replacement-candidate generation, commit.

The controller/array split mirrors the paper's model (Section IV-A): the
*array* owns block placement and produces a list of replacement
candidates on a miss; the *replacement policy* owns the global eviction
ordering. The array API is a two-phase replacement:

1. :meth:`CacheArray.build_replacement` — collect candidates (for a
   zcache this is the walk; for a set-associative cache, the set).
2. :meth:`CacheArray.commit_replacement` — evict the chosen candidate,
   perform any relocations, and install the incoming block.

Positions are ``(way, index)`` pairs; storage is a dense per-way line
array plus an address → position map kept exactly in sync.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, NamedTuple, Optional

if TYPE_CHECKING:
    from repro.obs import ObsContext
    from repro.obs.events import TraceBus


class Position(NamedTuple):
    """A physical line location: way number and line index within it.

    A NamedTuple rather than a dataclass: the zcache walk creates one
    per tag read, and tuple construction/compare is measurably faster.
    """

    way: int
    index: int


@dataclass(slots=True)
class Candidate:
    """One replacement candidate produced by the array.

    Attributes
    ----------
    position:
        Where the candidate lives.
    address:
        Resident block address, or ``None`` if the slot is empty (the
        incoming block chain can end here without evicting anything).
    level:
        Walk depth: 0 for first-level candidates. Equals the number of
        relocations committing this candidate costs.
    parent:
        The walk-tree parent; ``None`` at level 0. Committing candidate
        ``c`` moves ``c.parent``'s block into ``c.position``, and so on
        up to the root, whose position receives the incoming block.
    valid:
        False if the ancestor path revisits a position (a walk repeat
        that would corrupt relocation); such candidates must not be
        chosen.
    """

    position: Position
    address: Optional[int]
    level: int = 0
    parent: Optional["Candidate"] = None
    valid: bool = True

    def path_to_root(self) -> list["Candidate"]:
        """Candidates from self up to (and including) the level-0 root."""
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path


@dataclass(slots=True)
class Replacement:
    """The outcome of a candidate-collection phase for one miss."""

    incoming: int
    candidates: list[Candidate] = field(default_factory=list)
    tag_reads: int = 0
    #: True when the walk stopped before reaching its configured depth
    #: (candidate cap hit — the paper's bandwidth-pressure early stop).
    truncated: bool = False
    #: True when *every* resident block is a candidate (fully-associative
    #: arrays). The candidate list may then be left empty; the controller
    #: asks the policy for its global victim instead of enumerating.
    exhaustive: bool = False

    def usable(self) -> list[Candidate]:
        """Candidates safe to commit (valid relocation paths)."""
        return [c for c in self.candidates if c.valid]

    def first_empty(self) -> Optional[Candidate]:
        """Shallowest empty-slot candidate, or None.

        Filling an empty slot needs no eviction; preferring the
        shallowest one minimises relocations.
        """
        best: Optional[Candidate] = None
        for cand in self.candidates:
            if cand.address is None and cand.valid:
                if best is None or cand.level < best.level:
                    best = cand
        return best


@dataclass(slots=True)
class CommitResult:
    """What committing a replacement did."""

    evicted: Optional[int]
    relocations: int


class CacheArray(abc.ABC):
    """Base class owning block storage for ``num_ways x lines_per_way``."""

    def __init__(self, num_ways: int, lines_per_way: int) -> None:
        if num_ways < 1:
            raise ValueError(f"num_ways must be >= 1, got {num_ways}")
        if lines_per_way < 1:
            raise ValueError(f"lines_per_way must be >= 1, got {lines_per_way}")
        self.num_ways = num_ways
        self.lines_per_way = lines_per_way
        self.num_blocks = num_ways * lines_per_way
        self._lines: list[list[Optional[int]]] = [
            [None] * lines_per_way for _ in range(num_ways)
        ]
        self._pos: dict[int, Position] = {}
        # ZScope bindings; None/defaults until attach_obs is called.
        self._trace: Optional["TraceBus"] = None
        self._trace_label: str = type(self).__name__

    # -- observability ------------------------------------------------------
    def attach_obs(self, obs: "ObsContext", label: Optional[str] = None) -> None:
        """Bind this array to an observability context.

        Registers the array's geometry gauges under ``<scope>.array`` and
        binds the trace bus so commits emit relocation events. Subclasses
        extend this to register their own metrics (the zcache re-homes
        its walk counters under ``<scope>.walk``), which resets those
        counters — attach before use, as
        :class:`~repro.core.controller.Cache` does.
        """
        self._trace = obs.trace if obs.trace.enabled else None
        self._trace_label = label or obs.label or type(self).__name__
        geometry = obs.metrics.scoped("array")
        geometry.gauge("ways").set(self.num_ways)
        geometry.gauge("lines_per_way").set(self.lines_per_way)
        geometry.gauge("blocks").set(self.num_blocks)

    # -- storage primitives -------------------------------------------------
    def _read(self, pos: Position) -> Optional[int]:
        return self._lines[pos.way][pos.index]

    def _write(self, pos: Position, address: Optional[int]) -> None:
        # Guard before any mutation: rejecting a duplicate after the old
        # block's map entry is dropped would leave the array corrupted
        # exactly when the caller most needs a clean state to retry from
        # (the ZS106 exception-state-safety contract).
        if (
            address is not None
            and self._pos.get(address, pos) != pos
        ):
            raise RuntimeError(
                f"block {address:#x} would be duplicated in the array"
            )
        old = self._lines[pos.way][pos.index]
        if old is not None:
            del self._pos[old]
        self._lines[pos.way][pos.index] = address
        if address is not None:
            self._pos[address] = pos

    # -- public interface ---------------------------------------------------
    def lookup(self, address: int) -> Optional[Position]:
        """Position of ``address`` if resident, else None."""
        return self._pos.get(address)

    def read_position(self, pos: Position) -> Optional[int]:
        """Resident block address at ``pos`` (None for an empty line).

        The public read used by the two-phase freshness check: a
        prepared walk records (position, address) pairs, and a commit
        must re-verify every one of them against current state before
        mutating anything.
        """
        return self._read(pos)

    def __contains__(self, address: int) -> bool:
        return address in self._pos

    def __len__(self) -> int:
        """Number of resident blocks."""
        return len(self._pos)

    def resident(self) -> Iterator[int]:
        """Iterate over resident block addresses."""
        return iter(self._pos)

    @property
    def occupancy(self) -> float:
        """Fraction of lines holding a block."""
        return len(self._pos) / self.num_blocks

    def evict_address(self, address: int) -> None:
        """Forcibly remove a block (invalidation / inclusion victim)."""
        pos = self._pos.get(address)
        if pos is None:
            raise KeyError(f"evicting non-resident block {address:#x}")
        self._lines[pos.way][pos.index] = None
        del self._pos[address]

    @abc.abstractmethod
    def build_replacement(self, address: int) -> Replacement:
        """Collect replacement candidates for an incoming block.

        ``address`` must not be resident (that would be a hit).
        """

    def check_path(self, chosen: Candidate) -> None:
        """Verify a walk path is still accurate (not stale).

        The walk records (position, address) pairs; any interleaved
        operation — an invalidation, or a second walk's relocations in
        the two-phase controller — can move the recorded blocks. Every
        node on the relocation path must still hold its recorded block,
        or committing would corrupt the array.

        Raises
        ------
        RuntimeError
            If any node on the path went stale.
        """
        for node in chosen.path_to_root():
            if self._read(node.position) != node.address:
                raise RuntimeError(
                    f"stale walk path: position {node.position} no longer "
                    f"holds {node.address!r}"
                )

    def commit_replacement(self, repl: Replacement, chosen: Candidate) -> CommitResult:
        """Evict ``chosen`` and relocate its ancestors to admit the block.

        Works for every array type: in arrays without relocation
        (set-associative), candidates are all level 0 and the loop body
        never runs.
        """
        if not chosen.valid:
            raise ValueError("cannot commit a candidate with an invalid path")
        if repl.incoming in self._pos:
            raise RuntimeError(f"incoming block {repl.incoming:#x} already resident")
        self.check_path(chosen)
        evicted = chosen.address
        if evicted is not None:
            self.evict_address(evicted)
        relocations = 0
        trace = self._trace
        node = chosen
        while node.parent is not None:
            parent = node.parent
            moving = parent.address
            assert moving is not None, "internal walk nodes always hold a block"
            self.evict_address(moving)
            self._write(node.position, moving)
            if trace is not None:
                trace.relocation(
                    self._trace_label, moving, parent.position, node.position,
                    node.level,
                )
            relocations += 1
            node = parent
        self._write(node.position, repl.incoming)
        return CommitResult(evicted=evicted, relocations=relocations)

    def check_invariants(self) -> None:
        """Verify storage consistency (used by property-based tests)."""
        seen: dict[int, Position] = {}
        for way in range(self.num_ways):
            for index in range(self.lines_per_way):
                addr = self._lines[way][index]
                if addr is None:
                    continue
                if addr in seen:
                    raise AssertionError(
                        f"block {addr:#x} stored at both {seen[addr]} and "
                        f"({way},{index})"
                    )
                seen[addr] = Position(way, index)
        if seen != self._pos:
            raise AssertionError("position map out of sync with line storage")
