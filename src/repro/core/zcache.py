"""The zcache array (paper Section III).

Each way is indexed by a different hash function; a block can live in
exactly one position per way, so a hit costs a single W-way lookup — the
latency and energy of a W-way cache. On a miss, the controller *walks*
the tag array: the W first-level candidates' addresses are re-hashed
with the other ways' functions, yielding up to W*(W-1) second-level
candidates, and so on — a breadth-first expansion giving

    R = W * sum_{l=0}^{L-1} (W-1)^l

replacement candidates after L levels (Section III-B). Evicting a
candidate at level ``l`` relocates its ``l`` ancestors (cuckoo-hashing
style) so the incoming block lands at a level-0 position.

Extensions implemented (Section III-D):

- *Early stop*: ``candidate_limit`` truncates the walk, trading
  associativity for tag bandwidth/energy.
- *Repeat suppression*: ``repeat_filter="exact"`` stops expansion through
  already-visited addresses with a precise set; ``"bloom"`` uses the
  paper's Bloom filter (false positives prune a few legitimate paths,
  which is safe — just fewer candidates).
- *Walk strategy*: ``strategy="bfs"`` (paper default) or ``"dfs"``
  (cuckoo-style single chain, more relocations per candidate).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Position,
    Replacement,
)
from repro.hashing.base import HashFunction, make_hash_family
from repro.obs.metrics import IntHistogram, MetricsRegistry, RegistryStats
from repro.util.bloom import BloomFilter

if TYPE_CHECKING:
    from repro.obs import ObsContext


def replacement_candidates(num_ways: int, levels: int) -> int:
    """Paper formula: R = W * sum_{l=0}^{L-1} (W-1)^l, assuming no repeats.

    A one-level walk (L=1) is a skew-associative cache: R = W. The walk
    needs at least two ways: with W=1 there are no alternative
    positions to expand into and the formula degenerates to R=1 for
    every L, which silently misrepresents the geometry — so it is
    rejected rather than returned.
    """
    if num_ways < 2:
        raise ValueError(
            f"num_ways must be >= 2 for a zcache walk, got {num_ways}"
        )
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    return num_ways * sum((num_ways - 1) ** l for l in range(levels))


def expected_relocations(num_ways: int, levels: int) -> float:
    """Expected relocations per replacement under the uniformity assumption.

    If every candidate is equally likely to be the victim (exchangeable
    priorities), the chosen level's distribution is proportional to the
    level sizes, so E[m] = sum(l * W*(W-1)^l) / R. Real walks measure
    slightly below this (repeats, free-slot endings, and the residual
    candidate correlation all bias towards shallower commits).
    """
    r = replacement_candidates(num_ways, levels)
    weighted = sum(
        level * num_ways * (num_ways - 1) ** level for level in range(levels)
    )
    return weighted / r


def levels_for_candidates(num_ways: int, target: int) -> int:
    """Smallest walk depth L such that R(W, L) >= target.

    ``num_ways`` is validated by :func:`replacement_candidates` (>= 2);
    R(W, L) is then strictly increasing in L — R(2, L) = 2L, more ways
    grow geometrically — so the loop always terminates.
    """
    if target < 1:
        raise ValueError(f"target must be >= 1, got {target}")
    levels = 1
    while replacement_candidates(num_ways, levels) < target:
        levels += 1
    return levels


class WalkStats(RegistryStats):
    """Cumulative replacement-walk statistics.

    Registry-backed since ZScope: every counter is a registered
    :class:`~repro.obs.metrics.Counter` and the commit-level histogram
    a registered :class:`~repro.obs.metrics.IntHistogram`, so walk
    behaviour shows up in metric snapshots as ``<scope>.walks``,
    ``<scope>.commit_level`` and friends. Attribute reads and writes
    work exactly as they did when this was a slotted dataclass.
    """

    _COUNTER_FIELDS = (
        "walks",
        "tag_reads",
        "candidates",
        "repeats",
        "truncated_walks",
        "relocations",
    )

    _levels: IntHistogram

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        super().__init__(registry)
        object.__setattr__(
            self, "_levels", self.registry.int_histogram("commit_level")
        )

    @property
    def level_hist(self) -> list[int]:
        """Histogram of chosen-candidate levels (index = level).

        A live view of the registered histogram's dense counts.
        """
        return self._levels.counts

    def record_commit_level(self, level: int) -> None:
        """Count one committed replacement at walk depth ``level``."""
        self._levels.observe(level)

    def merge(self, other: "WalkStats") -> None:
        """Accumulate another instance's counts into this one."""
        self.merge_counters(other)
        self._levels.add_counts(other.level_hist)

    @property
    def mean_candidates_per_walk(self) -> float:
        """Average candidates collected per walk (0.0 before any walk)."""
        c = self.counters()
        walks = c["walks"].value
        return c["candidates"].value / walks if walks else 0.0

    @property
    def mean_relocations_per_walk(self) -> float:
        """Average relocations committed per walk (0.0 before any walk)."""
        c = self.counters()
        walks = c["walks"].value
        return c["relocations"].value / walks if walks else 0.0


class ZCacheArray(CacheArray):
    """A W-way zcache with an L-level replacement walk.

    Parameters
    ----------
    num_ways:
        Physical ways, each with its own hash function.
    lines_per_way:
        Lines per way (power of two).
    levels:
        Walk depth L. ``levels=1`` collects only first-level candidates,
        i.e. behaves as a skew-associative cache.
    hash_kind:
        ``"h3"`` (paper default), ``"mix"`` or ``"bitsel"``.
    hash_seed:
        Seed for the hash family.
    candidate_limit:
        Optional cap on candidates collected; the walk stops early once
        reached (bandwidth-pressure mode). ``None`` = full walk.
    repeat_filter:
        ``None`` (allow repeats, paper default for large caches),
        ``"exact"`` or ``"bloom"``.
    strategy:
        ``"bfs"`` (paper default) or ``"dfs"`` (cuckoo-style chain whose
        depth is chosen to examine a comparable number of candidates).
    seed:
        RNG seed for the DFS strategy's random chain choices.
    """

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        levels: int = 2,
        hash_kind: str = "h3",
        hash_seed: int = 0,
        candidate_limit: Optional[int] = None,
        repeat_filter: Optional[str] = None,
        strategy: str = "bfs",
        seed: int = 0,
        hashes: Optional[Sequence[HashFunction]] = None,
    ) -> None:
        super().__init__(num_ways, lines_per_way)
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        if repeat_filter not in (None, "exact", "bloom"):
            raise ValueError(f"unknown repeat_filter: {repeat_filter!r}")
        if strategy not in ("bfs", "dfs"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        if candidate_limit is not None and candidate_limit < num_ways:
            raise ValueError(
                f"candidate_limit must allow at least the {num_ways} "
                f"first-level candidates"
            )
        self.levels = levels
        self.candidate_limit = candidate_limit
        self.repeat_filter = repeat_filter
        self.strategy = strategy
        if hashes is not None:
            if len(hashes) != num_ways:
                raise ValueError("need exactly one hash function per way")
            self.hashes = list(hashes)
        else:
            self.hashes = make_hash_family(hash_kind, num_ways, lines_per_way, hash_seed)
        self._rng = random.Random(seed)
        self.stats = WalkStats()
        self._bind_stat_refs()

    def _bind_stat_refs(self) -> None:
        """Cache counter objects for the walk's hot increments.

        ``counter.value += 1`` on a cached ref costs the same as the old
        plain-attribute increment; going through the stats facade each
        time would not.
        """
        c = self.stats.counters()
        self._c_walks = c["walks"]
        self._c_tag_reads = c["tag_reads"]
        self._c_candidates = c["candidates"]
        self._c_repeats = c["repeats"]
        self._c_truncated_walks = c["truncated_walks"]
        self._c_relocations = c["relocations"]

    def attach_obs(self, obs: "ObsContext", label: Optional[str] = None) -> None:
        """Re-home walk statistics under ``<scope>.walk`` in the registry.

        Replaces the private :class:`WalkStats` built at construction
        with one registered in the context (resetting the counters, so
        attach before use) and records the walk depth as a gauge.
        """
        super().attach_obs(obs, label)
        self.stats = WalkStats(obs.metrics.scoped("walk"))
        self._bind_stat_refs()
        obs.metrics.scoped("array").gauge("levels").set(self.levels)

    # -- helpers -------------------------------------------------------------
    def _home_positions(self, address: int) -> list[Position]:
        """The W legal positions of a block: one per way."""
        return [Position(w, self.hashes[w](address)) for w in range(self.num_ways)]

    def nominal_candidates(self) -> int:
        """R for this configuration, per the paper's formula."""
        r = replacement_candidates(self.num_ways, self.levels)
        if self.candidate_limit is not None:
            r = min(r, self.candidate_limit)
        return r

    def _make_child(self, parent: Candidate, way: int) -> Candidate:
        """Expand ``parent`` into ``way`` (one tag read)."""
        assert parent.address is not None
        pos = Position(way, self.hashes[way](parent.address))
        resident = self._read(pos)
        child = Candidate(
            position=pos, address=resident, level=parent.level + 1, parent=parent
        )
        # A relocation path must not visit the same position twice; a
        # repeat along the ancestor chain would corrupt the relocations.
        # Walk depths are tiny, so an inline ancestor scan beats sets.
        node = parent
        while node is not None:
            if node.position == pos:
                child.valid = False
                break
            node = node.parent
        return child

    def _new_repeat_tracker(self, incoming: int):
        if self.repeat_filter == "exact":
            seen: set[int] = {incoming}
            return seen
        if self.repeat_filter == "bloom":
            bloom = BloomFilter(num_bits=1024, num_hashes=2)
            bloom.add(incoming)
            return bloom
        return None

    # -- walk ----------------------------------------------------------------
    def build_replacement(self, address: int) -> Replacement:
        if address in self._pos:
            raise RuntimeError(f"build_replacement for resident block {address:#x}")
        repl = Replacement(incoming=address)
        tracker = self._new_repeat_tracker(address)
        seen_positions: set[Position] = set()

        def note(cand: Candidate) -> bool:
            """Record a candidate; return True if it was a repeat."""
            repl.candidates.append(cand)
            repl.tag_reads += 1
            repeat = cand.position in seen_positions
            if repeat:
                self._c_repeats.value += 1
            seen_positions.add(cand.position)
            if tracker is not None and cand.address is not None:
                if cand.address in tracker:
                    repeat = True
                    self._c_repeats.value += 1
                else:
                    tracker.add(cand.address)
            return repeat

        frontier: list[Candidate] = []
        for way in range(self.num_ways):
            pos = Position(way, self.hashes[way](address))
            cand = Candidate(position=pos, address=self._read(pos), level=0)
            repeat = note(cand)
            if cand.address is not None and not (repeat and tracker is not None):
                frontier.append(cand)

        if self.strategy == "bfs":
            self._walk_bfs(repl, frontier, note)
        else:
            self._walk_dfs(repl, frontier, note)

        self._c_walks.value += 1
        self._c_tag_reads.value += repl.tag_reads
        self._c_candidates.value += len(repl.candidates)
        if repl.truncated:
            self._c_truncated_walks.value += 1
        return repl

    def build_reinsertion(self, address: int) -> Replacement:
        """Walk for *re-inserting* a resident block elsewhere.

        Used by the two-phase BFS extension (Section III-D): after the
        primary walk picks victim N, a second walk rooted at N's
        alternative positions finds somewhere to move N instead of
        evicting it, doubling the candidate pool with no extra walk
        state. Level 0 consists of N's W-1 other home positions.
        """
        pos = self._pos.get(address)
        if pos is None:
            raise RuntimeError(
                f"build_reinsertion for non-resident block {address:#x}"
            )
        repl = Replacement(incoming=address)
        tracker = self._new_repeat_tracker(address)
        seen_positions: set[Position] = {pos}

        def note(cand: Candidate) -> bool:
            repl.candidates.append(cand)
            repl.tag_reads += 1
            repeat = cand.position in seen_positions
            if repeat:
                self._c_repeats.value += 1
            seen_positions.add(cand.position)
            if tracker is not None and cand.address is not None:
                if cand.address in tracker:
                    repeat = True
                    self._c_repeats.value += 1
                else:
                    tracker.add(cand.address)
            return repeat

        frontier: list[Candidate] = []
        for way in range(self.num_ways):
            if way == pos.way:
                continue
            root = Position(way, self.hashes[way](address))
            cand = Candidate(position=root, address=self._read(root), level=0)
            repeat = note(cand)
            if cand.address is not None and not (repeat and tracker is not None):
                frontier.append(cand)
        self._walk_bfs(repl, frontier, note)
        self._c_walks.value += 1
        self._c_tag_reads.value += repl.tag_reads
        self._c_candidates.value += len(repl.candidates)
        return repl

    def commit_reinsertion(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Move the (resident) block of ``repl.incoming`` into the slot
        freed by evicting ``chosen``, relocating the path between them.

        The block's old position is left empty for the caller (the
        two-phase controller installs the original incoming block
        there). The path is validated *before* the block is detached so
        a stale path raises without mutating the array."""
        self.check_path(chosen)
        self.evict_address(repl.incoming)
        return self.commit_replacement(repl, chosen)

    def _at_limit(self, repl: Replacement) -> bool:
        return (
            self.candidate_limit is not None
            and len(repl.candidates) >= self.candidate_limit
        )

    def _walk_bfs(self, repl: Replacement, frontier: list[Candidate], note) -> None:
        """Breadth-first expansion, level by level (paper default)."""
        for _level in range(1, self.levels):
            next_frontier: list[Candidate] = []
            for node in frontier:
                if node.address is None:
                    continue
                for way in range(self.num_ways):
                    if way == node.position.way:
                        continue
                    if self._at_limit(repl):
                        repl.truncated = True
                        return
                    child = self._make_child(node, way)
                    repeat = note(child)
                    expandable = (
                        child.valid
                        and child.address is not None
                        and not (repeat and self.repeat_filter is not None)
                    )
                    if expandable:
                        next_frontier.append(child)
            frontier = next_frontier
            if not frontier:
                return

    def _walk_dfs(self, repl: Replacement, frontier: list[Candidate], note) -> None:
        """Depth-first (cuckoo-style) walk.

        One random level-0 candidate is displaced down a single chain.
        The chain depth is chosen so the number of candidates examined is
        comparable to the BFS configuration (L_dfs ~= R/W per the paper's
        discussion), exposing DFS's higher relocation count.
        """
        target = replacement_candidates(self.num_ways, self.levels)
        if self.candidate_limit is not None:
            target = min(target, self.candidate_limit)
        occupied = [c for c in frontier if c.address is not None and c.valid]
        if not occupied:
            return
        node = self._rng.choice(occupied)
        while len(repl.candidates) < target:
            if node.address is None or not node.valid:
                return
            children: list[Candidate] = []
            for way in range(self.num_ways):
                if way == node.position.way:
                    continue
                if self._at_limit(repl) or len(repl.candidates) >= target:
                    repl.truncated = self._at_limit(repl)
                    break
                child = self._make_child(node, way)
                repeat = note(child)
                if child.valid and not (repeat and self.repeat_filter is not None):
                    children.append(child)
            empties = [c for c in children if c.address is None]
            if empties:
                # The chain can terminate in a free slot; no point going on.
                return
            expandable = [c for c in children if c.address is not None]
            if not expandable:
                return
            node = self._rng.choice(expandable)

    def commit_replacement(
        self, repl: Replacement, chosen: Candidate
    ) -> "CommitResult":
        result = super().commit_replacement(repl, chosen)
        self._c_relocations.value += result.relocations
        self.stats.record_commit_level(chosen.level)
        return result

    def check_invariants(self) -> None:
        super().check_invariants()
        # Every block must sit at the hash of its address for its way.
        for addr, pos in self._pos.items():
            expected = self.hashes[pos.way](addr)
            if pos.index != expected:
                raise AssertionError(
                    f"block {addr:#x} at index {pos.index} of way {pos.way}, "
                    f"but hashes to {expected}"
                )
