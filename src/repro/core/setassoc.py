"""Conventional set-associative cache array.

All ways share one index function: plain bit selection by default, or a
hash of the block address (paper Section II-A; the evaluation's baseline
is a 4-way set-associative cache with H3 index hashing). Replacement
candidates are the W blocks of the indexed set; installation never
relocates anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import CacheArray, Candidate, Position, Replacement
from repro.hashing.base import HashFunction, make_hash_family

if TYPE_CHECKING:
    from repro.obs import ObsContext


class SetAssociativeArray(CacheArray):
    """W-way set-associative array with ``lines_per_way`` sets.

    Parameters
    ----------
    num_ways:
        Associativity.
    lines_per_way:
        Number of sets (power of two).
    hash_kind:
        Index function: ``"bitsel"`` (conventional), ``"h3"``, ``"mix"``.
    hash_seed:
        Seed for hashed indexing.
    """

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        hash_kind: str = "bitsel",
        hash_seed: int = 0,
        index_hash: Optional[HashFunction] = None,
    ) -> None:
        super().__init__(num_ways, lines_per_way)
        if index_hash is not None:
            if index_hash.num_lines != lines_per_way:
                raise ValueError("index_hash sized for a different set count")
            self.index_hash = index_hash
        else:
            self.index_hash = make_hash_family(hash_kind, 1, lines_per_way, hash_seed)[0]

    def attach_obs(self, obs: "ObsContext", label: Optional[str] = None) -> None:
        """Also record the set count as an ``array.sets`` gauge."""
        super().attach_obs(obs, label)
        obs.metrics.scoped("array").gauge("sets").set(self.num_sets)

    @property
    def num_sets(self) -> int:
        """Alias: in a set-associative array, lines per way = sets."""
        return self.lines_per_way

    def set_index(self, address: int) -> int:
        """Set index for a block address."""
        return self.index_hash(address)

    def set_contents(self, index: int) -> list[Optional[int]]:
        """Blocks currently in set ``index``, one entry per way."""
        return [self._lines[w][index] for w in range(self.num_ways)]

    def build_replacement(self, address: int) -> Replacement:
        if address in self._pos:
            raise RuntimeError(f"build_replacement for resident block {address:#x}")
        index = self.set_index(address)
        repl = Replacement(incoming=address)
        for way in range(self.num_ways):
            pos = Position(way, index)
            repl.candidates.append(
                Candidate(position=pos, address=self._read(pos), level=0)
            )
        # One set read resolves all W tags in a set-associative lookup.
        repl.tag_reads = self.num_ways
        return repl

    def check_invariants(self) -> None:
        super().check_invariants()
        for addr, pos in self._pos.items():
            expected = self.set_index(addr)
            if pos.index != expected:
                raise AssertionError(
                    f"block {addr:#x} in set {pos.index}, expected {expected}"
                )
