"""Victim-cache baseline (paper Section II-B, Jouppi 1990).

A conventional set-associative main array backed by a small
fully-associative victim buffer. Blocks evicted from the main array park
in the buffer; a miss that hits the buffer swaps the block back
(avoiding the memory access). The paper's critique, which this
implementation lets you measure: the buffer only absorbs conflict misses
that are re-referenced *soon*, it works poorly when several sets run hot
at once, and every main-array miss pays the buffer probe.

This is a *composite* design, so unlike the single-array designs it is
exposed as a controller-level class rather than a ``CacheArray``; it
offers an ``access``/``stats`` surface compatible with
:class:`~repro.core.controller.Cache` where it matters.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import AccessResult, Cache
from repro.core.fullyassoc import FullyAssociativeArray
from repro.core.setassoc import SetAssociativeArray
from repro.obs import ObsContext
from repro.obs.metrics import RegistryStats
from repro.replacement import LRU


class MergedStats(RegistryStats):
    """Hit/miss view over the composite (buffer hits count as hits)."""

    _COUNTER_FIELDS = ("accesses", "hits", "misses", "writebacks")

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0.0 before the first access)."""
        c = self.counters()
        accesses = c["accesses"].value
        return c["misses"].value / accesses if accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 before the first access)."""
        c = self.counters()
        accesses = c["accesses"].value
        return c["hits"].value / accesses if accesses else 0.0


class VictimCacheStats(RegistryStats):
    """Counters specific to the composite design."""

    _COUNTER_FIELDS = ("victim_probes", "victim_hits", "swaps")

    @property
    def victim_hit_rate(self) -> float:
        """Buffer hits over buffer probes (0.0 before the first probe)."""
        c = self.counters()
        probes = c["victim_probes"].value
        return c["victim_hits"].value / probes if probes else 0.0


class VictimCache:
    """Set-associative main cache + fully-associative victim buffer.

    Parameters
    ----------
    num_ways, lines_per_way:
        Main array geometry.
    victim_entries:
        Victim buffer capacity (Jouppi used 1-16 entries).
    hash_kind:
        Main-array index function.
    policy_factory:
        Replacement policy factory for the main array (buffer is LRU).
    """

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        victim_entries: int = 16,
        hash_kind: str = "bitsel",
        hash_seed: int = 0,
        policy_factory=LRU,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if victim_entries < 1:
            raise ValueError(f"victim_entries must be >= 1, got {victim_entries}")
        self.main = Cache(
            SetAssociativeArray(
                num_ways, lines_per_way, hash_kind=hash_kind, hash_seed=hash_seed
            ),
            policy_factory(),
            name="main",
            obs=obs.scoped("main") if obs is not None else None,
        )
        self.buffer = Cache(
            FullyAssociativeArray(victim_entries),
            LRU(),
            name="victim",
            obs=obs.scoped("victim") if obs is not None else None,
        )
        metrics = obs.metrics if obs is not None else None
        self.stats = MergedStats(metrics)
        self.victim_stats = VictimCacheStats(metrics)
        self._sc = self.stats.counters()
        self._vc = self.victim_stats.counters()
        self._main_writebacks = self.main.stats.counters()["writebacks"]

    @property
    def num_blocks(self) -> int:
        return self.main.array.num_blocks + self.buffer.array.num_blocks

    def __contains__(self, address: int) -> bool:
        return address in self.main or address in self.buffer

    def __len__(self) -> int:
        return len(self.main) + len(self.buffer)

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """One access: main array first, then the victim buffer."""
        sc = self._sc
        vc = self._vc
        sc["accesses"].value += 1
        if self.main.array.lookup(address) is not None:
            self.main.access(address, is_write)
            sc["hits"].value += 1
            return AccessResult(address=address, hit=True)

        # Main miss: probe the buffer (extra latency/energy in hardware).
        vc["victim_probes"].value += 1
        swapped_dirty = False
        buffer_hit = self.buffer.array.lookup(address) is not None
        if buffer_hit:
            vc["victim_hits"].value += 1
            vc["swaps"].value += 1
            sc["hits"].value += 1
            swapped_dirty = self.buffer.is_dirty(address)
            self.buffer.array.evict_address(address)
            self.buffer.policy.on_evict(address)
            self.buffer._dirty.discard(address)
        else:
            sc["misses"].value += 1

        result = self.main.access(address, is_write)
        if swapped_dirty:
            self.main._dirty.add(address)
        if result.evicted is not None:
            # The main array's victim parks in the buffer, keeping its
            # dirty state; whatever the buffer displaces goes to memory.
            buf_result = self.buffer.access(
                result.evicted, is_write=result.writeback
            )
            # The main controller logged a writeback to memory; the data
            # actually moved sideways into the buffer, so re-attribute.
            if result.writeback:
                self._main_writebacks.value -= 1
            if buf_result.evicted is not None and buf_result.writeback:
                sc["writebacks"].value += 1
        return AccessResult(address=address, hit=buffer_hit, evicted=result.evicted)
