"""Victim-cache baseline (paper Section II-B, Jouppi 1990).

A conventional set-associative main array backed by a small
fully-associative victim buffer. Blocks evicted from the main array park
in the buffer; a miss that hits the buffer swaps the block back
(avoiding the memory access). The paper's critique, which this
implementation lets you measure: the buffer only absorbs conflict misses
that are re-referenced *soon*, it works poorly when several sets run hot
at once, and every main-array miss pays the buffer probe.

This is a *composite* design, so unlike the single-array designs it is
exposed as a controller-level class rather than a ``CacheArray``; it
offers an ``access``/``stats`` surface compatible with
:class:`~repro.core.controller.Cache` where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import AccessResult, Cache
from repro.core.fullyassoc import FullyAssociativeArray
from repro.core.setassoc import SetAssociativeArray
from repro.replacement import LRU


@dataclass(slots=True)
class MergedStats:
    """Hit/miss view over the composite (buffer hits count as hits)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(slots=True)
class VictimCacheStats:
    """Counters specific to the composite design."""

    victim_probes: int = 0
    victim_hits: int = 0
    swaps: int = 0

    @property
    def victim_hit_rate(self) -> float:
        return self.victim_hits / self.victim_probes if self.victim_probes else 0.0


class VictimCache:
    """Set-associative main cache + fully-associative victim buffer.

    Parameters
    ----------
    num_ways, lines_per_way:
        Main array geometry.
    victim_entries:
        Victim buffer capacity (Jouppi used 1-16 entries).
    hash_kind:
        Main-array index function.
    policy_factory:
        Replacement policy factory for the main array (buffer is LRU).
    """

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        victim_entries: int = 16,
        hash_kind: str = "bitsel",
        hash_seed: int = 0,
        policy_factory=LRU,
    ) -> None:
        if victim_entries < 1:
            raise ValueError(f"victim_entries must be >= 1, got {victim_entries}")
        self.main = Cache(
            SetAssociativeArray(
                num_ways, lines_per_way, hash_kind=hash_kind, hash_seed=hash_seed
            ),
            policy_factory(),
            name="main",
        )
        self.buffer = Cache(
            FullyAssociativeArray(victim_entries), LRU(), name="victim"
        )
        self.stats = MergedStats()
        self.victim_stats = VictimCacheStats()

    @property
    def num_blocks(self) -> int:
        return self.main.array.num_blocks + self.buffer.array.num_blocks

    def __contains__(self, address: int) -> bool:
        return address in self.main or address in self.buffer

    def __len__(self) -> int:
        return len(self.main) + len(self.buffer)

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """One access: main array first, then the victim buffer."""
        self.stats.accesses += 1
        if self.main.array.lookup(address) is not None:
            self.main.access(address, is_write)
            self.stats.hits += 1
            return AccessResult(address=address, hit=True)

        # Main miss: probe the buffer (extra latency/energy in hardware).
        self.victim_stats.victim_probes += 1
        swapped_dirty = False
        buffer_hit = self.buffer.array.lookup(address) is not None
        if buffer_hit:
            self.victim_stats.victim_hits += 1
            self.victim_stats.swaps += 1
            self.stats.hits += 1
            swapped_dirty = self.buffer.is_dirty(address)
            self.buffer.array.evict_address(address)
            self.buffer.policy.on_evict(address)
            self.buffer._dirty.discard(address)
        else:
            self.stats.misses += 1

        result = self.main.access(address, is_write)
        if swapped_dirty:
            self.main._dirty.add(address)
        if result.evicted is not None:
            # The main array's victim parks in the buffer, keeping its
            # dirty state; whatever the buffer displaces goes to memory.
            buf_result = self.buffer.access(
                result.evicted, is_write=result.writeback
            )
            # The main controller logged a writeback to memory; the data
            # actually moved sideways into the buffer, so re-attribute.
            if result.writeback:
                self.main.stats.writebacks -= 1
            if buf_result.evicted is not None and buf_result.writeback:
                self.stats.writebacks += 1
        return AccessResult(address=address, hit=buffer_hit, evicted=result.evicted)
