"""Fully-associative cache array.

A block may live in any of the B slots; every resident block is a
replacement candidate, so the policy always evicts its globally most
preferred block — the e = 1.0 reference point of the associativity
framework (Section IV-A). Used for conflict-miss accounting and as the
framework's ideal.
"""

from __future__ import annotations

from repro.core.base import CacheArray, Candidate, Position, Replacement


class FullyAssociativeArray(CacheArray):
    """B-slot fully-associative array (modelled as one way of B lines)."""

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        super().__init__(num_ways=1, lines_per_way=num_blocks)
        self._free: set[int] = set(range(num_blocks))

    def build_replacement(self, address: int) -> Replacement:
        if address in self._pos:
            raise RuntimeError(f"build_replacement for resident block {address:#x}")
        repl = Replacement(incoming=address)
        if self._free:
            slot = min(self._free)
            repl.candidates.append(
                Candidate(position=Position(0, slot), address=None, level=0)
            )
            repl.tag_reads = 1
            return repl
        # Every resident block is a candidate. Rather than enumerating B
        # Candidate objects per miss, mark the replacement exhaustive —
        # the controller resolves the victim through the policy's global
        # order. The single tag read models an idealised CAM lookup.
        repl.exhaustive = True
        repl.tag_reads = 1
        return repl

    def commit_replacement(self, repl, chosen):
        result = super().commit_replacement(repl, chosen)
        # The chosen slot now holds the incoming block, whatever it held
        # before; eviction bookkeeping may have marked it free meanwhile.
        self._free.discard(chosen.position.index)
        return result

    def evict_address(self, address: int) -> None:
        pos = self._pos.get(address)
        super().evict_address(address)
        if pos is not None:
            self._free.add(pos.index)
