"""Cache arrays and the cache controller.

This package implements the paper's primary contribution — the
:class:`~repro.core.zcache.ZCacheArray` with its breadth-first
replacement walk — plus every array design the paper compares against:

- :class:`~repro.core.setassoc.SetAssociativeArray` (optionally with a
  hashed index, Section II-A),
- :class:`~repro.core.skew.SkewAssociativeArray` (a zcache whose walk is
  limited to one level, i.e. first-level candidates only),
- :class:`~repro.core.fullyassoc.FullyAssociativeArray`,
- :class:`~repro.core.randomcand.RandomCandidatesArray` (the analytical
  device from Section IV-B that meets the uniformity assumption exactly).

:class:`~repro.core.controller.Cache` glues an array to a replacement
policy and keeps the statistics every experiment consumes.
"""

from repro.core.adaptive import AdaptiveZCache
from repro.core.base import CacheArray, Candidate, CommitResult, Position, Replacement
from repro.core.column import ColumnAssociativeCache
from repro.core.controller import AccessResult, Cache, CacheStats
from repro.core.fullyassoc import FullyAssociativeArray
from repro.core.randomcand import RandomCandidatesArray
from repro.core.setassoc import SetAssociativeArray
from repro.core.skew import SkewAssociativeArray
from repro.core.twophase import StaleWalkError, TwoPhaseZCache
from repro.core.victim import VictimCache
from repro.core.zcache import ZCacheArray, replacement_candidates

__all__ = [
    "Position",
    "Candidate",
    "Replacement",
    "CommitResult",
    "CacheArray",
    "Cache",
    "CacheStats",
    "AccessResult",
    "SetAssociativeArray",
    "SkewAssociativeArray",
    "ZCacheArray",
    "TwoPhaseZCache",
    "StaleWalkError",
    "AdaptiveZCache",
    "FullyAssociativeArray",
    "RandomCandidatesArray",
    "VictimCache",
    "ColumnAssociativeCache",
    "replacement_candidates",
]
