"""Random-candidates cache (paper Section IV-B).

An analytical device, not a buildable cache: blocks may live anywhere
(fully-associative placement), and on a replacement the array returns
``n`` slots drawn uniformly at random *with repetition* from the whole
cache. Because each candidate is an unbiased, independent sample of the
resident blocks, the eviction priorities E_i are i.i.d. uniform and the
associativity distribution is exactly F_A(x) = x^n — the uniformity
assumption made flesh. The repo uses it to validate the framework
(tests/assoc) and as the reference line in the Fig. 3 reproduction.
"""

from __future__ import annotations

import random

from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Position,
    Replacement,
)


class RandomCandidatesArray(CacheArray):
    """Fully-associative placement, n uniformly random candidates."""

    def __init__(self, num_blocks: int, num_candidates: int, seed: int = 0) -> None:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if num_candidates < 1:
            raise ValueError(f"num_candidates must be >= 1, got {num_candidates}")
        super().__init__(num_ways=1, lines_per_way=num_blocks)
        self.num_candidates = num_candidates
        self._rng = random.Random(seed)
        self._free: set[int] = set(range(num_blocks))

    def build_replacement(self, address: int) -> Replacement:
        if address in self._pos:
            raise RuntimeError(f"build_replacement for resident block {address:#x}")
        repl = Replacement(incoming=address)
        if self._free:
            slot = min(self._free)
            repl.candidates.append(
                Candidate(position=Position(0, slot), address=None, level=0)
            )
            repl.tag_reads = 1
            return repl
        seen_positions: set[int] = set()
        for _ in range(self.num_candidates):
            slot = self._rng.randrange(self.lines_per_way)
            pos = Position(0, slot)
            cand = Candidate(position=pos, address=self._read(pos), level=0)
            # Sampling is with repetition (paper); repeated draws stay in
            # the candidate list but only one copy can be committed.
            if slot in seen_positions:
                cand.valid = False
            seen_positions.add(slot)
            repl.candidates.append(cand)
            repl.tag_reads += 1
        return repl

    def commit_replacement(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        result = super().commit_replacement(repl, chosen)
        self._free.discard(chosen.position.index)
        return result

    def evict_address(self, address: int) -> None:
        pos = self._pos.get(address)
        super().evict_address(address)
        if pos is not None:
            self._free.add(pos.index)
