"""Skew-associative cache (Seznec 1993) as a one-level zcache.

Structurally the zcache *is* a skew-associative cache — each way indexed
by a different hash function — and on a replacement a skew cache
considers exactly the W first-level candidates. The paper's Z4/4 design
("4-way zcache with 4 replacement candidates") is this cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.zcache import ZCacheArray
from repro.hashing.base import HashFunction


class SkewAssociativeArray(ZCacheArray):
    """A zcache whose walk is limited to the first level (no relocation).

    Inherits ZScope observability from :class:`ZCacheArray`: attaching an
    :class:`~repro.obs.ObsContext` registers the same ``walk.*`` metrics
    (``commit_level`` stays entirely at level 0 here, a useful sanity
    check that no relocation ever happens).
    """

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        hash_kind: str = "h3",
        hash_seed: int = 0,
        hashes: Optional[Sequence[HashFunction]] = None,
    ) -> None:
        super().__init__(
            num_ways,
            lines_per_way,
            levels=1,
            hash_kind=hash_kind,
            hash_seed=hash_seed,
            hashes=hashes,
        )
