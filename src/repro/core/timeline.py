"""Replacement-process timeline (paper Fig. 1g).

The paper's worked example shows the walk's tag reads pipelining
through the tag array, the relocations' data movement, and the whole
process finishing well before the missing block returns from memory.
This module schedules one replacement the same way:

- walk level ``l`` issues ``W*(W-1)^l`` tag reads; levels pipeline, so
  level l+1 starts once level l's *addresses* are known — after
  ``max(T_tag, reads_in_level)`` cycles (paper Section III-B);
- relocations then move ``m`` blocks (tag+data read, tag+data write),
  serialised bottom-up;
- the incoming block's fill completes the process.

The scheduler returns discrete events so the experiment can print an
ASCII timeline like Fig. 1g and tests can assert the T_walk formula.
"""

from __future__ import annotations

from dataclasses import dataclass

#: default latencies, in cycles, from the paper's example
T_TAG_READ = 4
T_TAG_WRITE = 4
T_DATA_READ = 4
T_DATA_WRITE = 4
T_MEMORY = 100


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One scheduled operation."""

    start: int
    end: int
    unit: str  # "tag", "data", or "mem"
    label: str


@dataclass(slots=True)
class ReplacementTimeline:
    events: list

    @property
    def walk_done(self) -> int:
        walk = [e for e in self.events if e.label.startswith("walk")]
        return max(e.end for e in walk) if walk else 0

    @property
    def process_done(self) -> int:
        """When the replacement (walk + relocations) finishes.

        The final install of the incoming block waits for memory by
        definition and is not part of the replacement process the paper
        times (its Fig. 1g "whole process finishes in 20 cycles").
        """
        cache_ops = [
            e
            for e in self.events
            if e.unit != "mem" and e.label != "install incoming"
        ]
        return max(e.end for e in cache_ops) if cache_ops else 0

    @property
    def miss_served(self) -> int:
        mem = [e for e in self.events if e.unit == "mem"]
        return max(e.end for e in mem) if mem else 0

    @property
    def hidden(self) -> bool:
        """True when the replacement finished under the memory latency —
        the paper's off-the-critical-path claim."""
        return self.process_done <= self.miss_served

    def render(self, width: int = 60) -> list[str]:
        """ASCII timeline, one row per event (Fig. 1g style)."""
        horizon = max(self.process_done, self.miss_served)
        scale = width / horizon if horizon else 1.0
        rows = []
        for e in sorted(self.events, key=lambda e: (e.start, e.unit)):
            lo = int(e.start * scale)
            hi = max(lo + 1, int(e.end * scale))
            bar = " " * lo + "#" * (hi - lo)
            rows.append(f"{e.label:24s} [{e.unit:4s}] {bar}")
        rows.append(f"{'(cycles 0..' + str(horizon) + ')':24s}")
        return rows


def schedule_replacement(
    ways: int,
    levels: int,
    relocations: int,
    t_tag: int = T_TAG_READ,
    t_data: int = T_DATA_READ,
    t_mem: int = T_MEMORY,
) -> ReplacementTimeline:
    """Schedule one replacement's walk, relocations and fill.

    ``relocations`` is the chosen victim's level (0..levels-1).
    """
    if ways < 1 or levels < 1:
        raise ValueError("ways and levels must be >= 1")
    if not 0 <= relocations <= levels - 1:
        raise ValueError("relocations must be in [0, levels-1]")
    events: list[TimelineEvent] = []
    events.append(TimelineEvent(0, t_mem, "mem", "fetch missing block"))
    # Walk: each way is its own tag array, issuing one read per cycle;
    # level l needs (W-1)^l reads per way, and the next level starts
    # once this level's last read resolves — so each level occupies
    # max(T_tag, (W-1)^l) cycles (paper Section III-B's T_walk).
    t = 0
    for level in range(levels):
        per_way = (ways - 1) ** level
        total_reads = ways * per_way
        duration = max(t_tag, per_way)
        events.append(
            TimelineEvent(
                t, t + duration, "tag", f"walk level {level} ({total_reads}r)"
            )
        )
        t += duration
    # Relocations: deepest block's slot receives its parent, and so on;
    # each move reads then writes tag+data (tag and data in parallel).
    for move in range(relocations):
        read_end = t + max(t_tag, t_data)
        events.append(
            TimelineEvent(t, read_end, "data", f"relocation {move + 1} read")
        )
        t = read_end
        write_end = t + max(T_TAG_WRITE, T_DATA_WRITE)
        events.append(
            TimelineEvent(t, write_end, "data", f"relocation {move + 1} write")
        )
        t = write_end
    # The fill happens when the line arrives (tag+data write).
    fill_start = max(t, t_mem)
    events.append(
        TimelineEvent(
            fill_start, fill_start + max(T_TAG_WRITE, T_DATA_WRITE),
            "data", "install incoming",
        )
    )
    return ReplacementTimeline(events=events)


def walk_cycles(ways: int, levels: int, t_tag: int = T_TAG_READ) -> int:
    """T_walk = sum over levels of max(T_tag, (W-1)^l) — Section III-B."""
    if ways < 1 or levels < 1:
        raise ValueError("ways and levels must be >= 1")
    return sum(max(t_tag, (ways - 1) ** level) for level in range(levels))
