"""Column-associative cache (paper Section II-B, Agarwal & Pudar 1993).

A direct-mapped cache where a block may live in one of two locations:
its *primary* set (bit-selection index) or its *secondary* set (the
index with the high bit flipped — the classic "rehash" function). A
lookup probes the primary location first and, on mismatch, the
secondary; a secondary hit swaps the two blocks so the hot one is found
first next time. A per-line rehash bit records whether the resident
block lives in its secondary location.

Drawbacks the paper lists — variable hit latency, extra swaps, and being
limited to two locations — are all observable through the statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import RegistryStats

if TYPE_CHECKING:
    from repro.obs import ObsContext


class ColumnStats(RegistryStats):
    """Column-associative counters, backed by the metrics registry."""

    _COUNTER_FIELDS = (
        "accesses",
        "first_probe_hits",
        "second_probe_hits",
        "misses",
        "swaps",
        "writebacks",
    )

    @property
    def hits(self) -> int:
        """Total hits across both probes."""
        c = self.counters()
        return c["first_probe_hits"].value + c["second_probe_hits"].value

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0.0 before the first access)."""
        c = self.counters()
        accesses = c["accesses"].value
        return c["misses"].value / accesses if accesses else 0.0

    @property
    def mean_probes_per_access(self) -> float:
        """Variable hit latency: 1 probe for primary hits, 2 otherwise."""
        c = self.counters()
        accesses = c["accesses"].value
        if not accesses:
            return 0.0
        second = c["second_probe_hits"].value + c["misses"].value
        return (c["first_probe_hits"].value + 2 * second) / accesses


class ColumnAssociativeCache:
    """Direct-mapped array with primary/secondary rehash locations."""

    def __init__(
        self, num_lines: int, obs: Optional["ObsContext"] = None
    ) -> None:
        if num_lines < 2 or num_lines & (num_lines - 1):
            raise ValueError(
                f"num_lines must be a power of two >= 2, got {num_lines}"
            )
        self.num_lines = num_lines
        self.num_blocks = num_lines
        self._lines: list[Optional[int]] = [None] * num_lines
        self._rehash_bit: list[bool] = [False] * num_lines
        self._dirty: set[int] = set()
        self._flip = num_lines >> 1
        self.stats = ColumnStats(obs.metrics if obs is not None else None)
        self._sc = self.stats.counters()

    def primary_index(self, address: int) -> int:
        """The block's home set (bit-selection index)."""
        return address % self.num_lines

    def secondary_index(self, address: int) -> int:
        """The rehash location: home index with the top bit flipped."""
        return self.primary_index(address) ^ self._flip

    def __contains__(self, address: int) -> bool:
        return (
            self._lines[self.primary_index(address)] == address
            or self._lines[self.secondary_index(address)] == address
        )

    def __len__(self) -> int:
        return sum(1 for line in self._lines if line is not None)

    def _swap(self, i: int, j: int) -> None:
        self._lines[i], self._lines[j] = self._lines[j], self._lines[i]
        self._sc["swaps"].value += 1

    def _evict(self, index: int) -> Optional[int]:
        victim = self._lines[index]
        if victim is not None and victim in self._dirty:
            self._dirty.remove(victim)
            self._sc["writebacks"].value += 1
        self._lines[index] = None
        self._rehash_bit[index] = False
        return victim

    def access(self, address: int, is_write: bool = False) -> bool:
        """One access; returns True on a hit (either probe)."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self._sc["accesses"].value += 1
        primary = self.primary_index(address)
        secondary = self.secondary_index(address)
        if self._lines[primary] == address:
            self._sc["first_probe_hits"].value += 1
            if is_write:
                self._dirty.add(address)
            return True
        if self._lines[secondary] == address:
            # Secondary hit: swap so the block is primary next time.
            self._sc["second_probe_hits"].value += 1
            self._swap(primary, secondary)
            # After the swap, `address` sits at `primary` (its home), and
            # the displaced block sits at `secondary`, which is *its*
            # rehash location.
            self._rehash_bit[primary] = False
            self._rehash_bit[secondary] = True
            if is_write:
                self._dirty.add(address)
            return True

        # Miss. Column-associative fill policy: if the primary slot
        # holds a rehashed block (not in its own home), replace it;
        # otherwise move the primary occupant to the secondary slot and
        # claim the primary.
        self._sc["misses"].value += 1
        if self._lines[primary] is None or self._rehash_bit[primary]:
            self._evict(primary)
            self._lines[primary] = address
            self._rehash_bit[primary] = False
        else:
            self._evict(secondary)
            self._swap(primary, secondary)
            self._rehash_bit[secondary] = True
            self._lines[primary] = address
            self._rehash_bit[primary] = False
        if is_write:
            self._dirty.add(address)
        return False

    def check_invariants(self) -> None:
        """Every resident block is at its primary or secondary index,
        with the rehash bit matching."""
        for index, block in enumerate(self._lines):
            if block is None:
                continue
            home = self.primary_index(block)
            alt = self.secondary_index(block)
            if index == home:
                assert not self._rehash_bit[index], (
                    f"block {block:#x} at home with rehash bit set"
                )
            elif index == alt:
                assert self._rehash_bit[index], (
                    f"block {block:#x} rehashed without rehash bit"
                )
            else:
                raise AssertionError(
                    f"block {block:#x} at illegal index {index}"
                )
