"""Cache controller: array + replacement policy + statistics.

The controller implements the full access protocol the paper describes:

- **Hit**: single lookup, policy notified (common case, no walk).
- **Miss**: the array collects replacement candidates (the walk, for a
  zcache). If a candidate slot is empty, the block fills it (relocating
  as needed, no eviction). Otherwise the policy picks the victim among
  the candidate addresses; the controller evicts it, performs the
  relocations, and installs the incoming block.

Write-allocate, write-back semantics: writes to non-resident blocks
allocate; dirty blocks report a writeback when evicted or invalidated.
Statistics cover everything the energy model and the bandwidth analysis
(Section VI-D) need: tag/data array reads and writes, walk lengths,
relocations, and writebacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.base import CacheArray, Candidate, Replacement
from repro.replacement.base import ReplacementPolicy


@dataclass(slots=True)
class AccessResult:
    """Outcome of a single cache access."""

    address: int
    hit: bool
    evicted: Optional[int] = None
    writeback: bool = False
    relocations: int = 0
    filled_empty: bool = False
    #: the block could not be installed because every replacement
    #: candidate was pinned (see :meth:`Cache.pin`)
    bypassed: bool = False


@dataclass(slots=True)
class CacheStats:
    """Cumulative controller statistics.

    Tag/data access counters follow the paper's energy accounting
    (Section III-B): a hit reads the tag array once per way and the data
    array once; a walk reads one tag per candidate; each relocation reads
    and writes both tag and data; a fill writes tag and data once.
    """

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills_empty: int = 0
    invalidations: int = 0
    relocations: int = 0
    #: misses that could not allocate because all candidates were pinned
    pin_overflows: int = 0
    walk_tag_reads: int = 0
    tag_reads: int = 0
    tag_writes: int = 0
    data_reads: int = 0
    data_writes: int = 0
    #: eviction priorities recorded by an attached tracker (see
    #: repro.assoc.measurement); empty unless measurement is enabled
    eviction_priorities: list[float] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A cache: an array, a policy, and the glue between them.

    Parameters
    ----------
    array:
        Any :class:`~repro.core.base.CacheArray`.
    policy:
        Any :class:`~repro.replacement.base.ReplacementPolicy`. Wrap it
        in :class:`~repro.assoc.measurement.TrackedPolicy` to record
        eviction priorities.
    name:
        Label used in reports.
    """

    def __init__(
        self, array: CacheArray, policy: ReplacementPolicy, name: str = "cache"
    ) -> None:
        self.array = array
        self.policy = policy
        self.name = name
        self.stats = CacheStats()
        self._dirty: set[int] = set()
        self._pinned: set[int] = set()

    # -- queries -------------------------------------------------------------
    def __contains__(self, address: int) -> bool:
        return address in self.array

    def __len__(self) -> int:
        return len(self.array)

    def is_dirty(self, address: int) -> bool:
        """True if the resident block has been written since install."""
        return address in self._dirty

    # -- pinning (paper Section I: TM / speculation / monitoring systems
    # -- that buffer blocks in the cache and must not lose them) -----------
    def pin(self, address: int) -> None:
        """Exempt a resident block from eviction.

        Pinned blocks may still be *relocated* by a zcache walk (they
        stay cached, which is all pinning promises) but are never chosen
        as victims. If a later miss finds every candidate pinned, the
        incoming block bypasses the cache (``AccessResult.bypassed``) —
        the overflow event that, in a TM system, triggers the fallback
        path. High associativity makes this rare: that is the paper's
        Section I motivation.
        """
        if self.array.lookup(address) is None:
            raise KeyError(f"cannot pin non-resident block {address:#x}")
        self._pinned.add(address)

    def unpin(self, address: int) -> None:
        """Remove a block's eviction exemption (no-op if not pinned)."""
        self._pinned.discard(address)

    def is_pinned(self, address: int) -> bool:
        """True if the block is exempt from eviction."""
        return address in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    # -- the access protocol ---------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one read or write access to ``address``."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if self.array.lookup(address) is not None:
            self.stats.hits += 1
            # Lookup: one tag read per way, one data read (the hit way).
            self.stats.tag_reads += self.array.num_ways
            if is_write:
                self.stats.data_writes += 1
                self._dirty.add(address)
            else:
                self.stats.data_reads += 1
            self.policy.on_access(address, is_write)
            return AccessResult(address=address, hit=True)

        # Miss: the failed lookup read the tags; the walk's level-0 reads
        # are those same reads, so tag accounting comes from the walk.
        self.stats.misses += 1
        result = self._fill(address)
        if is_write and not result.bypassed:
            self._dirty.add(address)
        return result

    def _fill(self, address: int) -> AccessResult:
        repl = self.array.build_replacement(address)
        self.stats.walk_tag_reads += repl.tag_reads
        self.stats.tag_reads += repl.tag_reads

        chosen = repl.first_empty()
        evicted: Optional[int] = None
        writeback = False
        if chosen is None:
            chosen = self._choose_victim(repl)
            if chosen is None:
                # Every candidate is pinned: the block bypasses the
                # cache (the TM-style overflow event).
                self.stats.pin_overflows += 1
                return AccessResult(address=address, hit=False, bypassed=True)
            evicted = chosen.address
            assert evicted is not None
            self.policy.on_evict(evicted)
            self.stats.evictions += 1
            if evicted in self._dirty:
                self._dirty.remove(evicted)
                self.stats.writebacks += 1
                writeback = True
        else:
            self.stats.fills_empty += 1

        commit = self.array.commit_replacement(repl, chosen)
        self.stats.relocations += commit.relocations
        # Each relocation reads and rewrites one block's tag and data;
        # the final install writes the incoming block's tag and data.
        self.stats.tag_writes += commit.relocations + 1
        self.stats.data_reads += commit.relocations
        self.stats.data_writes += commit.relocations + 1
        self.policy.on_insert(address)
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted,
            writeback=writeback,
            relocations=commit.relocations,
            filled_empty=evicted is None,
        )

    def _choose_victim(self, repl: Replacement) -> Optional[Candidate]:
        """Let the policy pick among the usable candidates' addresses and
        return the cheapest (shallowest) tree node holding that block.

        Returns None when every candidate is pinned (caller bypasses).
        """
        if repl.exhaustive and not repl.candidates:
            victim = self.policy.global_victim()
            if victim is None or victim in self._pinned:
                unpinned = [
                    a for a in self.array.resident() if a not in self._pinned
                ]
                if not unpinned:
                    return None
                victim = self.policy.select_victim(unpinned)
            pos = self.array.lookup(victim)
            if pos is None:
                raise RuntimeError(
                    f"policy chose non-resident victim {victim:#x}"
                )
            return Candidate(position=pos, address=victim, level=0)
        usable = repl.usable()
        by_address: dict[int, Candidate] = {}
        for cand in usable:
            if cand.address is None or cand.address in self._pinned:
                continue
            prev = by_address.get(cand.address)
            if prev is None or cand.level < prev.level:
                by_address[cand.address] = cand
        if not by_address:
            if self._pinned:
                return None
            raise RuntimeError(
                f"no usable replacement candidates for {repl.incoming:#x}"
            )
        victim = self.policy.select_victim(list(by_address))
        return by_address[victim]

    # -- external block removal ------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Remove a block (coherence or inclusion victim).

        Returns True if the block was dirty (a writeback is required).
        Missing blocks are tolerated — an invalidation can race an
        eviction — and return False.
        """
        if self.array.lookup(address) is None:
            return False
        self.array.evict_address(address)
        self.policy.on_evict(address)
        self._pinned.discard(address)
        self.stats.invalidations += 1
        if address in self._dirty:
            self._dirty.remove(address)
            self.stats.writebacks += 1
            return True
        return False

    def resident(self):
        """Iterate over resident block addresses."""
        return self.array.resident()
