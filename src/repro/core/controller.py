"""Cache controller: array + replacement policy + statistics.

The controller implements the full access protocol the paper describes:

- **Hit**: single lookup, policy notified (common case, no walk).
- **Miss**: the array collects replacement candidates (the walk, for a
  zcache). If a candidate slot is empty, the block fills it (relocating
  as needed, no eviction). Otherwise the policy picks the victim among
  the candidate addresses; the controller evicts it, performs the
  relocations, and installs the incoming block.

Write-allocate, write-back semantics: writes to non-resident blocks
allocate; dirty blocks report a writeback when evicted or invalidated.
Statistics cover everything the energy model and the bandwidth analysis
(Section VI-D) need: tag/data array reads and writes, walk lengths,
relocations, and writebacks. Since the ZScope layer, the counters live
in a metrics registry (:class:`CacheStats` is a
:class:`~repro.obs.metrics.RegistryStats` facade) and, when an
:class:`~repro.obs.ObsContext` is attached, the controller emits
access / miss / walk / eviction trace events through its bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.core.base import CacheArray, Candidate, Replacement
from repro.obs import ObsContext
from repro.obs.events import TraceBus
from repro.obs.metrics import MetricsRegistry, RegistryStats
from repro.replacement.base import ReplacementPolicy

if TYPE_CHECKING:
    from repro.kernels.engine import TurboCore

#: valid values for the ``engine`` constructor argument
ENGINES = ("reference", "turbo")


@dataclass(slots=True)
class AccessResult:
    """Outcome of a single cache access."""

    address: int
    hit: bool
    evicted: Optional[int] = None
    writeback: bool = False
    relocations: int = 0
    filled_empty: bool = False
    #: the block could not be installed because every replacement
    #: candidate was pinned (see :meth:`Cache.pin`)
    bypassed: bool = False


class CacheStats(RegistryStats):
    """Cumulative controller statistics, backed by the metrics registry.

    Tag/data access counters follow the paper's energy accounting
    (Section III-B): a hit reads the tag array once per way and the data
    array once; a walk reads one tag per candidate; each relocation reads
    and writes both tag and data; a fill writes tag and data once.

    Every field reads and writes like the plain integer attribute it
    used to be, but is backed by a registered
    :class:`~repro.obs.metrics.Counter` — hand the constructor a scoped
    registry and the counters appear under that scope (``l2.bank3.hits``).
    """

    _COUNTER_FIELDS = (
        "accesses",
        "reads",
        "writes",
        "hits",
        "misses",
        "evictions",
        "writebacks",
        "fills_empty",
        "invalidations",
        "relocations",
        # misses that could not allocate because all candidates were pinned
        "pin_overflows",
        "walk_tag_reads",
        "tag_reads",
        "tag_writes",
        "data_reads",
        "data_writes",
    )

    #: eviction priorities recorded by an attached tracker (see
    #: repro.assoc.measurement); empty unless measurement is enabled
    eviction_priorities: list[float]

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        super().__init__(registry)
        self.eviction_priorities = []

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0.0 before the first access)."""
        accesses = self.counters()["accesses"].value
        return self.counters()["misses"].value / accesses if accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 before the first access)."""
        accesses = self.counters()["accesses"].value
        return self.counters()["hits"].value / accesses if accesses else 0.0


class Cache:
    """A cache: an array, a policy, and the glue between them.

    Parameters
    ----------
    array:
        Any :class:`~repro.core.base.CacheArray`.
    policy:
        Any :class:`~repro.replacement.base.ReplacementPolicy`. Wrap it
        in :class:`~repro.assoc.measurement.TrackedPolicy` to record
        eviction priorities.
    name:
        Label used in reports.
    obs:
        Optional :class:`~repro.obs.ObsContext`. When given, the
        statistics counters register under its metrics scope, the array
        is attached (walk counters, relocation events), and the
        controller emits trace events through its bus. Without one,
        behaviour is identical to the pre-ZScope controller: a private
        registry and no tracing.
    engine:
        ``"reference"`` (default) runs the per-candidate Python
        protocol below; ``"turbo"`` delegates accesses to the ZTurbo
        vectorized core (:mod:`repro.kernels`) when the configuration
        is supported, silently falling back to the reference path when
        it is not. Both engines are bit-identical in every observable
        (victims, priorities, counters, final contents) — asserted by
        ``scripts/diff_engines.py``. The :attr:`engine` attribute holds
        the engine actually running.
    """

    def __init__(
        self,
        array: CacheArray,
        policy: ReplacementPolicy,
        name: str = "cache",
        obs: Optional[ObsContext] = None,
        engine: str = "reference",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.array = array
        self.policy = policy
        self.name = name
        self.obs = obs
        # Listeners must exist before the first ``stats`` assignment:
        # the property setter (re)binds the hot-path counter refs and
        # notifies everything that caches them (BankedL2 memos, the
        # turbo core).
        self._stats_listeners: list[Callable[[], None]] = []
        self.stats = CacheStats(obs.metrics if obs is not None else None)
        self._trace: Optional[TraceBus] = (
            obs.trace if obs is not None and obs.trace.enabled else None
        )
        self._label = (obs.label or name) if obs is not None else name
        if obs is not None:
            array.attach_obs(obs, label=self._label)
        self._dirty: set[int] = set()
        self._pinned: set[int] = set()
        self.requested_engine = engine
        self._turbo: Optional["TurboCore"] = None
        if engine == "turbo":
            from repro.kernels.engine import (
                try_build_turbo_explain,
                warn_turbo_fallback,
            )

            self._turbo, fallback_reason = try_build_turbo_explain(self)
            if obs is not None:
                obs.metrics.gauge("engine_turbo").set(
                    1 if self._turbo is not None else 0
                )
                obs.metrics.gauge("engine_fallback").set(
                    0 if self._turbo is not None else 1
                )
            if self._turbo is None:
                warn_turbo_fallback(fallback_reason)
        self.engine = "turbo" if self._turbo is not None else "reference"

    # -- statistics rebinding ------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Cumulative statistics; assigning a new instance re-homes them."""
        return self._stats

    @stats.setter
    def stats(self, value: CacheStats) -> None:
        self._stats = value
        # Hot-path counter bindings: the access loop increments these
        # directly (counter.value += 1 costs what the old dataclass
        # attribute bump cost); the registry facade is for readers.
        counters = value.counters()
        self._sc = counters
        self._c_accesses = counters["accesses"]
        self._c_reads = counters["reads"]
        self._c_writes = counters["writes"]
        self._c_hits = counters["hits"]
        self._c_misses = counters["misses"]
        self._c_tag_reads = counters["tag_reads"]
        self._c_data_reads = counters["data_reads"]
        self._c_data_writes = counters["data_writes"]
        for listener in self._stats_listeners:
            listener()

    def add_stats_listener(self, callback: Callable[[], None]) -> None:
        """Call ``callback`` whenever :attr:`stats` is replaced.

        Anything that caches references derived from the stats object
        (counter lists, hot-path counter refs) must register here, or a
        mid-run registry swap leaves it reading the orphaned counters.
        """
        self._stats_listeners.append(callback)

    # -- queries -------------------------------------------------------------
    def __contains__(self, address: int) -> bool:
        return address in self.array

    def __len__(self) -> int:
        return len(self.array)

    def is_dirty(self, address: int) -> bool:
        """True if the resident block has been written since install."""
        return address in self._dirty

    # -- pinning (paper Section I: TM / speculation / monitoring systems
    # -- that buffer blocks in the cache and must not lose them) -----------
    def pin(self, address: int) -> None:
        """Exempt a resident block from eviction.

        Pinned blocks may still be *relocated* by a zcache walk (they
        stay cached, which is all pinning promises) but are never chosen
        as victims. If a later miss finds every candidate pinned, the
        incoming block bypasses the cache (``AccessResult.bypassed``) —
        the overflow event that, in a TM system, triggers the fallback
        path. High associativity makes this rare: that is the paper's
        Section I motivation.
        """
        if self._turbo is not None:
            raise RuntimeError(
                "pinning is not supported under the turbo engine; "
                "construct the cache with engine='reference'"
            )
        if self.array.lookup(address) is None:
            raise KeyError(f"cannot pin non-resident block {address:#x}")
        self._pinned.add(address)

    def unpin(self, address: int) -> None:
        """Remove a block's eviction exemption (no-op if not pinned)."""
        self._pinned.discard(address)

    def is_pinned(self, address: int) -> bool:
        """True if the block is exempt from eviction."""
        return address in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    # -- tracing helpers -----------------------------------------------------
    def _trace_walk(self, address: int, repl: Replacement) -> None:
        """Emit a walk event (caller guarantees tracing is enabled)."""
        trace = self._trace
        assert trace is not None
        level_counts: list[int] = []
        for cand in repl.candidates:
            while len(level_counts) <= cand.level:
                level_counts.append(0)
            level_counts[cand.level] += 1
        trace.walk(
            self._label,
            address,
            repl.tag_reads,
            len(repl.candidates),
            repl.truncated,
            tuple(level_counts),
        )

    def _trace_eviction(self, evicted: int, level: int, dirty: bool) -> None:
        """Emit an eviction event with the tracker's priority, if any.

        Must run *after* ``policy.on_evict`` so an attached
        :class:`~repro.assoc.measurement.TrackedPolicy` has recorded
        the victim's normalised eviction priority.
        """
        trace = self._trace
        assert trace is not None
        priorities = getattr(self.policy, "priorities", None)
        priority = priorities[-1] if priorities else None
        trace.eviction(self._label, evicted, priority, level, dirty)

    # -- the access protocol ---------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one read or write access to ``address``."""
        if self._turbo is not None:
            return self._turbo.access(address, is_write)
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self._c_accesses.value += 1
        if is_write:
            self._c_writes.value += 1
        else:
            self._c_reads.value += 1

        if self.array.lookup(address) is not None:
            self._c_hits.value += 1
            # Lookup: one tag read per way, one data read (the hit way).
            self._c_tag_reads.value += self.array.num_ways
            if is_write:
                self._c_data_writes.value += 1
                self._dirty.add(address)
            else:
                self._c_data_reads.value += 1
            self.policy.on_access(address, is_write)
            if self._trace is not None:
                self._trace.access(self._label, address, is_write, True)
            return AccessResult(address=address, hit=True)

        # Miss: the failed lookup read the tags; the walk's level-0 reads
        # are those same reads, so tag accounting comes from the walk.
        self._c_misses.value += 1
        if self._trace is not None:
            self._trace.access(self._label, address, is_write, False)
            self._trace.miss(self._label, address, is_write)
        result = self._fill(address)
        if is_write and not result.bypassed:
            self._dirty.add(address)
        return result

    def probe(self, address: int, is_write: bool = False) -> bool:
        """Perform a lookup-only access: a hit behaves exactly like
        :meth:`access`, a miss is counted but triggers **no** fill.

        This is the read path of a cache-aside service (ZServe): a
        ``get`` must not allocate — the client reacts to the miss (e.g.
        by computing the value and ``put``-ing it back). Returns True
        on a hit.
        """
        if self._turbo is not None:
            raise RuntimeError(
                "probe requires the reference engine; construct the "
                "cache with engine='reference'"
            )
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self._c_accesses.value += 1
        if is_write:
            self._c_writes.value += 1
        else:
            self._c_reads.value += 1
        # Hit or miss, the lookup reads one tag per way; a probe has no
        # walk to fold the miss-side tag reads into, so both branches
        # account them here.
        self._c_tag_reads.value += self.array.num_ways
        if self.array.lookup(address) is not None:
            self._c_hits.value += 1
            if is_write:
                self._c_data_writes.value += 1
                self._dirty.add(address)
            else:
                self._c_data_reads.value += 1
            self.policy.on_access(address, is_write)
            if self._trace is not None:
                self._trace.access(self._label, address, is_write, True)
            return True
        self._c_misses.value += 1
        if self._trace is not None:
            self._trace.access(self._label, address, is_write, False)
            self._trace.miss(self._label, address, is_write)
        return False

    def _fill(self, address: int) -> AccessResult:
        return self._fill_with(address, self.array.build_replacement(address))

    def _fill_with(self, address: int, repl: Replacement) -> AccessResult:
        sc = self._sc
        sc["walk_tag_reads"].value += repl.tag_reads
        self._c_tag_reads.value += repl.tag_reads
        if self._trace is not None:
            self._trace_walk(address, repl)

        chosen = repl.first_empty()
        evicted: Optional[int] = None
        writeback = False
        if chosen is None:
            chosen = self._choose_victim(repl)
            if chosen is None:
                # Every candidate is pinned: the block bypasses the
                # cache (the TM-style overflow event).
                sc["pin_overflows"].value += 1
                return AccessResult(address=address, hit=False, bypassed=True)
            evicted = chosen.address
            assert evicted is not None
            self.policy.on_evict(evicted)
            sc["evictions"].value += 1
            if evicted in self._dirty:
                self._dirty.remove(evicted)
                sc["writebacks"].value += 1
                writeback = True
            if self._trace is not None:
                self._trace_eviction(evicted, chosen.level, writeback)
        else:
            sc["fills_empty"].value += 1

        commit = self.array.commit_replacement(repl, chosen)
        sc["relocations"].value += commit.relocations
        # Each relocation reads and rewrites one block's tag and data;
        # the final install writes the incoming block's tag and data.
        sc["tag_writes"].value += commit.relocations + 1
        self._c_data_reads.value += commit.relocations
        self._c_data_writes.value += commit.relocations + 1
        self.policy.on_insert(address)
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted,
            writeback=writeback,
            relocations=commit.relocations,
            filled_empty=evicted is None,
        )

    def _choose_victim(self, repl: Replacement) -> Optional[Candidate]:
        """Let the policy pick among the usable candidates' addresses and
        return the cheapest (shallowest) tree node holding that block.

        Returns None when every candidate is pinned (caller bypasses).
        """
        if repl.exhaustive and not repl.candidates:
            victim = self.policy.global_victim()
            if victim is None or victim in self._pinned:
                unpinned = [
                    a for a in self.array.resident() if a not in self._pinned
                ]
                if not unpinned:
                    return None
                victim = self.policy.select_victim(unpinned)
            pos = self.array.lookup(victim)
            if pos is None:
                raise RuntimeError(
                    f"policy chose non-resident victim {victim:#x}"
                )
            return Candidate(position=pos, address=victim, level=0)
        usable = repl.usable()
        by_address: dict[int, Candidate] = {}
        for cand in usable:
            if cand.address is None or cand.address in self._pinned:
                continue
            prev = by_address.get(cand.address)
            if prev is None or cand.level < prev.level:
                by_address[cand.address] = cand
        if not by_address:
            if self._pinned:
                return None
            raise RuntimeError(
                f"no usable replacement candidates for {repl.incoming:#x}"
            )
        victim = self.policy.select_victim(list(by_address))
        return by_address[victim]

    # -- writeback absorption ----------------------------------------------------
    def absorb_writeback(self, address: int) -> bool:
        """Absorb a writeback from the level above (an L1 dirty eviction).

        If the block is resident, its data is rewritten and it becomes
        dirty; the replacement policy is *not* notified — a writeback is
        not a demand reference. Returns True when absorbed, False when
        the block is not resident (the caller forwards it to memory).

        This is the sanctioned API for what used to be done by reaching
        into ``cache._dirty`` and the stats dict from the outside; the
        data-write counter is the cached hot-path reference.
        """
        if self.array.lookup(address) is None:
            return False
        self._c_data_writes.value += 1
        self._dirty.add(address)
        return True

    # -- external block removal ------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Remove a block (coherence or inclusion victim).

        Returns True if the block was dirty (a writeback is required).
        Missing blocks are tolerated — an invalidation can race an
        eviction — and return False.
        """
        if self._turbo is not None:
            return self._turbo.invalidate(address)
        if self.array.lookup(address) is None:
            return False
        self.array.evict_address(address)
        self.policy.on_evict(address)
        self._pinned.discard(address)
        self._sc["invalidations"].value += 1
        if address in self._dirty:
            self._dirty.remove(address)
            self._sc["writebacks"].value += 1
            return True
        return False

    def resident(self) -> Iterator[int]:
        """Iterate over resident block addresses."""
        return self.array.resident()
