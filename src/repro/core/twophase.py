"""Two-phase BFS zcache controller (paper Section III-D).

The hybrid "BFS+DFS" idea from the paper, in its BFS+BFS form: after the
primary walk selects victim N, a *second* breadth-first walk rooted at
N's alternative positions looks for somewhere to move N. The final
eviction victim is the best block across both walks — roughly doubling
the number of replacement candidates while reusing the same walk-table
state, at the cost of a second walk's tag bandwidth.

Commit order when the second phase wins:

1. evict the phase-2 victim, relocate the phase-2 path, and move N into
   the freed phase-2 root (N's own alternative position);
2. N's old slot is now empty: relocate the phase-1 path into it and
   install the incoming block at the phase-1 root.

Phase-2 relocations can invalidate the recorded phase-1 path (a
relocated block can land on a phase-1 ancestor position). The stale
commit is detected by the array's consistency guard and handled by
re-walking — the hardware equivalent of restarting the replacement,
which the paper's controller also needs for its benign races.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Candidate, Replacement
from repro.core.controller import AccessResult, Cache
from repro.core.zcache import ZCacheArray
from repro.obs import ObsContext
from repro.replacement.base import ReplacementPolicy


class StaleWalkError(RuntimeError):
    """A prepared walk no longer matches the array and must be redone.

    Raised by :meth:`TwoPhaseZCache.commit_prepared` *before any
    mutation* when the freshness check rejects a plan. Distinct from
    the array's internal stale-path ``RuntimeError`` (which the
    controller handles in-band) so callers running the concurrent
    off-lock discipline can retry without a bare ``except``.
    """


class TwoPhaseZCache(Cache):
    """A :class:`Cache` whose misses run the two-phase replacement.

    Phase bookkeeping (``second_phase_walks`` / ``second_phase_wins`` /
    ``stale_retries``) lives in the metrics registry alongside the
    controller counters and is exposed through read-only properties.
    """

    def __init__(
        self,
        array: ZCacheArray,
        policy: ReplacementPolicy,
        name: str = "z2p",
        obs: Optional[ObsContext] = None,
        engine: str = "reference",
    ) -> None:
        # Accept the array itself or a sanitizer-style proxy exposing
        # the wrapped array as ``.array`` (ZServe's soak harness wraps
        # every shard in the ZSan runtime sanitizer).
        unwrapped = getattr(array, "array", array)
        if not isinstance(unwrapped, ZCacheArray):
            raise TypeError("TwoPhaseZCache requires a ZCacheArray")
        # ``engine="turbo"`` is accepted for interface symmetry but the
        # two-phase protocol has no kernel implementation, so
        # try_build_turbo declines it and the reference path runs.
        super().__init__(array, policy, name=name, obs=obs, engine=engine)
        registry = self.stats.registry
        self._c_sp_walks = registry.counter("second_phase_walks")
        self._c_sp_wins = registry.counter("second_phase_wins")
        self._c_stale_retries = registry.counter("stale_retries")

    @property
    def second_phase_walks(self) -> int:
        """Number of phase-2 (reinsertion) walks performed."""
        return self._c_sp_walks.value

    @property
    def second_phase_wins(self) -> int:
        """Misses where phase 2 relocated the phase-1 victim instead."""
        return self._c_sp_wins.value

    @property
    def stale_retries(self) -> int:
        """Commits retried because a recorded walk path went stale."""
        return self._c_stale_retries.value

    # -- off-lock service surface (ZServe) ----------------------------------
    #
    # The concurrent discipline from "Limited Associativity Makes
    # Concurrent Software Caches a Breeze": the walk (candidate
    # collection) runs *outside* the shard lock, then the commit
    # re-validates the recorded (position, address) pairs *under* the
    # lock and either applies the relocations or rejects the plan as
    # stale. Nothing here is used by the simulator paths — ``access``
    # remains the single-threaded protocol and is bit-identical to the
    # pre-split behaviour.

    def prepare_fill(self, address: int) -> Replacement:
        """Phase 1: walk the array and record candidates, mutating nothing.

        Safe to call without holding the owning shard's lock: the walk
        only reads. A concurrent commit can make the returned plan
        stale — :meth:`commit_prepared` detects that and raises
        :class:`StaleWalkError` so the caller can re-prepare.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        return self.array.build_replacement(address)

    def plan_is_fresh(self, repl: Replacement) -> bool:
        """True when every recorded candidate still matches the array.

        A plan is stale when the incoming block became resident (a
        racing fill won) or any walked position no longer holds the
        block the walk saw there (an invalidation or another commit's
        relocation moved it). Callers must hold the shard lock for the
        answer to remain true through a subsequent commit.
        """
        if repl.incoming in self.array:
            return False
        array = self.array
        for cand in repl.candidates:
            if array.read_position(cand.position) != cand.address:
                return False
        return True

    def commit_prepared(  # zspec: atomic
        self, address: int, repl: Replacement, is_write: bool = False
    ) -> AccessResult:
        """Phase 2: validate a prepared plan and commit it under the lock.

        Three outcomes:

        - the block became resident since the walk → a plain hit, scored
          and counted exactly like :meth:`access`;
        - the plan went stale → ``stale_retries`` is bumped and
          :class:`StaleWalkError` raised, with **no** array mutation
          (the atomic marker covers the counter bump before the raise);
        - the plan is fresh → the miss is counted and the fill commits
          through the normal two-phase replacement.
        """
        if address != repl.incoming:
            raise ValueError(
                f"plan was prepared for {repl.incoming:#x}, "
                f"not {address:#x}"
            )
        if self.array.lookup(address) is not None:
            return self.access(address, is_write)
        if not self.plan_is_fresh(repl):
            self._c_stale_retries.value += 1
            raise StaleWalkError(
                f"prepared walk for {address:#x} went stale; re-prepare"
            )
        self._c_accesses.value += 1
        if is_write:
            self._c_writes.value += 1
        else:
            self._c_reads.value += 1
        self._c_misses.value += 1
        if self._trace is not None:
            self._trace.access(self._label, address, is_write, False)
            self._trace.miss(self._label, address, is_write)
        result = self._fill_with(address, repl)
        if is_write and not result.bypassed:
            self._dirty.add(address)
        return result

    def _fill(self, address: int) -> AccessResult:
        return self._fill_with(address, self.array.build_replacement(address))

    def _fill_with(self, address: int, repl: Replacement) -> AccessResult:
        sc = self._sc
        sc["walk_tag_reads"].value += repl.tag_reads
        self._c_tag_reads.value += repl.tag_reads
        if self._trace is not None:
            self._trace_walk(address, repl)

        empty = repl.first_empty()
        if empty is not None:
            return self._finish_fill(address, repl, empty, evicted=None)

        node1 = self._choose_victim(repl)
        if node1 is None:
            sc["pin_overflows"].value += 1
            return AccessResult(address=address, hit=False, bypassed=True)
        victim1 = node1.address
        assert victim1 is not None

        # Phase 2: can victim1 move somewhere better than being evicted?
        repl2 = self.array.build_reinsertion(victim1)
        self._c_sp_walks.value += 1
        sc["walk_tag_reads"].value += repl2.tag_reads
        self._c_tag_reads.value += repl2.tag_reads
        if self._trace is not None:
            self._trace_walk(victim1, repl2)

        phase2_choice = self._phase2_choice(repl2, victim1)
        if phase2_choice is not None:
            evicted2 = phase2_choice.address  # None = free slot found
            try:
                commit2 = self.array.commit_reinsertion(repl2, phase2_choice)
            except RuntimeError as exc:
                # Only the array's own stale-path guard (a plain
                # RuntimeError) triggers the retry; subclasses such as
                # the sanitizer's InvariantViolation must propagate.
                if type(exc) is not RuntimeError:
                    raise
                # Stale phase-2 path; fall back to plain eviction.
                self._c_stale_retries.value += 1
                return self._plain_eviction(address, node1, victim1)
            self._c_sp_wins.value += 1
            sc["relocations"].value += commit2.relocations
            sc["tag_writes"].value += commit2.relocations + 1
            self._c_data_reads.value += commit2.relocations
            self._c_data_writes.value += commit2.relocations + 1
            if evicted2 is not None:
                self.policy.on_evict(evicted2)
                sc["evictions"].value += 1
                writeback2 = False
                if evicted2 in self._dirty:
                    self._dirty.remove(evicted2)
                    sc["writebacks"].value += 1
                    writeback2 = True
                if self._trace is not None:
                    self._trace_eviction(
                        evicted2, phase2_choice.level, writeback2
                    )
            else:
                sc["fills_empty"].value += 1
            # victim1's old position is free; land the incoming block
            # through the phase-1 path (re-walk if phase 2 went stale).
            return self._commit_phase1(address, repl, node1, evicted2)

        return self._plain_eviction(address, node1, victim1)

    # -- helpers ---------------------------------------------------------------
    def _phase2_choice(
        self, repl2: Replacement, victim1: int
    ) -> Optional[Candidate]:
        """Pick where victim1 should go, or None to just evict it.

        A free slot always wins. Otherwise the policy compares victim1
        against the best phase-2 candidate: if some phase-2 block is
        more evictable than victim1, moving victim1 there is a win.
        """
        empty = repl2.first_empty()
        if empty is not None:
            return empty
        by_address: dict[int, Candidate] = {}
        for cand in repl2.usable():
            if cand.address is None or cand.address == victim1:
                continue
            if cand.address in self._pinned:
                continue
            prev = by_address.get(cand.address)
            if prev is None or cand.level < prev.level:
                by_address[cand.address] = cand
        if not by_address:
            return None
        choice = self.policy.select_victim([victim1, *by_address])
        if choice == victim1:
            return None
        return by_address[choice]

    def _plain_eviction(
        self, address: int, node1: Candidate, victim1: int
    ) -> AccessResult:
        sc = self._sc
        self.policy.on_evict(victim1)
        sc["evictions"].value += 1
        writeback = False
        if victim1 in self._dirty:
            self._dirty.remove(victim1)
            sc["writebacks"].value += 1
            writeback = True
        if self._trace is not None:
            self._trace_eviction(victim1, node1.level, writeback)
        repl = Replacement(incoming=address)
        try:
            commit = self.array.commit_replacement(repl, node1)
        except RuntimeError as exc:
            if type(exc) is not RuntimeError:
                raise  # sanitizer violations are not retryable staleness
            # node1's path went stale (only possible after a phase-2
            # commit attempt): re-walk and take the best fresh path.
            self._c_stale_retries.value += 1
            if victim1 in self.array:
                self.array.evict_address(victim1)
            fresh = self.array.build_replacement(address)
            target = fresh.first_empty()
            if target is None:
                # victim1's slot is empty now, so a free slot must exist
                # somewhere in the walk—but the walk may not reach it.
                # Fall back to the shallowest valid candidate's position
                # chain after evicting nothing further: re-walk found no
                # empty ⇒ evict the best candidate normally.
                node = self._choose_victim(fresh)
                if node is None:
                    # Everything reachable is pinned: drop the fill.
                    sc["pin_overflows"].value += 1
                    return AccessResult(
                        address=address, hit=False, bypassed=True
                    )
                extra = node.address
                assert extra is not None
                self.policy.on_evict(extra)
                sc["evictions"].value += 1
                extra_writeback = False
                if extra in self._dirty:
                    self._dirty.remove(extra)
                    sc["writebacks"].value += 1
                    extra_writeback = True
                if self._trace is not None:
                    self._trace_eviction(extra, node.level, extra_writeback)
                target = node
            commit = self.array.commit_replacement(fresh, target)
        sc["relocations"].value += commit.relocations
        sc["tag_writes"].value += commit.relocations + 1
        self._c_data_reads.value += commit.relocations
        self._c_data_writes.value += commit.relocations + 1
        self.policy.on_insert(address)
        return AccessResult(
            address=address,
            hit=False,
            evicted=victim1,
            writeback=writeback,
            relocations=commit.relocations,
        )

    def _commit_phase1(
        self, address: int, repl: Replacement, node1: Candidate, evicted2
    ) -> AccessResult:
        """Install the incoming block through the (now-empty) node1."""
        sc = self._sc
        freed = Candidate(
            position=node1.position, address=None, level=node1.level,
            parent=node1.parent,
        )
        try:
            commit = self.array.commit_replacement(repl, freed)
        except RuntimeError as exc:
            if type(exc) is not RuntimeError:
                raise  # sanitizer violations are not retryable staleness
            # A phase-2 relocation rewrote a phase-1 ancestor: re-walk.
            self._c_stale_retries.value += 1
            fresh = self.array.build_replacement(address)
            target = fresh.first_empty()
            if target is None:
                node = self._choose_victim(fresh)
                if node is None:
                    # Everything reachable is pinned: drop the fill.
                    sc["pin_overflows"].value += 1
                    return AccessResult(
                        address=address, hit=False, bypassed=True
                    )
                extra = node.address
                assert extra is not None
                self.policy.on_evict(extra)
                sc["evictions"].value += 1
                extra_writeback = False
                if extra in self._dirty:
                    self._dirty.remove(extra)
                    sc["writebacks"].value += 1
                    extra_writeback = True
                if self._trace is not None:
                    self._trace_eviction(extra, node.level, extra_writeback)
                target = node
            commit = self.array.commit_replacement(fresh, target)
        sc["relocations"].value += commit.relocations
        sc["tag_writes"].value += commit.relocations + 1
        self._c_data_reads.value += commit.relocations
        self._c_data_writes.value += commit.relocations + 1
        self.policy.on_insert(address)
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted2,
            relocations=commit.relocations,
        )

    def _finish_fill(
        self, address: int, repl: Replacement, chosen: Candidate, evicted
    ) -> AccessResult:
        sc = self._sc
        sc["fills_empty"].value += 1
        commit = self.array.commit_replacement(repl, chosen)
        sc["relocations"].value += commit.relocations
        sc["tag_writes"].value += commit.relocations + 1
        self._c_data_reads.value += commit.relocations
        self._c_data_writes.value += commit.relocations + 1
        self.policy.on_insert(address)
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted,
            relocations=commit.relocations,
            filled_empty=True,
        )
