"""Adaptive associativity (paper Section VIII, future work).

"Since the zcache makes it trivial to increase or reduce associativity
with the same hardware design, it would be interesting to explore
adaptive replacement schemes that use the high associativity only when
it improves performance, saving cache bandwidth and energy when high
associativity is not needed."

This controller implements that idea. The utility signal is the
*premature-eviction rate*: the fraction of misses whose block was
evicted recently (it sits in a small FIFO of recent victim addresses —
a shadow victim buffer holding tags only). A high rate means the cache
keeps throwing away blocks it still needs, i.e. better eviction
decisions could help, so the walk grows; a near-zero rate (streaming or
comfortably-fitting workloads) means associativity is not the problem
and the walk shrinks to the skew-associative configuration, saving tag
bandwidth and replacement energy.

The knob is the array's ``candidate_limit`` — exactly the early-stop
mechanism of Section III, driven by measured utility instead of
bandwidth pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.controller import AccessResult, Cache
from repro.core.zcache import ZCacheArray
from repro.obs import ObsContext
from repro.obs.metrics import MetricsRegistry, RegistryStats
from repro.replacement.base import ReplacementPolicy


class AdaptiveStats(RegistryStats):
    """Epoch history for analysis and the ablation bench."""

    _COUNTER_FIELDS = ("epochs", "premature_misses", "misses_observed")

    #: (epoch index, candidate limit after adjustment, premature fraction)
    history: list

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        super().__init__(registry)
        self.history = []

    @property
    def mean_limit(self) -> float:
        """Average candidate limit across adaptation epochs."""
        if not self.history:
            return 0.0
        return sum(limit for _e, limit, _f in self.history) / len(self.history)


class AdaptiveZCache(Cache):
    """A zcache whose walk depth follows measured utility.

    Parameters
    ----------
    array:
        The zcache. Its ``candidate_limit`` is owned by this controller.
    policy:
        Replacement policy.
    epoch_misses:
        Misses per adaptation epoch.
    shadow_entries:
        Size of the recent-victims tag FIFO (defaults to 4x the walk's
        maximum candidate count).
    grow_threshold / shrink_threshold:
        Premature-miss fractions above/below which the candidate limit
        grows or shrinks (geometrically, by 2x).
    min_candidates:
        Floor (defaults to W, the skew-associative configuration).
    """

    def __init__(
        self,
        array: ZCacheArray,
        policy: ReplacementPolicy,
        epoch_misses: int = 512,
        shadow_entries: int | None = None,
        grow_threshold: float = 0.05,
        shrink_threshold: float = 0.01,
        min_candidates: int | None = None,
        name: str = "adaptive-z",
        obs: Optional[ObsContext] = None,
    ) -> None:
        if not isinstance(array, ZCacheArray):
            raise TypeError("AdaptiveZCache requires a ZCacheArray")
        if epoch_misses < 1:
            raise ValueError("epoch_misses must be >= 1")
        if not 0.0 <= shrink_threshold <= grow_threshold <= 1.0:
            raise ValueError("need 0 <= shrink_threshold <= grow_threshold <= 1")
        super().__init__(array, policy, name=name, obs=obs)
        self.epoch_misses = epoch_misses
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold
        self.max_candidates = array.nominal_candidates()
        self.min_candidates = (
            array.num_ways if min_candidates is None else min_candidates
        )
        if not array.num_ways <= self.min_candidates <= self.max_candidates:
            raise ValueError("min_candidates out of range")
        self.shadow_entries = (
            4 * self.max_candidates if shadow_entries is None else shadow_entries
        )
        if self.shadow_entries < 1:
            raise ValueError("shadow_entries must be >= 1")
        # Start at full depth; the first epochs will shrink if unneeded.
        self._limit = self.max_candidates
        array.candidate_limit = self._limit
        self._shadow: OrderedDict[int, None] = OrderedDict()
        self.adaptive_stats = AdaptiveStats(
            self.stats.registry.scoped("adaptive")
        )
        self._ac = self.adaptive_stats.counters()
        self._epoch_premature = 0
        self._epoch_misses = 0

    @property
    def current_limit(self) -> int:
        return self._limit

    def _fill(self, address: int) -> AccessResult:
        self._epoch_misses += 1
        self._ac["misses_observed"].value += 1
        if address in self._shadow:
            # The block was evicted recently: a premature eviction.
            del self._shadow[address]
            self._epoch_premature += 1
            self._ac["premature_misses"].value += 1
        result = super()._fill(address)
        if result.evicted is not None:
            self._shadow[result.evicted] = None
            if len(self._shadow) > self.shadow_entries:
                self._shadow.popitem(last=False)
        if self._epoch_misses >= self.epoch_misses:
            self._adapt()
        return result

    def _adapt(self) -> None:
        fraction = self._epoch_premature / self._epoch_misses
        if fraction >= self.grow_threshold:
            self._limit = min(self.max_candidates, self._limit * 2)
        elif fraction <= self.shrink_threshold:
            self._limit = max(self.min_candidates, self._limit // 2)
        self.array.candidate_limit = self._limit
        self._ac["epochs"].value += 1
        self.adaptive_stats.history.append(
            (self.adaptive_stats.epochs, self._limit, fraction)
        )
        self._epoch_premature = 0
        self._epoch_misses = 0
