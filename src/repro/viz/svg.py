"""A minimal SVG line-chart writer.

Supports exactly what the paper's figures need: multiple line series
over a numeric x-axis, linear or logarithmic y-axis, axis ticks and
labels, a legend, and dashed reference lines. Output is a standalone
``<svg>`` document (no CSS, no scripts) renderable by any browser.

Not a plotting library — a figure writer with deliberate limits. The
coordinate math is exact and tested; aesthetics are fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence
from xml.sax.saxutils import escape

#: a qualitative palette (ColorBrewer Set1-ish), cycled across series
PALETTE = (
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
    "#ff7f00", "#a65628", "#f781bf", "#555555",
)


@dataclass
class Series:
    """One line: a label and its (x, y) points."""

    label: str
    xs: Sequence[float]
    ys: Sequence[float]
    dashed: bool = False
    color: Optional[str] = None

    def __post_init__(self):
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if len(self.xs) < 1:
            raise ValueError(f"series {self.label!r} has no points")


@dataclass
class LineChart:
    """A single-panel line chart."""

    title: str
    x_label: str = ""
    y_label: str = ""
    width: int = 520
    height: int = 340
    log_y: bool = False
    y_min: Optional[float] = None
    y_max: Optional[float] = None
    series: list = field(default_factory=list)

    MARGIN_LEFT = 62
    MARGIN_RIGHT = 12
    MARGIN_TOP = 34
    MARGIN_BOTTOM = 46

    def add(self, series: Series) -> "LineChart":
        """Append a series (chainable)."""
        self.series.append(series)
        return self

    # -- scales ----------------------------------------------------------------
    def _x_range(self) -> tuple[float, float]:
        lo = min(min(s.xs) for s in self.series)
        hi = max(max(s.xs) for s in self.series)
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        return lo, hi

    def _y_range(self) -> tuple[float, float]:
        lo = self.y_min
        hi = self.y_max
        if lo is None:
            lo = min(min(s.ys) for s in self.series)
        if hi is None:
            hi = max(max(s.ys) for s in self.series)
        if self.log_y:
            positive = [
                y for s in self.series for y in s.ys if y > 0
            ]
            if not positive:
                raise ValueError("log-y chart needs positive values")
            lo = self.y_min if self.y_min is not None else min(positive)
            if lo <= 0:
                raise ValueError("log-y lower bound must be positive")
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        return lo, hi

    def _plot_box(self) -> tuple[float, float, float, float]:
        return (
            self.MARGIN_LEFT,
            self.MARGIN_TOP,
            self.width - self.MARGIN_RIGHT,
            self.height - self.MARGIN_BOTTOM,
        )

    def x_to_px(self, x: float) -> float:
        """Data x to pixel x (exposed for tests)."""
        lo, hi = self._x_range()
        x0, _, x1, _ = self._plot_box()
        return x0 + (x - lo) / (hi - lo) * (x1 - x0)

    def y_to_px(self, y: float) -> float:
        """Data y to pixel y (exposed for tests)."""
        lo, hi = self._y_range()
        _, y0, _, y1 = self._plot_box()
        if self.log_y:
            y = math.log10(max(y, lo))
            lo, hi = math.log10(lo), math.log10(hi)
        frac = (y - lo) / (hi - lo)
        return y1 - frac * (y1 - y0)

    # -- ticks -----------------------------------------------------------------
    def _linear_ticks(self, lo: float, hi: float, count: int = 6) -> list[float]:
        span = hi - lo
        step = 10 ** math.floor(math.log10(span / max(count - 1, 1)))
        for mult in (1, 2, 2.5, 5, 10):
            if span / (step * mult) <= count:
                step *= mult
                break
        first = math.ceil(lo / step) * step
        ticks = []
        t = first
        while t <= hi + 1e-12:
            ticks.append(round(t, 10))
            t += step
        return ticks

    def _y_ticks(self) -> list[float]:
        lo, hi = self._y_range()
        if not self.log_y:
            return self._linear_ticks(lo, hi)
        lo_exp = math.floor(math.log10(lo))
        hi_exp = math.ceil(math.log10(hi))
        return [10.0**e for e in range(lo_exp, hi_exp + 1)]

    # -- rendering --------------------------------------------------------------
    def render(self) -> str:
        """The chart as a standalone SVG document string."""
        if not self.series:
            raise ValueError("chart has no series")
        x0, y0, x1, y1 = self._plot_box()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.1f}" y="18" text-anchor="middle" '
            f'font-family="sans-serif" font-size="13" font-weight="bold">'
            f"{escape(self.title)}</text>",
            f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
            'fill="none" stroke="#222" stroke-width="1"/>',
        ]
        # ticks
        xlo, xhi = self._x_range()
        for t in self._linear_ticks(xlo, xhi):
            px = self.x_to_px(t)
            parts.append(
                f'<line x1="{px:.1f}" y1="{y1}" x2="{px:.1f}" y2="{y1 + 4}" '
                'stroke="#222"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{y1 + 16}" text-anchor="middle" '
                f'font-family="sans-serif" font-size="10">{t:g}</text>'
            )
        for t in self._y_ticks():
            py = self.y_to_px(t)
            if not y0 - 1 <= py <= y1 + 1:
                continue
            parts.append(
                f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" '
                'stroke="#222"/>'
            )
            label = f"{t:.0e}" if self.log_y else f"{t:g}"
            parts.append(
                f'<text x="{x0 - 7}" y="{py + 3:.1f}" text-anchor="end" '
                f'font-family="sans-serif" font-size="10">{label}</text>'
            )
            parts.append(
                f'<line x1="{x0}" y1="{py:.1f}" x2="{x1}" y2="{py:.1f}" '
                'stroke="#ddd" stroke-width="0.5"/>'
            )
        # axis labels
        if self.x_label:
            parts.append(
                f'<text x="{(x0 + x1) / 2:.1f}" y="{self.height - 8}" '
                'text-anchor="middle" font-family="sans-serif" '
                f'font-size="11">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            cx, cy = 14, (y0 + y1) / 2
            parts.append(
                f'<text x="{cx}" y="{cy:.1f}" text-anchor="middle" '
                f'font-family="sans-serif" font-size="11" '
                f'transform="rotate(-90 {cx} {cy:.1f})">'
                f"{escape(self.y_label)}</text>"
            )
        # series
        for i, s in enumerate(self.series):
            color = s.color or PALETTE[i % len(PALETTE)]
            pts = " ".join(
                f"{self.x_to_px(x):.1f},{self.y_to_px(y):.1f}"
                for x, y in zip(s.xs, s.ys)
            )
            dash = ' stroke-dasharray="5,4"' if s.dashed else ""
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="1.6"{dash}/>'
            )
        # legend
        lx, ly = x0 + 8, y0 + 6
        for i, s in enumerate(self.series):
            color = s.color or PALETTE[i % len(PALETTE)]
            yy = ly + 13 * i
            dash = ' stroke-dasharray="5,4"' if s.dashed else ""
            parts.append(
                f'<line x1="{lx}" y1="{yy + 4}" x2="{lx + 18}" y2="{yy + 4}" '
                f'stroke="{color}" stroke-width="1.6"{dash}/>'
            )
            parts.append(
                f'<text x="{lx + 22}" y="{yy + 8}" font-family="sans-serif" '
                f'font-size="10">{escape(s.label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())


@dataclass
class BarChart:
    """Grouped bar chart (for the Fig. 5-style per-group comparisons).

    ``groups`` are x-axis categories; each series contributes one bar
    per group. The y-axis is linear, with an optional reference line
    (Fig. 5 draws y = 1.0, the baseline).
    """

    title: str
    groups: Sequence[str] = ()
    y_label: str = ""
    width: int = 640
    height: int = 340
    reference: Optional[float] = None
    series: list = field(default_factory=list)

    MARGIN_LEFT = 58
    MARGIN_RIGHT = 12
    MARGIN_TOP = 34
    MARGIN_BOTTOM = 66

    def add(self, label: str, values: Sequence[float]) -> "BarChart":
        """Append one series: one value per group (chainable)."""
        if len(values) != len(self.groups):
            raise ValueError(
                f"series {label!r}: {len(values)} values for "
                f"{len(self.groups)} groups"
            )
        self.series.append((label, list(values)))
        return self

    def _y_range(self) -> tuple[float, float]:
        values = [v for _l, vs in self.series for v in vs]
        if self.reference is not None:
            values.append(self.reference)
        lo = min(0.0, min(values))
        hi = max(values)
        if hi == lo:
            hi = lo + 1.0
        return lo, hi * 1.05

    def render(self) -> str:
        """The chart as a standalone SVG document string."""
        if not self.series:
            raise ValueError("chart has no series")
        if not self.groups:
            raise ValueError("chart has no groups")
        x0 = self.MARGIN_LEFT
        y0 = self.MARGIN_TOP
        x1 = self.width - self.MARGIN_RIGHT
        y1 = self.height - self.MARGIN_BOTTOM
        lo, hi = self._y_range()

        def y_px(v: float) -> float:
            return y1 - (v - lo) / (hi - lo) * (y1 - y0)

        group_w = (x1 - x0) / len(self.groups)
        bar_w = group_w * 0.8 / len(self.series)
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2:.1f}" y="18" text-anchor="middle" '
            'font-family="sans-serif" font-size="13" font-weight="bold">'
            f"{escape(self.title)}</text>",
            f'<rect x="{x0}" y="{y0}" width="{x1 - x0}" height="{y1 - y0}" '
            'fill="none" stroke="#222"/>',
        ]
        for gi, group in enumerate(self.groups):
            gx = x0 + gi * group_w
            for si, (_label, values) in enumerate(self.series):
                bx = gx + group_w * 0.1 + si * bar_w
                v = values[gi]
                top = y_px(max(v, 0.0))
                bottom = y_px(min(v, 0.0))
                parts.append(
                    f'<rect x="{bx:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                    f'height="{max(bottom - top, 0.5):.1f}" '
                    f'fill="{PALETTE[si % len(PALETTE)]}"/>'
                )
            cx = gx + group_w / 2
            parts.append(
                f'<text x="{cx:.1f}" y="{y1 + 12}" text-anchor="end" '
                'font-family="sans-serif" font-size="9" '
                f'transform="rotate(-35 {cx:.1f} {y1 + 12})">'
                f"{escape(group)}</text>"
            )
        if self.reference is not None:
            ry = y_px(self.reference)
            parts.append(
                f'<line x1="{x0}" y1="{ry:.1f}" x2="{x1}" y2="{ry:.1f}" '
                'stroke="#000" stroke-dasharray="4,3"/>'
            )
        if self.y_label:
            cx, cy = 14, (y0 + y1) / 2
            parts.append(
                f'<text x="{cx}" y="{cy:.1f}" text-anchor="middle" '
                'font-family="sans-serif" font-size="11" '
                f'transform="rotate(-90 {cx} {cy:.1f})">'
                f"{escape(self.y_label)}</text>"
            )
        lx, ly = x0 + 6, y0 + 6
        for si, (label, _values) in enumerate(self.series):
            yy = ly + 12 * si
            parts.append(
                f'<rect x="{lx}" y="{yy}" width="10" height="8" '
                f'fill="{PALETTE[si % len(PALETTE)]}"/>'
            )
            parts.append(
                f'<text x="{lx + 14}" y="{yy + 7}" font-family="sans-serif" '
                f'font-size="9">{escape(label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())
