"""Figure layouts: experiment outputs -> the paper's charts as SVG."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.assoc import uniformity_cdf
from repro.viz.svg import BarChart, LineChart, Series


def fig2_svg(out_dir, result=None) -> list[Path]:
    """Fig. 2: uniformity CDFs, linear and semilog panels.

    ``result`` is a :class:`repro.experiments.fig2.Fig2Result`; computed
    fresh if omitted.
    """
    from repro.experiments import fig2

    result = result or fig2.run()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for log_y in (False, True):
        chart = LineChart(
            title="Fig.2: associativity CDFs under uniformity"
            + (" (semilog)" if log_y else ""),
            x_label="eviction priority e",
            y_label="P(E <= e)",
            log_y=log_y,
            y_min=1e-8 if log_y else 0.0,
            y_max=1.0,
        )
        for n in sorted(result.analytic):
            ys = result.analytic[n]
            if log_y:
                keep = ys > 1e-8
                chart.add(
                    Series(f"x^{n} analytic", result.xs[keep], ys[keep])
                )
            else:
                chart.add(Series(f"x^{n} analytic", result.xs, ys))
            sim_ys = result.simulated[n][0]
            keep = sim_ys > (1e-8 if log_y else -1)
            chart.add(
                Series(
                    f"n={n} simulated",
                    np.asarray(result.xs)[keep],
                    np.asarray(sim_ys)[keep],
                    dashed=True,
                )
            )
        path = out_dir / ("fig2_semilog.svg" if log_y else "fig2_linear.svg")
        chart.save(path)
        paths.append(path)
    return paths


def fig3_svg(out_dir, cells) -> list[Path]:
    """Fig. 3: one SVG per panel, CDFs per workload + uniformity line.

    ``cells`` come from :func:`repro.experiments.fig3.run`.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    xs = np.linspace(0.0, 1.0, 101)
    panels: dict[str, list] = {}
    for cell in cells:
        panels.setdefault(cell.panel, []).append(cell)
    paths = []
    for panel, panel_cells in panels.items():
        chart = LineChart(
            title=f"Fig.3 {panel}",
            x_label="eviction priority e",
            y_label="CDF",
            y_min=0.0,
            y_max=1.0,
        )
        for cell in panel_cells:
            chart.add(
                Series(
                    f"{cell.design} {cell.workload}",
                    xs,
                    cell.distribution.cdf(xs),
                )
            )
        n_values = {c.candidates for c in panel_cells}
        for n in sorted(n_values):
            cdf = uniformity_cdf(n)
            chart.add(
                Series(
                    f"x^{n} (uniformity)",
                    xs,
                    [cdf(x) for x in xs],
                    dashed=True,
                    color="#000000",
                )
            )
        slug = panel.split(":")[0].strip()
        path = out_dir / f"fig3_{slug}.svg"
        chart.save(path)
        paths.append(path)
    return paths


def fig4_svg(out_dir, result, policy: str = "lru") -> list[Path]:
    """Fig. 4: sorted improvement lines, one SVG per metric.

    ``result`` comes from :func:`repro.experiments.fig4.run`.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for metric, label in (("mpki", "L2 MPKI improvement"),
                          ("ipc", "IPC improvement")):
        chart = LineChart(
            title=f"Fig.4: {label} over SA-4h ({policy.upper()})",
            x_label="workloads (sorted per design)",
            y_label=f"{label} (x)",
        )
        for series in sorted(
            (s for s in result.series
             if s.metric == metric and s.policy == policy),
            key=lambda s: s.design,
        ):
            values = series.values()
            chart.add(Series(series.design, list(range(len(values))), values))
        path = out_dir / f"fig4_{metric}_{policy}.svg"
        chart.save(path)
        paths.append(path)
    return paths


def fig5_svg(out_dir, cells, policy: str = "lru") -> list[Path]:
    """Fig. 5: grouped bars (workloads + geomeans x designs), two panels.

    ``cells`` come from :func:`repro.experiments.fig5.run`.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    selected = [c for c in cells if c.policy == policy]
    groups = list(dict.fromkeys(c.group for c in selected))
    designs = list(dict.fromkeys(c.design for c in selected))
    by_key = {(c.design, c.group): c for c in selected}
    paths = []
    for attr, label in (
        ("ipc_improvement", "IPC improvement"),
        ("bips_per_watt_improvement", "BIPS/W improvement"),
    ):
        chart = BarChart(
            title=f"Fig.5: {label} vs serial SA-4h ({policy.upper()})",
            groups=groups,
            y_label=f"{label} (x)",
            reference=1.0,
        )
        for design in designs:
            chart.add(
                design,
                [getattr(by_key[(design, g)], attr) for g in groups],
            )
        path = out_dir / f"fig5_{attr.split('_')[0]}_{policy}.svg"
        chart.save(path)
        paths.append(path)
    return paths
