"""Dependency-free figure rendering.

The evaluation figures are line charts (CDFs, sorted improvement
series). This package renders them as standalone SVG files with no
third-party plotting dependency, so the repository can regenerate the
paper's figures as actual images anywhere the library runs.

- :mod:`repro.viz.svg` — a minimal SVG line-chart writer (axes, ticks,
  legends, linear and log-y scales).
- :mod:`repro.viz.figures` — glue turning experiment outputs into the
  paper's figure layouts.
"""

from repro.viz.figures import fig2_svg, fig3_svg, fig4_svg, fig5_svg
from repro.viz.svg import BarChart, LineChart, Series

__all__ = [
    "LineChart",
    "BarChart",
    "Series",
    "fig2_svg",
    "fig3_svg",
    "fig4_svg",
    "fig5_svg",
]
