"""CACTI-like analytical model of a cache bank's tag and data arrays.

Geometry: ``capacity_bytes`` of data in 64-byte lines, ``ways`` ways.
Tag and data arrays are modelled separately (the paper designs them
separately with a full design-space exploration; we use closed forms).

Energy model (per access, nanojoules):

- reading one way's tag costs ``E_TAG_READ`` (tags are narrow);
- reading one way's data line costs a wire/decode term growing with
  sqrt(capacity) plus a readout term for the 512-bit line;
- a *serial* hit reads W tags + 1 data way;
- a *parallel* hit reads W tags and speculatively activates all W data
  ways' wordlines, of which one propagates: data energy is multiplied by
  ``1 + PARALLEL_WAY_FACTOR * (W - 1)``;
- writes cost ``WRITE_FACTOR`` x the corresponding read.

Latency model (cycles at 2 GHz, 32 nm): the tag path grows with
``log2(W)`` (wider port, deeper comparator mux); serial lookups add the
full data-array latency after the tag resolves, parallel lookups overlap
the two and pay only a way-select margin.

The coefficients are calibrated so the published Table II ratios hold
exactly at 8 MB (see module docstring of :mod:`repro.energy`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

LINE_BYTES = 64
#: stored tag width (full block address for hashed/skewed indexing,
#: plus coherence state and an 8-bit bucketed-LRU timestamp)
TAG_BITS = 58

# -- calibrated coefficients (32 nm, 2 GHz) ---------------------------------
#: energy to read one way's tag, nJ, for a 1 MB bank (scales with sqrt cap)
E_TAG_READ_1MB = 0.010
#: energy to read one data line from a 1 MB bank, nJ
E_DATA_READ_1MB = 0.240
#: extra data-array energy per additional way activated in parallel mode
PARALLEL_WAY_FACTOR = 0.072
#: write energy relative to read energy
WRITE_FACTOR = 1.2
#: data-array latency for a 1 MB bank, cycles
T_DATA_1MB = 5.0
#: tag-path latency: T = T_TAG_BASE + T_TAG_PER_LOG2WAY * log2(W)
T_TAG_BASE = 5.0 / 3.0
T_TAG_PER_LOG2WAY = 2.0 / 3.0
#: parallel lookup way-select margin, cycles
T_WAYSEL = -1.0 / 3.0  # net of tag/data overlap; fitted, see tests
#: area: data cells + overhead, mm^2 per MB
AREA_DATA_PER_MB = 3.2
#: tag area port/comparator growth per way
AREA_TAG_WAY_FACTOR = 0.08
#: static power, W per MB (low-leakage process for the L2)
LEAKAGE_W_PER_MB = 0.06


@dataclass(frozen=True)
class CacheGeometry:
    """Physical shape of one cache bank."""

    capacity_bytes: int
    ways: int
    line_bytes: int = LINE_BYTES

    def __post_init__(self):
        if self.capacity_bytes < self.line_bytes:
            raise ValueError("capacity smaller than one line")
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.blocks % self.ways:
            raise ValueError("capacity must divide evenly into ways")

    @property
    def blocks(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def lines_per_way(self) -> int:
        return self.blocks // self.ways

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bytes / (1 << 20)


@dataclass(frozen=True)
class ArrayEnergy:
    """Per-event energies for one bank, nanojoules."""

    tag_read: float
    tag_write: float
    data_read: float
    data_write: float

    @property
    def relocation(self) -> float:
        """One relocation reads and rewrites a block's tag and data."""
        return self.tag_read + self.tag_write + self.data_read + self.data_write


class ArrayModel:
    """Timing/area/energy for one cache bank.

    Parameters
    ----------
    geometry:
        Bank shape.
    parallel_lookup:
        Parallel (overlapped tag+data) vs. serial lookup.
    """

    def __init__(self, geometry: CacheGeometry, parallel_lookup: bool = False) -> None:
        self.geometry = geometry
        self.parallel_lookup = parallel_lookup
        # Wire/decode energy grows with the square root of capacity
        # (H-tree depth); normalise to the 1 MB calibration point.
        scale = math.sqrt(geometry.capacity_mb)
        self._e_tag_read = E_TAG_READ_1MB * scale
        self._e_data_read = E_DATA_READ_1MB * scale
        self._t_data = T_DATA_1MB * max(1.0, math.sqrt(geometry.capacity_mb))

    # -- energies -------------------------------------------------------------
    def energies(self) -> ArrayEnergy:
        """Per-event array energies (E_rt, E_wt, E_rd, E_wd of §III-B)."""
        return ArrayEnergy(
            tag_read=self._e_tag_read,
            tag_write=self._e_tag_read * WRITE_FACTOR,
            data_read=self._e_data_read,
            data_write=self._e_data_read * WRITE_FACTOR,
        )

    def hit_energy(self) -> float:
        """Energy of one hit, nJ."""
        w = self.geometry.ways
        e = self.energies()
        tag = w * e.tag_read
        if self.parallel_lookup:
            data = e.data_read * (1.0 + PARALLEL_WAY_FACTOR * (w - 1))
        else:
            data = e.data_read
        return tag + data

    def fill_energy(self) -> float:
        """Writing the incoming block's tag and data."""
        e = self.energies()
        return e.tag_write + e.data_write

    # -- latency ----------------------------------------------------------------
    def tag_latency(self) -> float:
        """Tag-path latency in cycles (grows with log2 of the ways)."""
        return T_TAG_BASE + T_TAG_PER_LOG2WAY * math.log2(self.geometry.ways)

    def hit_latency(self) -> float:
        """Bank hit latency in cycles (fractional; round for Table II)."""
        if self.parallel_lookup:
            # Tag and data overlap; only the way-select margin and the
            # tag path's way-dependent growth remain exposed. Fitted so
            # a 1 MB 4-way parallel bank lands on 6 cycles (Table I).
            return (
                self._t_data
                + T_WAYSEL
                + T_TAG_PER_LOG2WAY * math.log2(self.geometry.ways)
            )
        return self.tag_latency() + self._t_data

    def hit_latency_cycles(self) -> int:
        """Hit latency rounded to whole cycles (Table II form)."""
        return max(1, round(self.hit_latency()))

    # -- area ----------------------------------------------------------------------
    def area_mm2(self) -> float:
        """Bank area: data cells plus way-dependent tag overhead."""
        data = AREA_DATA_PER_MB * self.geometry.capacity_mb
        tag_bits = self.geometry.blocks * TAG_BITS
        data_bits = self.geometry.capacity_bytes * 8
        tag = data * (tag_bits / data_bits) * (
            1.0 + AREA_TAG_WAY_FACTOR * self.geometry.ways
        )
        return data + tag

    def leakage_watts(self) -> float:
        """Static power of the bank (low-leakage L2 process)."""
        return LEAKAGE_W_PER_MB * self.geometry.capacity_mb
