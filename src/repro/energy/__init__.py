"""Analytical timing / area / energy models (paper Section VI-A).

The paper uses CACTI 6.5 (32 nm ITRS) for cache arrays and McPAT for the
whole chip. Neither tool is available here, so :mod:`repro.energy`
implements analytical stand-ins calibrated to the ratios the paper
publishes from Table II:

- 32-way vs. 4-way set-associative, serial lookup: 1.22x area,
  1.23x hit latency, 2x hit energy;
- parallel lookup: 1.32x hit latency, 3.3x hit energy;
- a serial Z4/52 has ~1.3x the energy per miss of a 32-way SA cache
  while keeping 4-way hit energy and latency;
- L2 bank latencies spanning the 6-11 cycle range of Table I.

The scaling *laws* (tag energy ∝ ways, data-array wire energy ∝ sqrt of
capacity, parallel lookup activating all ways' data) are physical; the
coefficients are fit to those anchors. A calibration test in
``tests/energy`` asserts the anchors hold.
"""

from repro.energy.arrays import ArrayEnergy, ArrayModel, CacheGeometry
from repro.energy.cachecost import CacheCostModel, CostRow, table2_rows
from repro.energy.mcpat import ChipPowerModel, SystemEnergyReport

__all__ = [
    "CacheGeometry",
    "ArrayModel",
    "ArrayEnergy",
    "CacheCostModel",
    "CostRow",
    "table2_rows",
    "ChipPowerModel",
    "SystemEnergyReport",
]
