"""McPAT-like system power roll-up: BIPS and BIPS/W (paper Fig. 5).

The paper's CMP (Table I): 32 in-order Atom-class x86 cores at 2 GHz on
32 nm, ~220 mm^2, ~90 W TDP. The model charges:

- static power: per-core leakage + L2 leakage + uncore;
- dynamic energy: per instruction (core pipeline), per L1 access, per L2
  hit/miss/walk/relocation (from the :class:`~repro.energy.cachecost.
  CacheCostModel`), and per memory access.

``BIPS/W = (instructions / seconds) / watts / 1e9`` — the paper's
energy-efficiency metric. Coefficients are chosen so the modelled chip
lands near the published 90 W envelope under typical activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cachecost import CacheCostModel

CLOCK_HZ = 2_000_000_000

# -- calibrated dynamic energies, nJ per event -------------------------------
E_CORE_PER_INSTRUCTION = 0.12  # in-order pipeline + register file + clocking
E_L1_ACCESS = 0.035
E_MEMORY_ACCESS = 6.0  # DRAM activate/precharge + channel, per 64 B line
#: portion of the per-miss memory energy attributed to the line transfer
#: itself (also paid by writebacks).
E_MEMORY_LINE_SHARE = 2.0

# -- static power, W ----------------------------------------------------------
P_CORE_STATIC = 0.9  # per core, high-performance process
P_UNCORE_STATIC = 6.0  # NoC, MCs, clocking


@dataclass(frozen=True)
class SystemEnergyReport:
    """Energy/performance roll-up for one simulation."""

    instructions: int
    cycles: int
    num_cores: int
    energy_joules: float

    @property
    def seconds(self) -> float:
        return self.cycles / CLOCK_HZ

    @property
    def watts(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.energy_joules / self.seconds

    @property
    def bips(self) -> float:
        """Billions of instructions per second (aggregate)."""
        if self.seconds == 0:
            return 0.0
        return self.instructions / self.seconds / 1e9

    @property
    def bips_per_watt(self) -> float:
        if self.energy_joules == 0:
            return 0.0
        return self.instructions / 1e9 / self.energy_joules

    @property
    def ipc(self) -> float:
        """Aggregate IPC across all cores."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class ChipPowerModel:
    """Turns simulation activity counts into a system energy report.

    Parameters
    ----------
    l2_cost:
        Cost model of one L2 bank (all banks are identical).
    num_cores:
        Core count (Table I: 32).
    num_banks:
        L2 bank count (Table I: 8).
    """

    def __init__(
        self, l2_cost: CacheCostModel, num_cores: int = 32, num_banks: int = 8
    ) -> None:
        if num_cores < 1 or num_banks < 1:
            raise ValueError("num_cores and num_banks must be >= 1")
        self.l2_cost = l2_cost
        self.num_cores = num_cores
        self.num_banks = num_banks

    def static_watts(self) -> float:
        """Chip static power: cores + L2 banks + uncore."""
        return (
            self.num_cores * P_CORE_STATIC
            + self.num_banks * self.l2_cost.leakage_watts()
            + P_UNCORE_STATIC
        )

    def report(
        self,
        instructions: int,
        cycles: int,
        l1_accesses: int,
        l2_hits: int,
        l2_misses: int,
        l2_writebacks: int = 0,
        walk_tag_reads: int = 0,
        relocations: int = 0,
    ) -> SystemEnergyReport:
        """Roll activity counts up into total energy.

        ``walk_tag_reads``/``relocations`` are the zcache replacement
        activity; for a set-associative cache the miss's set read is
        included in its per-miss energy and these stay 0.
        """
        if min(instructions, cycles, l1_accesses, l2_hits, l2_misses) < 0:
            raise ValueError("activity counts must be non-negative")
        e = self.l2_cost.array.energies()
        dynamic_nj = (
            instructions * E_CORE_PER_INSTRUCTION
            + l1_accesses * E_L1_ACCESS
            + l2_hits * self.l2_cost.hit_energy()
            + l2_misses
            * (e.data_read + e.tag_write + e.data_write)  # victim + fill
            + l2_misses * E_MEMORY_LINE_SHARE
            + l2_writebacks * E_MEMORY_LINE_SHARE
            + walk_tag_reads * e.tag_read
            + relocations * e.relocation
        )
        if not self.l2_cost.is_zcache:
            # The failed set lookup on each miss.
            dynamic_nj += l2_misses * self.l2_cost.geometry.ways * e.tag_read
        dynamic_nj += l2_misses * (E_MEMORY_ACCESS - E_MEMORY_LINE_SHARE)
        static_j = self.static_watts() * (cycles / CLOCK_HZ)
        return SystemEnergyReport(
            instructions=instructions,
            cycles=cycles,
            num_cores=self.num_cores,
            energy_joules=static_j + dynamic_nj * 1e-9,
        )
