"""Cache cost model: Table II rows for any design.

A :class:`CacheCostModel` wraps an :class:`~repro.energy.arrays.
ArrayModel` and knows how a *design* (set-associative or zcache) uses the
arrays per hit and per miss:

- **hit**: W tag reads + data read (serial) or overlapped parallel read;
- **SA miss**: the failed W-way lookup, the victim's data read (for
  write-back), the fill writes, and the memory line transfer;
- **zcache miss**: an R-candidate walk (R single-way tag reads), the
  mean number of relocations (each a tag+data read+write), victim read,
  fill writes, and the memory transfer.

Energy per miss therefore follows the paper's Section III-B formula
``E_miss = E_walk + E_relocs = R*E_rt + m*(E_rt + E_rd + E_wt + E_wd)``
plus the common victim/fill/memory terms that both designs pay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.zcache import replacement_candidates
from repro.energy.arrays import ArrayModel, CacheGeometry

#: energy of transferring one 64 B line over the memory channel, nJ —
#: paid on every miss by every design (common-mode term).
E_MEMORY_LINE = 2.0


@dataclass(frozen=True)
class CostRow:
    """One Table II row."""

    design: str
    lookup: str  # "serial" | "parallel"
    ways: int
    candidates: int
    area_mm2: float
    hit_latency_cycles: int
    hit_energy_nj: float
    miss_energy_nj: float

    def format(self) -> str:
        """One formatted Table II line."""
        return (
            f"{self.design:8s} {self.lookup:8s} W={self.ways:<3d} R={self.candidates:<3d} "
            f"area={self.area_mm2:6.2f}mm2  lat={self.hit_latency_cycles:2d}cy  "
            f"Ehit={self.hit_energy_nj:6.3f}nJ  Emiss={self.miss_energy_nj:6.3f}nJ"
        )


class CacheCostModel:
    """Timing/area/energy for one cache design (one bank).

    Parameters
    ----------
    capacity_bytes:
        Bank capacity.
    ways:
        Physical ways.
    levels:
        Walk depth; ``None`` or 1 means a conventional design with
        candidates == ways (set-associative and skew-associative cost
        the same per access).
    parallel_lookup:
        Lookup organisation.
    mean_relocations:
        Expected relocations per replacement (a zcache statistic; use
        the simulated value, or the model default of half the maximum).
    """

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        levels: int | None = None,
        parallel_lookup: bool = False,
        mean_relocations: float | None = None,
    ) -> None:
        self.geometry = CacheGeometry(capacity_bytes, ways)
        self.array = ArrayModel(self.geometry, parallel_lookup)
        self.levels = levels if levels is not None else 1
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.parallel_lookup = parallel_lookup
        self.candidates = replacement_candidates(ways, self.levels)
        if mean_relocations is None:
            mean_relocations = (self.levels - 1) / 2.0
        if mean_relocations < 0 or mean_relocations > self.levels - 1 + 1e-9:
            raise ValueError(
                f"mean_relocations must be in [0, levels-1], got {mean_relocations}"
            )
        self.mean_relocations = mean_relocations

    @property
    def is_zcache(self) -> bool:
        return self.levels > 1

    def design_name(self) -> str:
        """Paper-style label: SA-<W> or Z<W>/<R>."""
        if self.is_zcache:
            return f"Z{self.geometry.ways}/{self.candidates}"
        return f"SA-{self.geometry.ways}"

    # -- per-event energies --------------------------------------------------
    def hit_energy(self) -> float:
        """nJ per hit."""
        return self.array.hit_energy()

    def walk_energy(self, candidates: int | None = None) -> float:
        """E_walk = R x E_rt (paper Section III-B)."""
        r = self.candidates if candidates is None else candidates
        return r * self.array.energies().tag_read

    def relocation_energy(self) -> float:
        """One relocation: read + rewrite one block's tag and data."""
        return self.array.energies().relocation

    def miss_energy(self, include_memory: bool = True) -> float:
        """nJ per miss, including victim read, fill, and (optionally)
        the memory line transfer."""
        e = self.array.energies()
        common = e.data_read + e.tag_write + e.data_write  # victim + fill
        if include_memory:
            common += E_MEMORY_LINE
        if self.is_zcache:
            return (
                self.walk_energy()
                + self.mean_relocations * self.relocation_energy()
                + common
            )
        # Conventional lookup already read the W tags of the set.
        return self.geometry.ways * e.tag_read + common

    # -- roll-ups -----------------------------------------------------------------
    def hit_latency_cycles(self) -> int:
        """Bank hit latency in cycles."""
        return self.array.hit_latency_cycles()

    def area_mm2(self) -> float:
        """Bank area in mm^2."""
        return self.array.area_mm2()

    def leakage_watts(self) -> float:
        """Bank static power in watts."""
        return self.array.leakage_watts()

    def row(self) -> CostRow:
        """This design's Table II row."""
        return CostRow(
            design=self.design_name(),
            lookup="parallel" if self.parallel_lookup else "serial",
            ways=self.geometry.ways,
            candidates=self.candidates,
            area_mm2=self.area_mm2(),
            hit_latency_cycles=self.hit_latency_cycles(),
            hit_energy_nj=self.hit_energy(),
            miss_energy_nj=self.miss_energy(),
        )


def table2_rows(
    capacity_bytes: int = 1 << 20, mean_relocations: float = 1.0
) -> list[CostRow]:
    """All Table II rows for one bank of the given capacity.

    Set-associative designs at 4/8/16/32 ways and zcaches Z4/16 and
    Z4/52 (two- and three-level walks), each in serial and parallel
    lookup variants.
    """
    rows: list[CostRow] = []
    for parallel in (False, True):
        for ways in (4, 8, 16, 32):
            rows.append(
                CacheCostModel(
                    capacity_bytes, ways, parallel_lookup=parallel
                ).row()
            )
        for levels in (2, 3):
            rows.append(
                CacheCostModel(
                    capacity_bytes,
                    4,
                    levels=levels,
                    parallel_lookup=parallel,
                    mean_relocations=min(mean_relocations, levels - 1),
                ).row()
            )
    return rows
