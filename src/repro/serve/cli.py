"""ZServe subcommands: ``zcache-repro serve`` / ``zcache-repro loadgen``.

``serve`` boots the TCP front end and blocks until interrupted;
``loadgen`` replays a workload proxy in-process against a chosen
backend and prints the throughput/latency report (add ``--json`` for
machine-readable output, ``--sanitize`` to wrap every shard array in
the ZSan runtime sanitizer).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from repro.serve.loadgen import LoadGenConfig, ServeBackend, run_loadgen
from repro.serve.service import MODES, ServeConfig, ZServeCache


def _add_geometry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=4,
        help="number of hash partitions (default 4)",
    )
    parser.add_argument(
        "--ways", type=int, default=4,
        help="zcache ways per shard (default 4)",
    )
    parser.add_argument(
        "--lines", type=int, default=256,
        help="lines per way per shard (default 256)",
    )
    parser.add_argument(
        "--levels", type=int, default=2,
        help="replacement-walk depth (default 2)",
    )
    parser.add_argument(
        "--policy", type=str, default="lru",
        help="replacement policy name (default lru)",
    )
    parser.add_argument(
        "--mode", choices=MODES, default="twophase",
        help="'twophase' = off-lock walk, commit under the shard lock; "
        "'locked' = whole access under the lock (naive baseline)",
    )
    parser.add_argument(
        "--fingerprint", action="store_true",
        help="store + re-verify an integrity digest for byte payloads",
    )


def _config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        num_shards=args.shards,
        num_ways=args.ways,
        lines_per_way=args.lines,
        levels=args.levels,
        policy=args.policy,
        mode=args.mode,
        fingerprint=args.fingerprint,
    )


def run_serve_cli(argv: Optional[list[str]] = None) -> int:
    """Boot the TCP server and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="zcache-repro serve",
        description="Serve the sharded zcache over TCP (one-line text "
        "protocol: GET/PUT/DEL/STATS/PING).",
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=9401,
        help="TCP port (0 = pick a free one; default 9401)",
    )
    _add_geometry_args(parser)
    args = parser.parse_args(argv)

    from repro.serve.server import ZServeServer

    cache = ZServeCache(_config_from_args(args))
    with ZServeServer(cache, host=args.host, port=args.port) as server:
        host, port = server.address
        print(
            f"zserve listening on {host}:{port} "
            f"({args.shards} shards x {args.ways}x{args.lines} "
            f"{args.policy}, mode={args.mode})"
        )
        sys.stdout.flush()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
    return 0


def run_loadgen_cli(argv: Optional[list[str]] = None) -> int:
    """Replay a workload proxy against an in-process backend."""
    parser = argparse.ArgumentParser(
        prog="zcache-repro loadgen",
        description="Replay one of the 72 workload proxies as concurrent "
        "request traffic and report throughput + latency percentiles.",
    )
    parser.add_argument(
        "--workload", type=str, default="gcc",
        help="workload proxy name (default gcc; see 'zcache-repro roster')",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="concurrent client threads (default 4)",
    )
    parser.add_argument(
        "--requests", type=int, default=25_000,
        help="requests per worker (default 25000)",
    )
    parser.add_argument(
        "--footprint", type=int, default=4096,
        help="workload footprint scale in blocks (default 4096)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--payload-bytes", type=int, default=0,
        help="store byte payloads of this size instead of small ints "
        "(combine with --fingerprint for per-read integrity checks)",
    )
    parser.add_argument(
        "--backend", choices=("zserve", "dictlru"), default="zserve",
        help="'zserve' = the sharded zcache service; 'dictlru' = the "
        "single-lock OrderedDict baseline at equal capacity",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="wrap every shard array in the ZSan runtime sanitizer "
        "(zserve backend only; slower, catches invariant violations)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the report as JSON ('-' = stdout)",
    )
    _add_geometry_args(parser)
    args = parser.parse_args(argv)

    cfg = _config_from_args(args)
    backend: ServeBackend
    if args.backend == "dictlru":
        from repro.serve.baseline import DictLRUServe

        backend = DictLRUServe(capacity=cfg.capacity)
    else:
        wrap = None
        if args.sanitize:
            from repro.analysis.sanitizer import make_wrapper

            wrap = make_wrapper(seed=args.seed)
        backend = ZServeCache(cfg, wrap_array=wrap)

    result = run_loadgen(
        backend,
        LoadGenConfig(
            workload=args.workload,
            num_workers=args.workers,
            requests_per_worker=args.requests,
            footprint_blocks=args.footprint,
            seed=args.seed,
            payload_bytes=args.payload_bytes,
        ),
    )
    payload: dict[str, Any] = result.to_dict()
    print(
        f"{result.workload}: {result.requests} requests / "
        f"{result.workers} workers in {result.elapsed_s:.2f}s = "
        f"{result.throughput_rps:,.0f} req/s"
    )
    print(
        f"  read hit rate {result.hit_rate:.3f}  latency p50 "
        f"{result.p50_us:.1f}us  p95 {result.p95_us:.1f}us  "
        f"p99 {result.p99_us:.1f}us"
    )
    if args.backend == "zserve":
        assert isinstance(backend, ZServeCache)
        print(
            f"  stale_retries {backend.stale_retries}  walk_races "
            f"{backend.walk_races}  fallback_fills {backend.fallback_fills}"
        )
        backend.check_consistency()
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=1)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"JSON written to {args.json}")
    return 0
