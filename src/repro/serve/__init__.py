"""ZServe: the zcache as a real concurrent key→value cache service.

Everything below :mod:`repro.core` *simulates* caches; this package
turns the two-phase zcache into a working in-memory cache that stores
real payloads and serves concurrent traffic. The design follows
"Limited Associativity Makes Concurrent Software Caches a Breeze"
(arXiv 2109.03021): limited-associativity buckets make locking cheap,
and the zcache walk is the extreme case — candidate collection touches
many positions but *mutates nothing*, so it can run entirely outside
the lock. Only the relocation commit needs mutual exclusion:

1. **off-lock walk** — :meth:`~repro.core.twophase.TwoPhaseZCache.
   prepare_fill` collects replacement candidates with no lock held;
2. **commit under the shard lock** — :meth:`~repro.core.twophase.
   TwoPhaseZCache.commit_prepared` re-validates every recorded
   (position, address) pair and either applies the relocations or
   raises :class:`~repro.core.twophase.StaleWalkError`;
3. **bounded retry** — a stale plan is re-prepared a few times, then
   the shard falls back to walking under the lock (always succeeds).

Reads never lock at all: the payload dict mirrors array residency, a
single ``dict.get`` is atomic under the GIL, and read recency is
buffered and replayed into the replacement policy by the next writer
(the Breeze paper's deferred-metadata trick). A read racing an
eviction of the same key may return the just-removed value — ordinary
cache-service staleness, never corruption.

Layout
------
- :mod:`repro.serve.shard` — one lock + one ``TwoPhaseZCache`` +
  payload storage; the two-phase discipline lives here.
- :mod:`repro.serve.service` — :class:`ZServeCache`: hash-partitioned
  shards behind a get/put/invalidate API.
- :mod:`repro.serve.baseline` — the plain dict+LRU competitor.
- :mod:`repro.serve.loadgen` — replays the 72 workload proxies as
  concurrent request streams and reports throughput + latency
  percentiles.
- :mod:`repro.serve.server` — a threaded TCP front end speaking a
  one-line text protocol, plus a small client.
- :mod:`repro.serve.cli` — ``zcache-repro serve`` / ``loadgen``.
"""

from repro.serve.baseline import DictLRUServe
from repro.serve.loadgen import LoadGenConfig, LoadGenResult, run_loadgen
from repro.serve.service import ServeConfig, ZServeCache
from repro.serve.shard import CacheShard

__all__ = [
    "CacheShard",
    "ServeConfig",
    "ZServeCache",
    "DictLRUServe",
    "LoadGenConfig",
    "LoadGenResult",
    "run_loadgen",
]
