"""Threaded TCP front end speaking a one-line text protocol.

One request per line, one reply per line, UTF-8, space-delimited
tokens (keys and values must not contain whitespace — the loadgen and
smoke clients use hex tokens):

=====================  =======================================
request                reply
=====================  =======================================
``GET <key>``          ``HIT <value>`` or ``MISS``
``PUT <key> <value>``  ``OK``
``DEL <key>``          ``OK 1`` (was cached) / ``OK 0``
``STATS``              one JSON object
``PING``               ``PONG``
anything else          ``ERR <reason>``
=====================  =======================================

The server is a stock :class:`socketserver.ThreadingTCPServer`: one
thread per connection, all of them hammering the shared
:class:`~repro.serve.service.ZServeCache` — which is the point; the
shard locks are the only synchronization.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Optional

from repro.serve.service import ZServeCache


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines until EOF."""

    server: "ZServeServer"

    def handle(self) -> None:
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            reply = self.server.dispatch(raw.decode("utf-8", "replace"))
            self.wfile.write(reply.encode("utf-8") + b"\n")


class ZServeServer(socketserver.ThreadingTCPServer):
    """The service bound to a socket. ``port=0`` picks a free port."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        cache: ZServeCache,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.cache = cache

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when ``port=0``."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    def dispatch(self, line: str) -> str:
        """Execute one protocol line and return the reply line."""
        parts = line.split()
        if not parts:
            return "ERR empty request"
        op = parts[0].upper()
        if op == "GET" and len(parts) == 2:
            hit, value = self.cache.get(parts[1])
            return f"HIT {value}" if hit else "MISS"
        if op == "PUT" and len(parts) == 3:
            self.cache.put(parts[1], parts[2])
            return "OK"
        if op == "DEL" and len(parts) == 2:
            return f"OK {int(self.cache.invalidate(parts[1]))}"
        if op == "STATS" and len(parts) == 1:
            return json.dumps(self.cache.snapshot(), sort_keys=True)
        if op == "PING" and len(parts) == 1:
            return "PONG"
        return f"ERR bad request: {line.strip()[:80]!r}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests / smoke)."""
        thread = threading.Thread(
            target=self.serve_forever, name="zserve", daemon=True
        )
        thread.start()
        return thread


class ServeClient:
    """Minimal blocking client for the line protocol."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._closed = False

    def request(self, line: str) -> str:
        """Send one protocol line and return the reply line."""
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()
        reply = self._file.readline()
        if not reply:
            raise ConnectionError("server closed the connection")
        return reply.decode("utf-8").rstrip("\n")

    def get(self, key: str) -> Optional[str]:
        """The cached value, or None on a miss."""
        reply = self.request(f"GET {key}")
        if reply == "MISS":
            return None
        if reply.startswith("HIT "):
            return reply[4:]
        raise ValueError(f"unexpected reply: {reply!r}")

    def put(self, key: str, value: str) -> None:
        """Install or overwrite ``key``."""
        reply = self.request(f"PUT {key} {value}")
        if reply != "OK":
            raise ValueError(f"unexpected reply: {reply!r}")

    def delete(self, key: str) -> bool:
        """Invalidate ``key``; True when it was cached."""
        reply = self.request(f"DEL {key}")
        if reply not in ("OK 0", "OK 1"):
            raise ValueError(f"unexpected reply: {reply!r}")
        return reply == "OK 1"

    def stats(self) -> dict[str, Any]:
        """The server's aggregate statistics dict."""
        out = json.loads(self.request("STATS"))
        assert isinstance(out, dict)
        return out

    def ping(self) -> bool:
        """Liveness check."""
        return self.request("PING") == "PONG"

    def close(self) -> None:
        """Close the connection. Safe to call more than once.

        Idempotence matters because both the context manager and
        error-path cleanup may reach here; the socket is closed even
        when flushing the buffered file object raises.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
