"""One shard: a lock, a two-phase zcache, and the payload store.

The concurrency discipline (the package docstring has the full story):
``get`` is a *lock-free* payload-dict read — the hot path of a cache
service never touches the shard lock; ``put`` walks off-lock and
commits under the lock, retrying when the walk went stale;
``invalidate`` is a short locked removal. The zcache itself is
single-threaded code — the shard's job is to guarantee every
*mutating* call happens under its lock, and that the only things it
ever does off-lock are pure reads: the payload-dict lookup, and
:meth:`~repro.core.twophase.TwoPhaseZCache.prepare_fill`, whose result
is re-validated before use.

Lock-free reads cannot update the replacement policy directly (the
policy raises on non-resident touches, and a read can race an
eviction), so hits are recorded in a bounded *recency buffer* — a
plain list appended under the GIL's atomicity — and replayed into the
policy by the next writer that holds the lock. A read concurrent with
an eviction or invalidate of the same key may return the just-removed
value: the standard cache-service read race (the value was live when
the request began), never corruption.

Payloads live in a plain dict keyed by block address, maintained in
lockstep with array residency: the policy wrapper records every
``on_evict`` so the shard can drop the evicted block's payload no
matter which of the two-phase paths (plain eviction, phase-2 win,
stale re-walk with an extra victim) produced it.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Optional, Sequence

from repro.core.twophase import StaleWalkError, TwoPhaseZCache
from repro.core.zcache import ZCacheArray
from repro.obs import ObsContext
from repro.replacement import make_policy
from repro.replacement.base import ReplacementPolicy

#: value returned by :meth:`CacheShard.get` on a miss — a dedicated
#: sentinel so ``None`` remains a storable value
MISS = object()

#: lock-free read hits buffered for policy replay before writers start
#: dropping them (a read-only burst must not grow the buffer unboundedly)
RECENCY_CAP = 1024


def payload_digest(value: object) -> Optional[bytes]:
    """Integrity fingerprint for byte-like payloads (else None).

    An 8-byte blake2b over the stored bytes, recomputed and compared
    on every read when fingerprinting is enabled: a mismatch means the
    payload store was corrupted — exactly the cross-thread damage the
    concurrency discipline exists to prevent, surfaced at the moment
    a client would have consumed it. For payloads past ~2 KiB CPython
    hashes with the GIL released, so where this digest runs relative
    to the shard lock is the benchmark's coarse- vs fine-grained
    locking story in miniature.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return hashlib.blake2b(value, digest_size=8).digest()
    return None


class EvictionLog(ReplacementPolicy):
    """Delegating policy wrapper that records eviction victims.

    The controller reports at most one eviction per ``AccessResult``,
    but the two-phase stale-recovery path can evict *two* blocks for
    one fill. Wrapping the policy is the one place every eviction,
    on every path, is guaranteed to pass through.
    """

    def __init__(self, inner: ReplacementPolicy) -> None:
        self.inner = inner
        self.evicted: list[int] = []

    def on_insert(self, address: int) -> None:
        self.inner.on_insert(address)

    def on_access(self, address: int, is_write: bool = False) -> None:
        self.inner.on_access(address, is_write)

    def on_evict(self, address: int) -> None:
        self.evicted.append(address)
        self.inner.on_evict(address)

    def score(self, address: int) -> object:
        return self.inner.score(address)

    def select_victim(self, candidates: Sequence[int]) -> int:
        return self.inner.select_victim(candidates)

    def drain_score_updates(self) -> list[int]:
        return self.inner.drain_score_updates()

    def global_victim(self) -> Optional[int]:
        return self.inner.global_victim()

    def drain_evicted(self) -> list[int]:
        """Evictions since the last drain (caller holds the shard lock)."""
        out = self.evicted
        self.evicted = []
        return out


class CacheShard:
    """A single-lock partition of the service's key space.

    Parameters
    ----------
    num_ways, lines_per_way, levels, hash_kind, hash_seed:
        Geometry of the backing :class:`~repro.core.zcache.ZCacheArray`.
    policy:
        Replacement policy name (see :func:`repro.replacement.make_policy`).
    two_phase:
        True (default) runs the off-lock walk / commit-under-lock
        discipline; False holds the lock across the whole access —
        the "naive single-lock" baseline the benchmark compares against.
    max_retries:
        Stale-plan retries before falling back to walking under the
        lock. The fallback cannot go stale, so a put always completes.
    obs:
        Optional observability context; the cache's counters register
        under it and the shard adds ``walk_races`` (off-lock walks that
        failed mid-read), ``commit_stale`` (plans rejected by the
        freshness check) and ``fallback_fills`` (retry budget spent).
    wrap_array:
        Optional hook applied to the array before the cache is built —
        the soak harness passes the ZSan sanitizer here.
    wrap_policy:
        Optional hook applied to the eviction-logging policy before the
        cache is built — the ZFault harness injects its log-dropping
        wrapper here. The shard keeps draining the *inner* log, so a
        wrapper that swallows a record produces exactly the
        payload-store desync :meth:`check_consistency` exists to catch.
    fingerprint:
        When True, byte-like payloads are stored with a
        :func:`payload_digest` and every read re-verifies it. In
        two-phase mode the digest work runs off-lock; in the naive
        locked mode it runs under the lock, like everything else.
    """

    def __init__(
        self,
        num_ways: int = 4,
        lines_per_way: int = 256,
        levels: int = 2,
        hash_kind: str = "mix",
        hash_seed: int = 0,
        policy: str = "lru",
        two_phase: bool = True,
        max_retries: int = 8,
        obs: Optional[ObsContext] = None,
        wrap_array: Optional[Callable[[ZCacheArray], Any]] = None,
        wrap_policy: Optional[Callable[[ReplacementPolicy], Any]] = None,
        name: str = "shard",
        fingerprint: bool = False,
    ) -> None:
        array = ZCacheArray(
            num_ways,
            lines_per_way,
            levels=levels,
            hash_kind=hash_kind,
            hash_seed=hash_seed,
        )
        self.policy_log = EvictionLog(make_policy(policy))
        # A wrapped array (the ZSan sanitizer proxy) ducks as a
        # ZCacheArray: it forwards every attribute, and TwoPhaseZCache
        # only isinstance-checks the unwrapped class.
        wrapped: Any = array if wrap_array is None else wrap_array(array)
        policy_for_cache: Any = (
            self.policy_log if wrap_policy is None
            else wrap_policy(self.policy_log)
        )
        self.cache = TwoPhaseZCache(
            wrapped,
            policy_for_cache,
            name=name,
            obs=obs,
        )
        self.lock = threading.Lock()
        self.two_phase = two_phase
        self.max_retries = max_retries
        self.fingerprint = fingerprint
        self._entries: dict[int, tuple[object, object, Optional[bytes]]] = {}
        self._recency: list[int] = []
        registry = self.cache.stats.registry
        self._c_walk_races = registry.counter("walk_races")
        self._c_commit_stale = registry.counter("commit_stale")
        self._c_fallback_fills = registry.counter("fallback_fills")
        # Read-path accounting lives at the shard (the zcache never
        # sees lock-free hits). Increments on the lock-free path are
        # best-effort under concurrency: a lost ``+=`` costs a count,
        # never correctness.
        self._c_read_hits = registry.counter("read_hits")
        self._c_read_misses = registry.counter("read_misses")
        # Hits observed while the recency buffer was already full: the
        # policy never learns about them. A steadily climbing value
        # means writers drain too rarely for the read rate.
        self._c_recency_dropped = registry.counter("recency_dropped")

    # -- the service operations ---------------------------------------------
    def get(self, address: int) -> object:
        """Payload for ``address``, or the :data:`MISS` sentinel.

        A cache-aside read: a miss is counted but never allocates —
        the caller reacts (usually by computing the value and calling
        :meth:`put`). In two-phase mode this takes no lock at all:
        the payload dict mirrors residency and a single ``dict.get``
        is atomic under the GIL. The hit is queued in the recency
        buffer for the next writer to replay into the policy.
        """
        if self.two_phase:
            entry = self._entries.get(address)
            if entry is None:
                self._c_read_misses.value += 1
                return MISS
            self._c_read_hits.value += 1
            if len(self._recency) < RECENCY_CAP:
                self._recency.append(address)  # zrace: atomic
            else:
                self._c_recency_dropped.value += 1
            self._verify(address, entry)
            return entry[1]
        with self.lock:
            if self.cache.probe(address):
                entry = self._entries[address]
                # Naive mode verifies under the lock on purpose: the
                # whole read inside one critical section is the
                # baseline two-phase mode exists to beat.
                self._verify(address, entry)  # zsan: ignore[ZS111]
                self._c_read_hits.value += 1
                return entry[1]
            self._c_read_misses.value += 1
            return MISS

    def _verify(self, address: int, entry: tuple) -> None:
        """Re-check the payload fingerprint recorded at install time."""
        fp = entry[2]
        if fp is not None and payload_digest(entry[1]) != fp:
            raise AssertionError(
                f"payload fingerprint mismatch for block {address:#x}: "
                "the payload store was corrupted after install"
            )

    def put(self, address: int, key: object, value: object) -> None:
        """Install (or overwrite) the payload for ``address``.

        The fingerprint (when enabled) is the expensive part of a
        write: two-phase mode computes it before touching the lock,
        the naive mode computes it inside — the whole operation under
        one lock is precisely what "naive" means.
        """
        if not self.two_phase:
            with self.lock:
                # Digest under the lock: that IS the naive baseline.
                fp = (
                    payload_digest(value)  # zsan: ignore[ZS111]
                    if self.fingerprint
                    else None
                )
                self.cache.access(address, is_write=True)
                self._sync_entries(address, key, value, fp)
            return
        fp = payload_digest(value) if self.fingerprint else None
        for _ in range(self.max_retries):
            # Fast path under the lock: already resident → a plain hit.
            with self.lock:
                self._drain_recency()
                if address in self.cache:
                    self.cache.access(address, is_write=True)
                    self._sync_entries(address, key, value, fp)
                    return
            # Off-lock walk. A concurrent commit can tear the snapshot
            # mid-read; anything the walk (or the sanitizer's walk
            # check) throws is a stale read, not corruption — phase 1
            # mutates nothing. InvariantViolation subclasses
            # RuntimeError, so this intentionally absorbs it *here
            # only*: violations raised under the lock propagate.
            try:
                plan = self.cache.prepare_fill(address)
            except RuntimeError:
                self._c_walk_races.value += 1
                continue
            with self.lock:
                self._drain_recency()
                try:
                    self.cache.commit_prepared(address, plan, is_write=True)
                except StaleWalkError:
                    self._c_commit_stale.value += 1
                    continue
                self._sync_entries(address, key, value, fp)
                return
        # Retry budget spent (heavy contention): walk under the lock.
        with self.lock:
            self._drain_recency()
            self._c_fallback_fills.value += 1
            self.cache.access(address, is_write=True)
            self._sync_entries(address, key, value, fp)

    def invalidate(self, address: int) -> bool:
        """Remove ``address``; True when it was resident."""
        with self.lock:
            self._drain_recency()
            resident = address in self.cache
            self.cache.invalidate(address)
            self._drop_evicted()
            self._entries.pop(address, None)
            return resident

    # -- bookkeeping (caller holds the lock) --------------------------------
    def _drain_recency(self) -> None:
        """Replay buffered lock-free read hits into the policy.

        Swapping the list out is atomic under the GIL; a reader that
        appends around the swap lands in whichever list its load of
        ``self._recency`` resolved to, so no hit is ever lost — at
        worst it is replayed one drain late. Addresses evicted since
        the read are skipped (the policy raises on non-resident
        touches).
        """
        buf = self._recency
        if not buf:
            return
        self._recency = []
        cache = self.cache
        for addr in buf:
            if addr in cache:
                self.policy_log.on_access(addr, False)

    def _sync_entries(
        self,
        address: int,
        key: object,
        value: object,
        fp: Optional[bytes] = None,
    ) -> None:
        self._drop_evicted()
        if address in self.cache:
            self._entries[address] = (key, value, fp)
        else:
            # Pinned-overflow bypass cannot happen (the service never
            # pins), but stay correct if it ever does.
            self._entries.pop(address, None)

    def _drop_evicted(self) -> None:
        for evicted in self.policy_log.drain_evicted():
            self._entries.pop(evicted, None)

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def check_consistency(self) -> None:
        """Assert payload store and array residency agree (tests/soak).

        Callers must quiesce traffic first; takes the lock itself.
        """
        with self.lock:
            resident = set(self.cache.resident())
            stored = set(self._entries)
            if resident != stored:
                missing = resident - stored
                orphaned = stored - resident
                raise AssertionError(
                    f"shard payload store out of sync: {len(missing)} "
                    f"resident without payload, {len(orphaned)} payloads "
                    f"without a block"
                )
