"""The competitor: a plain dict + LRU under one lock.

This is what most Python services actually deploy (an
``OrderedDict``-backed LRU behind a mutex), so it is the honest
baseline for the benchmark: hits are a dict move-to-end, misses are a
dict insert plus a popitem eviction, and *everything* serializes on
the single lock. The interface mirrors :class:`~repro.serve.service.
ZServeCache` so the load generator drives both unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.serve.service import Key


class DictLRUServe:
    """Single-lock OrderedDict LRU with the ZServeCache interface."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: "OrderedDict[Key, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Key) -> tuple[bool, Any]:
        """``(True, value)`` on a hit (refreshing LRU), else ``(False, None)``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return False, None
            self._data.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Key, value: Any) -> None:
        """Install or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            elif len(self._data) >= self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1
            self._data[key] = value

    def invalidate(self, key: Key) -> bool:
        """Drop ``key``; True when it was cached."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hits(self) -> int:
        """Read hits so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Read misses so far."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Hits over reads (0.0 before the first read)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def snapshot(self) -> dict[str, Any]:
        """The service-level aggregates dict (STATS / reports)."""
        return {
            "capacity": self.capacity,
            "entries": len(self),
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self.hit_rate,
            "evictions": self._evictions,
        }
