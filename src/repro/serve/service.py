"""ZServeCache: hash-partitioned shards behind a get/put/invalidate API.

Keys (ints, strings or bytes) hash to a 63-bit block address; the
address picks a shard and doubles as the block identity inside that
shard's zcache. Shard choice and in-shard placement use *independent*
hash bits — the shard index is the address modulo the shard count,
while the zcache ways re-mix the full address — so partitioning does
not correlate with way placement.

The service exposes the paper-facing knobs (ways, walk levels, policy)
plus the two service-side ones that matter for concurrency: the shard
count and the access mode (``"twophase"`` off-lock walks vs
``"locked"`` naive locking). Everything else — metrics, tracing — is
inherited from the ZScope context handed in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.core.base import CacheArray
from repro.core.zcache import ZCacheArray
from repro.hashing.mixers import splitmix64
from repro.obs import ObsContext
from repro.serve.shard import MISS, CacheShard

#: key types the service accepts
Key = Union[int, str, bytes]

_MASK63 = (1 << 63) - 1

#: access-mode names accepted by :class:`ServeConfig`
MODES = ("twophase", "locked")


def key_address(key: Key) -> int:
    """Deterministic 63-bit block address for a key.

    Ints go through one splitmix64 round (full avalanche — sequential
    keys spread across shards and ways); strings and bytes through an
    8-byte blake2b digest. Both are stable across processes, which the
    checkpointable clients depend on.
    """
    if isinstance(key, bool):
        raise TypeError("bool is not a valid cache key")
    if isinstance(key, int):
        return splitmix64(key & ((1 << 64) - 1)) & _MASK63
    if isinstance(key, str):
        raw: bytes = key.encode("utf-8")
    elif isinstance(key, bytes):
        raw = key
    else:
        raise TypeError(f"unsupported key type {type(key).__name__}")
    digest = hashlib.blake2b(raw, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _MASK63


@dataclass(slots=True)
class ServeConfig:
    """Geometry and concurrency knobs for one :class:`ZServeCache`."""

    num_shards: int = 4
    num_ways: int = 4
    lines_per_way: int = 256
    levels: int = 2
    hash_kind: str = "mix"
    hash_seed: int = 0
    policy: str = "lru"
    #: "twophase" = off-lock walk + commit under lock; "locked" = the
    #: whole access under the shard lock (the naive baseline)
    mode: str = "twophase"
    max_retries: int = 8
    #: store + verify an integrity digest for byte-like payloads
    #: (computed off-lock in two-phase mode, under the lock in locked
    #: mode — see :func:`repro.serve.shard.payload_digest`)
    fingerprint: bool = False

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )

    @property
    def capacity(self) -> int:
        """Total blocks across all shards."""
        return self.num_shards * self.num_ways * self.lines_per_way


class ZServeCache:
    """The concurrent key→value cache: N independent shards.

    Thread-safe for any mix of :meth:`get` / :meth:`put` /
    :meth:`invalidate` callers. In ``"twophase"`` mode reads never
    contend with anything (lock-free payload lookups); two keys on
    different shards never contend; two keys on the same shard contend
    only for the commit, not the walk.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        obs: Optional[ObsContext] = None,
        wrap_array: Optional[Callable[[ZCacheArray], CacheArray]] = None,
    ) -> None:
        cfg = config if config is not None else ServeConfig()
        self.config = cfg
        self.obs = obs
        self.shards: list[CacheShard] = []
        for i in range(cfg.num_shards):
            shard_obs = obs.scoped(f"shard{i}") if obs is not None else None
            self.shards.append(
                CacheShard(
                    num_ways=cfg.num_ways,
                    lines_per_way=cfg.lines_per_way,
                    levels=cfg.levels,
                    hash_kind=cfg.hash_kind,
                    # Distinct hash families per shard: identical
                    # families would re-create the same collision sets
                    # in every shard.
                    hash_seed=cfg.hash_seed * 1000003 + i,
                    policy=cfg.policy,
                    two_phase=(cfg.mode == "twophase"),
                    max_retries=cfg.max_retries,
                    obs=shard_obs,
                    wrap_array=wrap_array,
                    name=f"shard{i}",
                    fingerprint=cfg.fingerprint,
                )
            )

    # -- routing -------------------------------------------------------------
    def _route(self, key: Key) -> tuple[CacheShard, int]:
        address = key_address(key)
        return self.shards[address % self.config.num_shards], address

    # -- the API -------------------------------------------------------------
    def get(self, key: Key) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        shard, address = self._route(key)
        value = shard.get(address)
        if value is MISS:
            return False, None
        return True, value

    def put(self, key: Key, value: Any) -> None:
        """Install or overwrite ``key``'s value."""
        shard, address = self._route(key)
        shard.put(address, key, value)

    def invalidate(self, key: Key) -> bool:
        """Drop ``key``; True when it was cached."""
        shard, address = self._route(key)
        return shard.invalidate(address)

    # -- aggregate statistics ------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def _sum(self, counter: str) -> int:
        total = 0
        for shard in self.shards:
            total += shard.cache.stats.counters()[counter].value
        return total

    @property
    def hits(self) -> int:
        """Read hits across shards (the client-visible hit count)."""
        return sum(shard._c_read_hits.value for shard in self.shards)

    @property
    def misses(self) -> int:
        """Read misses across shards."""
        return sum(shard._c_read_misses.value for shard in self.shards)

    @property
    def hit_rate(self) -> float:
        """Read hit rate — hits over reads, as a client would measure it.

        Counted at the shard (the zcache never sees lock-free hits),
        best-effort under concurrent readers: a lost increment skews
        the rate by one count, never the cache contents.
        """
        reads = self.hits + self.misses
        return self.hits / reads if reads else 0.0

    @property
    def stale_retries(self) -> int:
        """Commits rejected by the freshness check, across shards."""
        return sum(shard.cache.stale_retries for shard in self.shards)

    @property
    def walk_races(self) -> int:
        """Off-lock walks that failed mid-read, across shards."""
        return sum(shard._c_walk_races.value for shard in self.shards)

    @property
    def fallback_fills(self) -> int:
        """Puts that spent their retry budget, across shards."""
        return sum(shard._c_fallback_fills.value for shard in self.shards)

    @property
    def recency_dropped(self) -> int:
        """Read hits the full recency buffer discarded, across shards."""
        return sum(shard._c_recency_dropped.value for shard in self.shards)

    def snapshot(self) -> dict[str, Any]:
        """One dict of the service-level aggregates (for STATS / tests)."""
        return {
            "shards": self.config.num_shards,
            "mode": self.config.mode,
            "capacity": self.config.capacity,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self._sum("evictions"),
            "relocations": self._sum("relocations"),
            "stale_retries": self.stale_retries,
            "walk_races": self.walk_races,
            "fallback_fills": self.fallback_fills,
            "recency_dropped": self.recency_dropped,
        }

    def check_consistency(self) -> None:
        """Quiesced full-service payload/residency agreement check."""
        for shard in self.shards:
            shard.check_consistency()
