"""Load generator: replay the workload proxies as concurrent requests.

Each worker thread replays one core's access stream from a
:class:`~repro.workloads.spec.WorkloadSpec` — the same 72 proxies the
simulator experiments use, so service traffic has the simulator's
locality structure — against any backend with the
get/put/invalidate/snapshot interface. Reads run cache-aside: a miss
is followed by a ``put`` *inside the same timed request*, so miss
latency honestly includes the fill (walk + relocations) the way a real
service pays it.

Per-request latency is sampled with ``perf_counter_ns`` (this package
is exempt from ZS005: it measures real traffic, not simulated time)
and reported as p50/p95/p99 alongside throughput. When the backend was
built with an ZScope context, each worker also opens a ZTrace span so
timelines show the replay phases.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from itertools import islice
from time import perf_counter, perf_counter_ns
from typing import Any, Optional, Protocol

from repro.obs import NULL_SPANS, ObsContext, SpanTracker
from repro.workloads.suites import get_workload


class ServeBackend(Protocol):
    """What the load generator drives (ZServeCache / DictLRUServe)."""

    def get(self, key: int) -> tuple[bool, Any]:
        """``(hit, value)`` for a read."""
        ...

    def put(self, key: int, value: Any) -> None:
        """Install or overwrite ``key``."""
        ...

    def invalidate(self, key: int) -> bool:
        """Drop ``key``; True when it was cached."""
        ...

    def snapshot(self) -> dict[str, Any]:
        """Service-level aggregate statistics."""
        ...


@dataclass(slots=True)
class LoadGenConfig:
    """One replay: which proxy, how many workers, how many requests."""

    workload: str = "gcc"
    num_workers: int = 4
    requests_per_worker: int = 25_000
    #: footprint scale handed to ``core_stream`` (the proxy's working
    #: set is sized relative to this, exactly as in the simulator)
    footprint_blocks: int = 4096
    seed: int = 0
    #: fraction of read misses followed by a cache-aside fill
    fill_on_miss: bool = True
    #: bytes-payload size per value; 0 stores small ints instead.
    #: Sizes past ~2 KiB make the backend's fingerprint work (when
    #: enabled) run with the GIL released — the regime where the
    #: locking discipline, not the interpreter, limits throughput.
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.requests_per_worker < 1:
            raise ValueError(
                "requests_per_worker must be >= 1, got "
                f"{self.requests_per_worker}"
            )
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )


@dataclass(slots=True)
class LoadGenResult:
    """What one replay measured."""

    workload: str
    workers: int
    requests: int
    elapsed_s: float
    throughput_rps: float
    hits: int
    misses: int
    hit_rate: float
    p50_us: float
    p95_us: float
    p99_us: float
    backend: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (rounded floats, backend snapshot inline)."""
        return {
            "workload": self.workload,
            "workers": self.workers,
            "requests": self.requests,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "p50_us": round(self.p50_us, 2),
            "p95_us": round(self.p95_us, 2),
            "p99_us": round(self.p99_us, 2),
            "backend": self.backend,
        }


def _percentile_us(ordered_ns: list[int], q: float) -> float:
    """The q-quantile of sorted nanosecond samples, in microseconds."""
    if not ordered_ns:
        return 0.0
    idx = min(len(ordered_ns) - 1, int(q * len(ordered_ns)))
    return ordered_ns[idx] / 1000.0


def _worker(
    index: int,
    backend: ServeBackend,
    cfg: LoadGenConfig,
    barrier: threading.Barrier,
    results: "list[Optional[tuple[list[int], int, int]]]",
    errors: "list[BaseException]",
    spans: SpanTracker,
) -> None:
    try:
        _worker_body(index, backend, cfg, barrier, results, spans)
    except BaseException as exc:
        # Swallowed here (a thread's own traceback helps nobody) and
        # re-raised by run_loadgen on the caller's stack instead.
        errors.append(exc)
        barrier.abort()  # never leave the main thread waiting


def _worker_body(
    index: int,
    backend: ServeBackend,
    cfg: LoadGenConfig,
    barrier: threading.Barrier,
    results: "list[Optional[tuple[list[int], int, int]]]",
    spans: SpanTracker,
) -> None:
    spec = get_workload(cfg.workload)
    stream = spec.core_stream(
        core_id=index,
        l2_blocks=cfg.footprint_blocks,
        seed=cfg.seed,
        num_cores=cfg.num_workers,
    )
    latencies: list[int] = []
    hits = 0
    misses = 0

    def value_for(key: int) -> object:
        if cfg.payload_bytes == 0:
            return key & 0xFFFF
        if cfg.payload_bytes < 8:
            return payload
        # A per-key prefix over a shared buffer: distinct payloads
        # without regenerating payload_bytes of content per request.
        return key.to_bytes(8, "big") + payload[8:]

    payload = bytes(cfg.payload_bytes) if cfg.payload_bytes else b""
    barrier.wait()
    with spans.span(f"loadgen.worker{index}", worker=index):
        for access in islice(stream, cfg.requests_per_worker):
            key = access.address
            start = perf_counter_ns()
            if access.is_write:
                backend.put(key, value_for(key))
            else:
                hit, _ = backend.get(key)
                if hit:
                    hits += 1
                else:
                    misses += 1
                    if cfg.fill_on_miss:
                        backend.put(key, value_for(key))
            latencies.append(perf_counter_ns() - start)
    results[index] = (latencies, hits, misses)


def run_loadgen(
    backend: ServeBackend,
    cfg: Optional[LoadGenConfig] = None,
    obs: Optional[ObsContext] = None,
) -> LoadGenResult:
    """Replay one workload proxy against ``backend`` and measure it.

    Spawns ``cfg.num_workers`` threads, releases them together through
    a barrier (so the elapsed window contains only request traffic),
    and aggregates client-side hit/miss counts with the full latency
    sample. ``hit_rate`` here is the *read* hit rate as the client saw
    it — comparable across backends regardless of how each counts
    internal accesses.
    """
    cfg = cfg if cfg is not None else LoadGenConfig()
    spans = obs.spans if obs is not None else NULL_SPANS
    results: "list[Optional[tuple[list[int], int, int]]]" = [
        None
    ] * cfg.num_workers
    errors: "list[BaseException]" = []
    barrier = threading.Barrier(cfg.num_workers + 1)
    threads = [
        threading.Thread(
            target=_worker,
            args=(i, backend, cfg, barrier, results, errors, spans),
            name=f"loadgen-{i}",
            daemon=True,
        )
        for i in range(cfg.num_workers)
    ]
    with spans.span("loadgen.replay", workload=cfg.workload):
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass  # a worker died during setup; the errors check reports it
        start = perf_counter()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - start

    if errors:
        # A worker died (e.g. an InvariantViolation under the sanitized
        # soak): surface the first failure instead of partial numbers.
        raise errors[0]
    all_latencies: list[int] = []
    hits = 0
    misses = 0
    for entry in results:
        assert entry is not None, "worker died before reporting"
        worker_lat, worker_hits, worker_misses = entry
        all_latencies.extend(worker_lat)
        hits += worker_hits
        misses += worker_misses
    all_latencies.sort()
    requests = cfg.num_workers * cfg.requests_per_worker
    reads = hits + misses
    return LoadGenResult(
        workload=cfg.workload,
        workers=cfg.num_workers,
        requests=requests,
        elapsed_s=elapsed,
        throughput_rps=requests / elapsed if elapsed > 0 else 0.0,
        hits=hits,
        misses=misses,
        hit_rate=hits / reads if reads else 0.0,
        p50_us=_percentile_us(all_latencies, 0.50),
        p95_us=_percentile_us(all_latencies, 0.95),
        p99_us=_percentile_us(all_latencies, 0.99),
        backend=backend.snapshot(),
    )
