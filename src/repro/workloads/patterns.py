"""Access-pattern primitives.

Each primitive is an infinite iterator of block addresses within
``[0, footprint)``. Workload specs compose them (with weights) and add
address-space offsets, instruction gaps, and read/write labels.

All randomness is seeded — the same spec always produces the same trace.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Sequence


def sequential_scan(footprint: int, start: int = 0) -> Iterator[int]:
    """Wrap-around sequential scan: 0, 1, 2, ..., footprint-1, 0, ...

    Models streaming workloads (lbm, libquantum, streamcluster).
    """
    if footprint < 1:
        raise ValueError(f"footprint must be >= 1, got {footprint}")
    addr = start % footprint
    while True:
        yield addr
        addr += 1
        if addr >= footprint:
            addr = 0


def strided(footprint: int, stride: int, start: int = 0) -> Iterator[int]:
    """Strided scan: start, start+stride, ... (mod footprint).

    Power-of-two strides are the classic set-conflict pathology
    (Section II-A); stencil codes (mgrid, cactusADM) look like several
    of these superimposed.
    """
    if footprint < 1:
        raise ValueError(f"footprint must be >= 1, got {footprint}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    addr = start % footprint
    while True:
        yield addr
        addr = (addr + stride) % footprint


def uniform_random(footprint: int, seed: int = 0) -> Iterator[int]:
    """Uniform random addresses — the no-locality stress case."""
    if footprint < 1:
        raise ValueError(f"footprint must be >= 1, got {footprint}")
    rng = random.Random(seed)
    while True:
        yield rng.randrange(footprint)


def zipf(footprint: int, skew: float = 1.1, seed: int = 0) -> Iterator[int]:
    """Zipf-like popularity over a shuffled footprint.

    ``skew`` > 1 concentrates traffic on few hot blocks (pointer-heavy
    integer codes); ``skew`` < 1 flattens towards uniform. Uses the
    bounded-Pareto inverse-CDF so no per-sample loops are needed.
    """
    if footprint < 1:
        raise ValueError(f"footprint must be >= 1, got {footprint}")
    if skew <= 0 or math.isclose(skew, 1.0):
        # skew ~ 1 makes the inverse-CDF exponent vanish (span -> 0);
        # anything isclose to 1 is numerically degenerate, not just 1.0.
        raise ValueError(f"skew must be positive and != 1, got {skew}")
    rng = random.Random(seed)
    # A fixed random permutation decouples popularity rank from address
    # value, so hot blocks do not cluster in one cache region.
    perm = list(range(footprint))
    rng.shuffle(perm)
    exponent = 1.0 - skew
    span = footprint**exponent - 1.0
    while True:
        u = rng.random()
        rank = int((span * u + 1.0) ** (1.0 / exponent))
        yield perm[rank % footprint]


def working_set_phases(
    footprint: int,
    ws_fraction: float = 0.25,
    phase_length: int = 10_000,
    locality: float = 0.9,
    seed: int = 0,
) -> Iterator[int]:
    """Phased working sets: dense reuse inside a window that jumps.

    Models loop-nest programs (most of SPECfp): during a phase, accesses
    hit a contiguous window of ``ws_fraction * footprint`` blocks with
    probability ``locality`` (uniform within the window) and stray
    anywhere otherwise; each phase the window moves.
    """
    if not 0.0 < ws_fraction <= 1.0:
        raise ValueError(f"ws_fraction must be in (0,1], got {ws_fraction}")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0,1], got {locality}")
    if phase_length < 1:
        raise ValueError(f"phase_length must be >= 1, got {phase_length}")
    rng = random.Random(seed)
    ws_size = max(1, int(footprint * ws_fraction))
    while True:
        base = rng.randrange(footprint)
        for _ in range(phase_length):
            if rng.random() < locality:
                yield (base + rng.randrange(ws_size)) % footprint
            else:
                yield rng.randrange(footprint)


def pointer_chase(footprint: int, seed: int = 0, jump_every: int = 0) -> Iterator[int]:
    """Traversal of a random permutation cycle.

    Models linked-data-structure codes (mcf, omnetpp, canneal): each
    access is data-dependent on the previous one, with no spatial
    pattern. ``jump_every`` > 0 restarts the chase at a random node
    periodically (several independent traversals in flight).
    """
    if footprint < 1:
        raise ValueError(f"footprint must be >= 1, got {footprint}")
    rng = random.Random(seed)
    nxt = list(range(1, footprint)) + [0]
    rng.shuffle(nxt)
    node = rng.randrange(footprint)
    count = 0
    while True:
        yield node
        node = nxt[node]
        count += 1
        if jump_every and count % jump_every == 0:
            node = rng.randrange(footprint)


def mixed(
    parts: Sequence[tuple[float, Iterator[int]]], seed: int = 0
) -> Iterator[int]:
    """Probabilistic mix of pattern iterators.

    ``parts`` is a sequence of ``(weight, iterator)``; each access is
    drawn from one iterator with probability proportional to its weight.
    """
    if not parts:
        raise ValueError("mixed() needs at least one part")
    weights = [w for w, _ in parts]
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    iters = [it for _, it in parts]
    rng = random.Random(seed)
    total = sum(weights)
    cum = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)
    while True:
        u = rng.random()
        for i, c in enumerate(cum):
            if u <= c:
                yield next(iters[i])
                break


def interleave(streams: Sequence[Iterator], round_robin: bool = True):
    """Round-robin interleave of per-core streams into one sequence of
    ``(core_id, item)`` pairs. Used by single-cache experiments; the CMP
    simulator keeps streams separate."""
    if not streams:
        raise ValueError("interleave() needs at least one stream")
    live = list(enumerate(streams))
    while live:
        dead = []
        for slot, (core, it) in enumerate(live):
            try:
                yield core, next(it)
            except StopIteration:
                dead.append(slot)
        for slot in reversed(dead):
            live.pop(slot)
