"""Synthetic workload generation.

The paper drives its evaluation with 6 PARSEC + 10 SPECOMP multithreaded
applications and 26 SPECCPU2006 programs (run 32-copy multiprogrammed),
plus 30 random CPU2006 mixes — 72 workloads total. Running those suites
needs a Pin-instrumented x86 testbed; this package substitutes synthetic
address-stream proxies whose *statistics* (footprint relative to the
cache, stride/random/pointer-chase composition, memory intensity, write
fraction, sharing) emulate each application's qualitative behaviour.
DESIGN.md records the substitution rationale.

- :mod:`repro.workloads.patterns` — reusable access-pattern primitives.
- :mod:`repro.workloads.spec` — :class:`WorkloadSpec` and per-core
  stream synthesis.
- :mod:`repro.workloads.suites` — the 72-workload roster.
"""

from repro.workloads.analysis import (
    ReuseProfile,
    reuse_profile,
    stack_distances,
    working_set_curve,
)
from repro.workloads.patterns import (
    interleave,
    mixed,
    pointer_chase,
    sequential_scan,
    strided,
    uniform_random,
    working_set_phases,
    zipf,
)
from repro.workloads.spec import CoreAccess, WorkloadSpec
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.suites import (
    MIX_NAMES,
    PARSEC,
    SPEC2006,
    SPECOMP,
    WORKLOADS,
    get_workload,
    roster,
)

__all__ = [
    "sequential_scan",
    "strided",
    "uniform_random",
    "zipf",
    "working_set_phases",
    "pointer_chase",
    "mixed",
    "interleave",
    "CoreAccess",
    "WorkloadSpec",
    "WORKLOADS",
    "PARSEC",
    "SPECOMP",
    "SPEC2006",
    "MIX_NAMES",
    "get_workload",
    "roster",
    "ReuseProfile",
    "reuse_profile",
    "stack_distances",
    "working_set_curve",
    "save_trace",
    "load_trace",
]
