"""Trace file I/O.

A minimal, durable interchange format so captured streams can be saved,
inspected, shared, and replayed: one access per line,

    <gap> <address-hex> <r|w>

with ``#``-prefixed comment/header lines. ``.gz`` paths are compressed
transparently. Round-trips :class:`~repro.workloads.spec.CoreAccess`
records exactly.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator

from repro.workloads.spec import CoreAccess

FORMAT_VERSION = 1


def _open(path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(path, accesses: Iterable[CoreAccess], comment: str = "") -> int:
    """Write accesses to ``path``; returns the number written."""
    count = 0
    with _open(path, "w") as f:
        f.write(f"# repro-trace v{FORMAT_VERSION}\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"# {line}\n")
        for acc in accesses:
            if acc.gap < 0 or acc.address < 0:
                raise ValueError(f"invalid access record: {acc}")
            f.write(f"{acc.gap} {acc.address:x} {'w' if acc.is_write else 'r'}\n")
            count += 1
    return count


def load_trace(path) -> Iterator[CoreAccess]:
    """Stream accesses back from ``path``.

    Raises
    ------
    ValueError
        On malformed lines (with the line number).
    """
    with _open(path, "r") as f:
        yield from parse_trace(f)


def parse_trace(lines: Iterable[str]) -> Iterator[CoreAccess]:
    """Parse the trace format from an iterable of lines."""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[2] not in ("r", "w"):
            raise ValueError(f"malformed trace line {lineno}: {line!r}")
        try:
            gap = int(parts[0])
            address = int(parts[1], 16)
        except ValueError:
            raise ValueError(
                f"malformed trace line {lineno}: {line!r}"
            ) from None
        if gap < 0 or address < 0:
            raise ValueError(f"negative field on trace line {lineno}")
        yield CoreAccess(gap, address, parts[2] == "w")


def dumps_trace(accesses: Iterable[CoreAccess]) -> str:
    """Serialise to a string (handy for tests and small traces)."""
    buf = io.StringIO()
    buf.write(f"# repro-trace v{FORMAT_VERSION}\n")
    for acc in accesses:
        buf.write(f"{acc.gap} {acc.address:x} {'w' if acc.is_write else 'r'}\n")
    return buf.getvalue()
