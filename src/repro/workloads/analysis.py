"""Trace analysis: reuse distances, working sets, miss-rate curves.

These are the classic single-pass characterisations used to reason
about where a workload sits relative to a cache's capacity — the
knowledge the synthetic proxies in :mod:`repro.workloads.suites` are
tuned with, exposed as a library so users can characterise their own
traces.

The LRU *stack distance* of an access is the number of distinct blocks
touched since the previous access to the same block. For a
fully-associative LRU cache of capacity C, an access hits iff its stack
distance is < C — so one histogram yields the entire miss-rate-vs-size
curve (Mattson et al. 1970).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.fenwick import FenwickTree

#: stack distance reported for first-ever references
COLD = -1


def stack_distances(addresses: Iterable[int]) -> list[int]:
    """LRU stack distance per access (``COLD`` for first references).

    O(n log n) via a Fenwick tree over access times.
    """
    trace = list(addresses)
    n = len(trace)
    if n == 0:
        return []
    tree = FenwickTree(n)
    last_seen: dict[int, int] = {}
    out: list[int] = []
    for t, addr in enumerate(trace):
        prev = last_seen.get(addr)
        if prev is None:
            out.append(COLD)
        else:
            # Distinct blocks touched since prev = marked slots in
            # (prev, t): each block's most-recent access is marked.
            out.append(tree.range_sum(prev + 1, t - 1) if t - prev > 1 else 0)
            tree.add(prev, -1)
        tree.add(t, 1)
        last_seen[addr] = t
    return out


@dataclass
class ReuseProfile:
    """Summary of a trace's reuse behaviour."""

    accesses: int
    footprint: int
    histogram: Counter  # stack distance -> count (COLD bucketed too)

    @property
    def cold_misses(self) -> int:
        return self.histogram.get(COLD, 0)

    def miss_rate_at(self, capacity: int) -> float:
        """Fully-associative LRU miss rate at ``capacity`` blocks.

        An access misses iff it is cold or its stack distance >=
        capacity (the Mattson inclusion property).
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if self.accesses == 0:
            return 0.0
        misses = self.cold_misses + sum(
            count
            for dist, count in self.histogram.items()
            if dist != COLD and dist >= capacity
        )
        return misses / self.accesses

    def miss_rate_curve(self, capacities: Sequence[int]) -> list[float]:
        """Miss rate at each capacity (one histogram, many cache sizes)."""
        return [self.miss_rate_at(c) for c in capacities]

    def median_reuse_distance(self) -> float:
        """Median stack distance over re-references (cold excluded)."""
        dists: list[int] = []
        for dist, count in sorted(self.histogram.items()):
            if dist == COLD:
                continue
            dists.extend([dist] * count)
        if not dists:
            return float("inf")
        return float(dists[len(dists) // 2])


def reuse_profile(addresses: Iterable[int]) -> ReuseProfile:
    """Compute a trace's :class:`ReuseProfile` in one pass."""
    trace = list(addresses)
    hist = Counter(stack_distances(trace))
    return ReuseProfile(
        accesses=len(trace), footprint=len(set(trace)), histogram=hist
    )


def working_set_curve(
    addresses: Iterable[int], window: int
) -> list[int]:
    """Distinct blocks per consecutive window of ``window`` accesses."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    trace = list(addresses)
    return [
        len(set(trace[i : i + window])) for i in range(0, len(trace), window)
    ]
