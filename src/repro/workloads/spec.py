"""Workload specifications and per-core stream synthesis.

A :class:`WorkloadSpec` declares a workload's statistical shape:

- ``mem_ratio`` — memory accesses per instruction (gaps between accesses
  are geometric with mean ``1/mem_ratio - 1``);
- ``write_frac`` — fraction of accesses that are stores;
- ``patterns`` — a weighted mix of :mod:`repro.workloads.patterns`
  primitives, with footprints expressed *relative to the L2 size* so
  experiments scale: ``{"kind": "pointer_chase", "footprint_mult": 8.0}``
  means "a pointer chase over 8x the L2's capacity";
- ``sharing_frac`` — for multithreaded workloads, the fraction of
  accesses that fall in a region shared by all cores.

:meth:`WorkloadSpec.core_stream` turns a spec into an infinite per-core
iterator of :class:`CoreAccess` records for the CMP simulator.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from repro.workloads import patterns as pat

#: Private address spaces are separated by this stride (in blocks);
#: large enough that scaled footprints never overlap across cores.
CORE_ADDRESS_STRIDE = 1 << 28

#: Shared regions (multithreaded workloads) live above this base.
SHARED_ADDRESS_BASE = 1 << 40


class CoreAccess(NamedTuple):
    """One memory access in a core's instruction stream.

    ``gap`` is the number of non-memory instructions executed since the
    previous access (they retire at IPC=1 per the paper's core model).
    """

    gap: int
    address: int
    is_write: bool


def _build_pattern(desc: dict, footprint: int, seed: int) -> Iterator[int]:
    """Instantiate one pattern primitive from its descriptor."""
    kind = desc["kind"]
    if kind == "sequential":
        return pat.sequential_scan(footprint, start=seed % footprint)
    if kind == "strided":
        return pat.strided(footprint, stride=desc.get("stride", 64), start=seed % footprint)
    if kind == "uniform":
        return pat.uniform_random(footprint, seed=seed)
    if kind == "zipf":
        return pat.zipf(footprint, skew=desc.get("skew", 1.2), seed=seed)
    if kind == "working_set":
        return pat.working_set_phases(
            footprint,
            ws_fraction=desc.get("ws_fraction", 0.25),
            phase_length=desc.get("phase_length", 10_000),
            locality=desc.get("locality", 0.9),
            seed=seed,
        )
    if kind == "pointer_chase":
        return pat.pointer_chase(
            footprint, seed=seed, jump_every=desc.get("jump_every", 0)
        )
    raise ValueError(f"unknown pattern kind: {kind!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one workload proxy."""

    name: str
    suite: str  # "parsec" | "specomp" | "spec2006" | "mix"
    multithreaded: bool
    mem_ratio: float  # memory accesses per instruction, in (0, 1]
    write_frac: float
    patterns: tuple = field(default_factory=tuple)  # ((weight, desc), ...)
    sharing_frac: float = 0.0
    #: short human description of what the proxy models
    note: str = ""

    def __post_init__(self):
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError(f"{self.name}: mem_ratio must be in (0,1]")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError(f"{self.name}: write_frac must be in [0,1]")
        if not 0.0 <= self.sharing_frac <= 1.0:
            raise ValueError(f"{self.name}: sharing_frac must be in [0,1]")
        if not self.patterns:
            raise ValueError(f"{self.name}: needs at least one pattern")
        if self.sharing_frac > 0 and not self.multithreaded:
            raise ValueError(f"{self.name}: sharing requires multithreaded")

    # -- synthesis -----------------------------------------------------------
    def _pattern_footprint(
        self, desc: dict, l2_blocks: int, num_cores: int, shared: bool
    ) -> int:
        """Blocks covered by one pattern instance.

        ``footprint_mult`` is relative to the whole L2 and describes the
        *aggregate* footprint: private per-core regions get a 1/num_cores
        share (the paper's multiprogrammed runs divide the 8 MB L2 among
        32 copies); a multithreaded workload's shared region is one
        region, so it keeps the full size.
        """
        if "footprint_abs" in desc:
            return max(1, int(desc["footprint_abs"]))
        mult = desc.get("footprint_mult", 1.0)
        blocks = l2_blocks * mult
        if not shared:
            blocks /= num_cores
        return max(16, int(blocks))

    def core_stream(
        self,
        core_id: int,
        l2_blocks: int,
        seed: int = 0,
        num_cores: int = 32,
    ) -> Iterator[CoreAccess]:
        """Infinite access stream for one core.

        Multithreaded workloads share the region above
        ``SHARED_ADDRESS_BASE`` (``sharing_frac`` of accesses land
        there); everything else is private to the core.
        """
        # zlib.crc32 rather than hash(): str hashing is salted per
        # process, and traces must be bit-identical across runs.
        name_digest = zlib.crc32(self.name.encode("utf-8"))
        rng = random.Random(name_digest * 31 + seed * 7 + core_id)
        private_base = core_id * CORE_ADDRESS_STRIDE
        mix_parts = []
        shared_parts = []
        for weight, desc in self.patterns:
            fp = self._pattern_footprint(desc, l2_blocks, num_cores, shared=False)
            mix_parts.append(
                (weight, _build_pattern(desc, fp, seed=rng.randrange(1 << 30)))
            )
            if self.multithreaded and self.sharing_frac > 0:
                shared_fp = self._pattern_footprint(
                    desc, l2_blocks, num_cores, shared=True
                )
                shared_parts.append(
                    (weight, _build_pattern(desc, shared_fp, seed=rng.randrange(1 << 30)))
                )
        private = pat.mixed(mix_parts, seed=rng.randrange(1 << 30))
        shared = (
            pat.mixed(shared_parts, seed=rng.randrange(1 << 30))
            if shared_parts
            else None
        )
        # Geometric gaps: each instruction is a memory access with
        # probability mem_ratio, so E[gap] = 1/mem_ratio - 1 exactly.
        log_q = math.log(1.0 - self.mem_ratio) if self.mem_ratio < 1.0 else None
        while True:
            if log_q is None:
                gap = 0
            else:
                gap = int(math.log(1.0 - rng.random()) / log_q)
            is_write = rng.random() < self.write_frac
            if shared is not None and rng.random() < self.sharing_frac:
                address = SHARED_ADDRESS_BASE + next(shared)
            else:
                address = private_base + next(private)
            yield CoreAccess(gap, address, is_write)

    def describe(self) -> str:
        """One-line report string."""
        kinds = ",".join(d["kind"] for _, d in self.patterns)
        return (
            f"{self.name:16s} [{self.suite:8s}] mem={self.mem_ratio:.2f} "
            f"wr={self.write_frac:.2f} share={self.sharing_frac:.2f} ({kinds})"
        )
