"""The 72-workload roster (paper Section V).

6 PARSEC + 10 SPECOMP multithreaded applications, 26 SPECCPU2006
programs run 32-copy multiprogrammed, and 30 random CPU2006 mixes.
Each entry is a synthetic proxy: the pattern mix, footprint (relative to
the L2), memory intensity, and sharing are chosen to emulate the
application's qualitative cache behaviour as characterised in the paper
and the benchmark-characterisation literature. Proxies are not the
benchmarks — see DESIGN.md for the substitution argument.

Pattern-footprint conventions (multiples of L2 capacity):
``0.01-0.05`` ~ L1-resident hot set, ``0.2-0.8`` ~ L2-resident,
``2-16`` ~ far exceeds the L2 (miss traffic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.spec import CoreAccess, WorkloadSpec


def _hot(weight: float, mult: float = 0.02) -> tuple:
    """An L1-resident hot component: gives the stream its L1 hit rate."""
    return (weight, {"kind": "working_set", "footprint_mult": mult,
                     "ws_fraction": 0.5, "locality": 0.95, "phase_length": 5_000})


#: Calibration: the raw tables below emphasise each proxy's *cold*
#: behaviour; real programs spend most accesses in L1-resident state.
#: Cold weights are scaled down by this factor (hot absorbs the rest) so
#: L1 miss rates land in the realistic few-percent-to-~20% range.
COLD_WEIGHT_SCALE = 0.35


def _spec(name, suite, mt, mem, wr, parts, share=0.0, note=""):
    hot_weight, hot_desc = parts[0]
    cold = [(w * COLD_WEIGHT_SCALE, d) for w, d in parts[1:]]
    hot_weight = 1.0 - sum(w for w, _ in cold)
    patterns = tuple([(hot_weight, dict(hot_desc)), *cold])
    return WorkloadSpec(
        name=name, suite=suite, multithreaded=mt, mem_ratio=mem,
        write_frac=wr, patterns=patterns, sharing_frac=share, note=note,
    )


# --------------------------------------------------------------------------
# PARSEC (multithreaded, shared address space)
# --------------------------------------------------------------------------
PARSEC = [
    _spec("blackscholes", "parsec", True, 0.20, 0.15,
          [_hot(0.97, 0.01), (0.03, {"kind": "zipf", "footprint_mult": 0.3, "skew": 1.3})],
          share=0.05, note="tiny working set; insensitive to L2 organisation"),
    _spec("canneal", "parsec", True, 0.35, 0.25,
          [_hot(0.45, 0.02),
           (0.55, {"kind": "pointer_chase", "footprint_mult": 6.0, "jump_every": 64})],
          share=0.30, note="random netlist pointer chasing, miss-intensive"),
    _spec("fluidanimate", "parsec", True, 0.30, 0.30,
          [_hot(0.70, 0.03),
           (0.20, {"kind": "working_set", "footprint_mult": 1.5, "ws_fraction": 0.15,
                   "locality": 0.85}),
           (0.10, {"kind": "strided", "footprint_mult": 2.0, "stride": 16})],
          share=0.15, note="grid neighbours; moderate L2 pressure"),
    _spec("freqmine", "parsec", True, 0.28, 0.20,
          [_hot(0.92, 0.02),
           (0.08, {"kind": "zipf", "footprint_mult": 0.8, "skew": 1.2})],
          share=0.10, note="FP-tree mining; mostly L1/L2 resident"),
    _spec("streamcluster", "parsec", True, 0.40, 0.10,
          [_hot(0.30, 0.01),
           (0.60, {"kind": "sequential", "footprint_mult": 8.0}),
           (0.10, {"kind": "uniform", "footprint_mult": 0.2})],
          share=0.40, note="repeated streaming over the point set"),
    _spec("swaptions", "parsec", True, 0.22, 0.18,
          [_hot(0.96, 0.015), (0.04, {"kind": "working_set", "footprint_mult": 0.4,
                                      "ws_fraction": 0.3, "locality": 0.9})],
          share=0.05, note="small per-thread simulation state"),
]

# --------------------------------------------------------------------------
# SPECOMP (multithreaded)
# --------------------------------------------------------------------------
SPECOMP = [
    _spec("wupwise", "specomp", True, 0.32, 0.25,
          [_hot(0.55, 0.02),
           (0.35, {"kind": "strided", "footprint_mult": 1.2, "stride": 256}),
           (0.10, {"kind": "strided", "footprint_mult": 1.2, "stride": 512})],
          share=0.10, note="power-of-two lattice strides; pathological set conflicts"),
    _spec("swim", "specomp", True, 0.42, 0.30,
          [_hot(0.25, 0.01),
           (0.75, {"kind": "sequential", "footprint_mult": 12.0})],
          share=0.10, note="large streaming stencil; miss-intensive"),
    _spec("mgrid", "specomp", True, 0.38, 0.28,
          [_hot(0.45, 0.02),
           (0.25, {"kind": "strided", "footprint_mult": 1.5, "stride": 64}),
           (0.20, {"kind": "strided", "footprint_mult": 1.5, "stride": 1024}),
           (0.10, {"kind": "sequential", "footprint_mult": 1.5})],
          share=0.10, note="multigrid strides at several scales"),
    _spec("applu", "specomp", True, 0.36, 0.30,
          [_hot(0.55, 0.02),
           (0.35, {"kind": "working_set", "footprint_mult": 1.3, "ws_fraction": 0.3,
                   "locality": 0.8}),
           (0.10, {"kind": "strided", "footprint_mult": 1.3, "stride": 128})],
          share=0.10, note="blocked linear solves"),
    _spec("equake", "specomp", True, 0.33, 0.22,
          [_hot(0.60, 0.02),
           (0.30, {"kind": "pointer_chase", "footprint_mult": 1.5, "jump_every": 256}),
           (0.10, {"kind": "sequential", "footprint_mult": 1.5})],
          share=0.15, note="irregular mesh traversal"),
    _spec("apsi", "specomp", True, 0.34, 0.27,
          [_hot(0.50, 0.02),
           (0.40, {"kind": "strided", "footprint_mult": 1.4, "stride": 2048}),
           (0.10, {"kind": "uniform", "footprint_mult": 1.0})],
          share=0.08, note="large strides; pathological set conflicts"),
    _spec("gafort", "specomp", True, 0.30, 0.35,
          [_hot(0.70, 0.02),
           (0.30, {"kind": "zipf", "footprint_mult": 1.2, "skew": 1.1})],
          share=0.20, note="genetic algorithm population shuffles"),
    _spec("fma3d", "specomp", True, 0.31, 0.28,
          [_hot(0.65, 0.025),
           (0.25, {"kind": "working_set", "footprint_mult": 1.3, "ws_fraction": 0.35,
                   "locality": 0.85}),
           (0.10, {"kind": "pointer_chase", "footprint_mult": 1.3, "jump_every": 128})],
          share=0.12, note="finite-element element/node accesses"),
    _spec("art", "specomp", True, 0.40, 0.20,
          [_hot(0.35, 0.015),
           (0.65, {"kind": "sequential", "footprint_mult": 5.0})],
          share=0.10, note="neural-net weight scans; miss-intensive"),
    _spec("ammp", "specomp", True, 0.30, 0.24,
          [_hot(0.55, 0.03),
           (0.43, {"kind": "working_set", "footprint_mult": 0.5, "ws_fraction": 0.4,
                   "locality": 0.93}),
           (0.02, {"kind": "uniform", "footprint_mult": 2.0})],
          share=0.15, note="frequent L2 hits, infrequent misses; latency-sensitive"),
]

# --------------------------------------------------------------------------
# SPECCPU2006 (single-threaded; run 32-copy multiprogrammed)
# --------------------------------------------------------------------------
SPEC2006 = [
    _spec("perlbench", "spec2006", False, 0.30, 0.30,
          [_hot(0.90, 0.02), (0.10, {"kind": "zipf", "footprint_mult": 0.6, "skew": 1.3})]),
    _spec("bzip2", "spec2006", False, 0.32, 0.28,
          [_hot(0.75, 0.02),
           (0.25, {"kind": "working_set", "footprint_mult": 0.9, "ws_fraction": 0.3,
                   "locality": 0.9})]),
    _spec("gcc", "spec2006", False, 0.33, 0.32,
          [_hot(0.70, 0.02),
           (0.20, {"kind": "zipf", "footprint_mult": 1.5, "skew": 1.15}),
           (0.10, {"kind": "pointer_chase", "footprint_mult": 1.5, "jump_every": 64})]),
    _spec("mcf", "spec2006", False, 0.40, 0.25,
          [_hot(0.30, 0.01),
           (0.70, {"kind": "pointer_chase", "footprint_mult": 12.0, "jump_every": 32})],
          note="huge pointer-chasing footprint; most miss-intensive integer code"),
    _spec("gobmk", "spec2006", False, 0.28, 0.27,
          [_hot(0.88, 0.025), (0.12, {"kind": "zipf", "footprint_mult": 0.5, "skew": 1.2})]),
    _spec("hmmer", "spec2006", False, 0.35, 0.30,
          [_hot(0.95, 0.02), (0.05, {"kind": "sequential", "footprint_mult": 0.5})]),
    _spec("sjeng", "spec2006", False, 0.27, 0.25,
          [_hot(0.85, 0.02), (0.15, {"kind": "uniform", "footprint_mult": 1.2})]),
    _spec("libquantum", "spec2006", False, 0.42, 0.35,
          [_hot(0.15, 0.005), (0.85, {"kind": "sequential", "footprint_mult": 10.0})],
          note="pure streaming over the qubit vector"),
    _spec("h264ref", "spec2006", False, 0.31, 0.28,
          [_hot(0.85, 0.03),
           (0.15, {"kind": "working_set", "footprint_mult": 1.1, "ws_fraction": 0.35,
                   "locality": 0.88})]),
    _spec("omnetpp", "spec2006", False, 0.34, 0.30,
          [_hot(0.45, 0.02),
           (0.55, {"kind": "pointer_chase", "footprint_mult": 2.5, "jump_every": 48})]),
    _spec("astar", "spec2006", False, 0.32, 0.26,
          [_hot(0.60, 0.02),
           (0.40, {"kind": "pointer_chase", "footprint_mult": 1.4, "jump_every": 96})]),
    _spec("xalancbmk", "spec2006", False, 0.33, 0.27,
          [_hot(0.55, 0.02),
           (0.45, {"kind": "zipf", "footprint_mult": 2.0, "skew": 1.05})]),
    _spec("bwaves", "spec2006", False, 0.41, 0.22,
          [_hot(0.20, 0.01), (0.80, {"kind": "sequential", "footprint_mult": 11.0})]),
    _spec("gamess", "spec2006", False, 0.29, 0.24,
          [_hot(0.60, 0.04),
           (0.40, {"kind": "working_set", "footprint_mult": 0.45, "ws_fraction": 0.5,
                   "locality": 0.95})],
          note="frequent L2 hits, few misses; hit-latency-sensitive"),
    _spec("milc", "spec2006", False, 0.40, 0.30,
          [_hot(0.20, 0.01),
           (0.70, {"kind": "sequential", "footprint_mult": 9.0}),
           (0.10, {"kind": "strided", "footprint_mult": 9.0, "stride": 128})]),
    _spec("zeusmp", "spec2006", False, 0.36, 0.28,
          [_hot(0.50, 0.02),
           (0.30, {"kind": "strided", "footprint_mult": 1.6, "stride": 256}),
           (0.20, {"kind": "sequential", "footprint_mult": 1.6})]),
    _spec("gromacs", "spec2006", False, 0.30, 0.26,
          [_hot(0.80, 0.03),
           (0.20, {"kind": "working_set", "footprint_mult": 0.8, "ws_fraction": 0.3,
                   "locality": 0.9})]),
    _spec("cactusADM", "spec2006", False, 0.38, 0.32,
          [_hot(0.35, 0.015),
           (0.40, {"kind": "strided", "footprint_mult": 1.3, "stride": 512}),
           (0.25, {"kind": "working_set", "footprint_mult": 1.3, "ws_fraction": 0.3,
                   "locality": 0.8})],
          note="large stencil strides; strongly associativity-sensitive"),
    _spec("leslie3d", "spec2006", False, 0.37, 0.27,
          [_hot(0.40, 0.02),
           (0.40, {"kind": "strided", "footprint_mult": 1.8, "stride": 192}),
           (0.20, {"kind": "sequential", "footprint_mult": 1.8})]),
    _spec("namd", "spec2006", False, 0.28, 0.22,
          [_hot(0.90, 0.03), (0.10, {"kind": "working_set", "footprint_mult": 0.5,
                                     "ws_fraction": 0.4, "locality": 0.92})]),
    _spec("soplex", "spec2006", False, 0.36, 0.25,
          [_hot(0.40, 0.02),
           (0.40, {"kind": "working_set", "footprint_mult": 1.6, "ws_fraction": 0.3,
                   "locality": 0.82}),
           (0.20, {"kind": "sequential", "footprint_mult": 1.6})]),
    _spec("povray", "spec2006", False, 0.26, 0.20,
          [_hot(0.97, 0.02), (0.03, {"kind": "zipf", "footprint_mult": 0.3, "skew": 1.3})]),
    _spec("calculix", "spec2006", False, 0.30, 0.26,
          [_hot(0.82, 0.025),
           (0.18, {"kind": "working_set", "footprint_mult": 1.0, "ws_fraction": 0.2,
                   "locality": 0.88})]),
    _spec("GemsFDTD", "spec2006", False, 0.39, 0.30,
          [_hot(0.25, 0.01),
           (0.55, {"kind": "sequential", "footprint_mult": 8.0}),
           (0.20, {"kind": "strided", "footprint_mult": 8.0, "stride": 384})]),
    _spec("lbm", "spec2006", False, 0.43, 0.38,
          [_hot(0.10, 0.005), (0.90, {"kind": "sequential", "footprint_mult": 14.0})],
          note="lattice-Boltzmann streaming; highest MPKI"),
    _spec("sphinx3", "spec2006", False, 0.34, 0.18,
          [_hot(0.55, 0.02),
           (0.35, {"kind": "sequential", "footprint_mult": 1.4}),
           (0.10, {"kind": "zipf", "footprint_mult": 1.0, "skew": 1.2})]),
]


@dataclass(frozen=True)
class MixWorkloadSpec:
    """A multiprogrammed mix: each core runs a different SPEC2006 proxy.

    Mirrors the paper's 30 random CPU2006 combinations (32 apps each,
    repetitions allowed). Duck-types ``WorkloadSpec`` for the parts the
    simulator uses.
    """

    name: str
    members: tuple  # 32 WorkloadSpec entries, one per core
    suite: str = "mix"
    multithreaded: bool = False
    sharing_frac: float = 0.0
    note: str = "random multiprogrammed CPU2006 combination"

    @property
    def mem_ratio(self) -> float:
        return sum(m.mem_ratio for m in self.members) / len(self.members)

    @property
    def write_frac(self) -> float:
        return sum(m.write_frac for m in self.members) / len(self.members)

    def core_stream(
        self, core_id: int, l2_blocks: int, seed: int = 0, num_cores: int = 32
    ) -> Iterator[CoreAccess]:
        """Delegate to the member app assigned to this core."""
        member = self.members[core_id % len(self.members)]
        return member.core_stream(core_id, l2_blocks, seed=seed, num_cores=num_cores)

    def describe(self) -> str:
        """One-line roster report for this mix."""
        names = {}
        for m in self.members:
            names[m.name] = names.get(m.name, 0) + 1
        body = ",".join(f"{n}x{c}" if c > 1 else n for n, c in sorted(names.items()))
        return f"{self.name:16s} [mix     ] {body[:60]}"


def _make_mixes(count: int = 30, cores: int = 32) -> list[MixWorkloadSpec]:
    mixes = []
    for i in range(count):
        rng = random.Random(1000 + i)
        members = tuple(rng.choice(SPEC2006) for _ in range(cores))
        mixes.append(MixWorkloadSpec(name=f"cpu2K6rand{i}", members=members))
    return mixes


MIXES = _make_mixes()
MIX_NAMES = [m.name for m in MIXES]

#: The full 72-workload roster, in paper order.
WORKLOADS = {w.name: w for w in (*PARSEC, *SPECOMP, *SPEC2006, *MIXES)}

assert len(WORKLOADS) == 72, f"expected 72 workloads, got {len(WORKLOADS)}"


def get_workload(name: str):
    """Look up a workload spec by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; see repro.workloads.roster()"
        ) from None


def roster() -> list[str]:
    """All 72 workload names, grouped suite by suite."""
    return list(WORKLOADS)
