"""Static re-reference interval prediction (SRRIP, Jaleel et al. 2010).

The paper cites RRIP as one of the "latest, highest-performing policies
[that] do not rely on set ordering" (Section III-E) and therefore drop
into a zcache unmodified. This is the candidate-local formulation:
because a zcache has no sets, the aging sweep that normally bumps a
set's RRPVs instead bumps the replacement candidates', which are the
blocks the controller is holding in its walk table anyway.
"""

from __future__ import annotations

from typing import Sequence

from repro.replacement.base import ReplacementPolicy


class SRRIP(ReplacementPolicy):
    """SRRIP with M-bit re-reference prediction values (RRPVs).

    - On insertion a block receives RRPV = 2^M - 2 ("long").
    - On a hit its RRPV drops to 0 ("near-immediate") — hit priority.
    - The victim is a candidate with RRPV = 2^M - 1 ("distant"); if no
      candidate is distant, all candidates age (RRPV += deficit) first.
    """

    def __init__(self, m_bits: int = 2) -> None:
        if m_bits < 1:
            raise ValueError(f"m_bits must be >= 1, got {m_bits}")
        self.m_bits = m_bits
        self.rrpv_max = (1 << m_bits) - 1
        self.rrpv_long = self.rrpv_max - 1
        self._counter = 0
        self._rrpv: dict[int, int] = {}
        self._stamp: dict[int, int] = {}
        self._changed: list[int] = []

    def on_insert(self, address: int) -> None:
        if address in self._rrpv:
            raise ValueError(f"block {address:#x} inserted twice")
        self._counter += 1
        self._rrpv[address] = self.rrpv_long
        self._stamp[address] = self._counter

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._rrpv:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._counter += 1
        self._rrpv[address] = 0
        self._stamp[address] = self._counter

    def on_evict(self, address: int) -> None:
        if address not in self._rrpv:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._rrpv[address]
        del self._stamp[address]

    def score(self, address: int) -> tuple[int, int]:
        # Higher RRPV first; ties broken towards the least recently
        # touched block so the global order is total.
        return (self._rrpv[address], -self._stamp[address])

    def select_victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("select_victim called with no candidates")
        top = max(self._rrpv[a] for a in candidates)
        deficit = self.rrpv_max - top
        if deficit > 0:
            # Age the candidates up so at least one is distant. These
            # score changes happen outside on_* calls, so report them.
            for addr in set(candidates):
                self._rrpv[addr] += deficit
                self._changed.append(addr)
        return super().select_victim(list(candidates))

    def drain_score_updates(self) -> list[int]:
        out, self._changed = self._changed, []
        return out
