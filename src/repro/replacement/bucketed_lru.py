"""Bucketed LRU with n-bit wrap-around timestamps (paper Section III-E).

To cut the area cost of full 32-bit timestamps, the paper makes the
timestamps small (n bits) and increments the global counter only once
every k accesses (k = 5% of the cache size in the evaluation). Victim
selection compares timestamps in mod-2^n arithmetic: the candidate whose
wrapped age ``(counter - stamp) mod 2^n`` is largest is evicted. With the
recommended parameters it is rare for a block to survive a full
wrap-around unaccessed, so the approximation tracks full LRU closely.

For the associativity framework's *global rank* we keep a shadow
unwrapped timestamp: the framework needs a stable total order (the
ground-truth ranking), while victim selection uses the hardware-faithful
wrapped field — so wrap artifacts show up as associativity loss, exactly
as they would in hardware.
"""

from __future__ import annotations

from repro.replacement.base import ReplacementPolicy


class BucketedLRU(ReplacementPolicy):
    """LRU with bucketed, n-bit, wrap-around timestamps.

    Parameters
    ----------
    timestamp_bits:
        Width n of the hardware timestamp field (paper uses 8).
    bump_every:
        Accesses per counter increment, k. The paper sets k to 5% of the
        cache's block count; callers size this via
        :meth:`for_cache_size`. ``bump_every=1`` with large
        ``timestamp_bits`` degenerates to full LRU.
    """

    def __init__(self, timestamp_bits: int = 8, bump_every: int = 1) -> None:
        if timestamp_bits < 1:
            raise ValueError(f"timestamp_bits must be >= 1, got {timestamp_bits}")
        if bump_every < 1:
            raise ValueError(f"bump_every must be >= 1, got {bump_every}")
        self.timestamp_bits = timestamp_bits
        self.bump_every = bump_every
        self._mod = 1 << timestamp_bits
        self._counter = 0  # n-bit hardware counter
        self._accesses = 0
        self._true_counter = 0  # unwrapped shadow for global ranking
        self._stamp: dict[int, int] = {}
        self._true_stamp: dict[int, int] = {}

    @classmethod
    def for_cache_size(
        cls, num_blocks: int, timestamp_bits: int = 8, bump_fraction: float = 0.05
    ) -> "BucketedLRU":
        """Build the paper's configuration: k = ``bump_fraction`` of the
        cache's block count, 8-bit timestamps."""
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        bump_every = max(1, round(num_blocks * bump_fraction))
        return cls(timestamp_bits=timestamp_bits, bump_every=bump_every)

    def _touch(self, address: int) -> None:
        self._accesses += 1
        self._true_counter += 1
        if self._accesses % self.bump_every == 0:
            self._counter = (self._counter + 1) % self._mod
        self._stamp[address] = self._counter
        self._true_stamp[address] = self._true_counter

    def on_insert(self, address: int) -> None:
        if address in self._stamp:
            raise ValueError(f"block {address:#x} inserted twice")
        self._touch(address)

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._stamp:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._touch(address)

    def on_evict(self, address: int) -> None:
        if address not in self._stamp:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._stamp[address]
        del self._true_stamp[address]

    def score(self, address: int) -> int:
        """Ground-truth eviction preference (unwrapped age)."""
        return -self._true_stamp[address]

    def wrapped_age(self, address: int) -> int:
        """Hardware age in mod-2^n arithmetic, as the controller sees it."""
        return (self._counter - self._stamp[address]) % self._mod

    def select_victim(self, candidates) -> int:
        """Pick the candidate with the largest wrapped age.

        This is the hardware behaviour: comparisons happen on the n-bit
        fields, so a block that survived a wrap can look recent and be
        unfairly retained (and vice versa).
        """
        if not candidates:
            raise ValueError("select_victim called with no candidates")
        best = candidates[0]
        best_age = self.wrapped_age(best)
        for addr in candidates[1:]:
            age = self.wrapped_age(addr)
            if age > best_age:
                best, best_age = addr, age
        return best
