"""Tree pseudo-LRU — the set-ordering policy zcaches *cannot* use.

Section II-A: skew-associative caches (and therefore zcaches) "break
the concept of a set, so they cannot use replacement policy
implementations that rely on set ordering (e.g. using pseudo-LRU to
approximate LRU)". This module makes that limitation concrete: a
classic per-set tree-PLRU that binds to a set-associative array and
*refuses* to bind to anything else.

Mechanics: each set keeps W-1 tree bits. An access flips the bits on
the root-to-leaf path to point *away* from the touched way; the victim
is found by following the bits from the root. One bit per internal
node ≈ 1 bit/block of state versus full LRU's log2(W!)/W — the cost
argument for why real processors used it.
"""

from __future__ import annotations

from typing import Sequence

from repro.replacement.base import ReplacementPolicy


class TreePLRU(ReplacementPolicy):
    """Per-set tree pseudo-LRU bound to a set-associative array.

    Parameters
    ----------
    array:
        A :class:`~repro.core.setassoc.SetAssociativeArray` with a
        power-of-two way count. The policy reads block positions from
        it (PLRU state is positional, not address-based — exactly why
        it needs sets).
    """

    def __init__(self, array) -> None:
        from repro.core.setassoc import SetAssociativeArray

        if not isinstance(array, SetAssociativeArray):
            raise TypeError(
                "TreePLRU requires a SetAssociativeArray: pseudo-LRU "
                "state is per-set, and skew/z arrays have no sets "
                "(paper Section II-A)"
            )
        ways = array.num_ways
        if ways < 2 or ways & (ways - 1):
            raise ValueError(
                f"tree-PLRU needs a power-of-two way count >= 2, got {ways}"
            )
        self.array = array
        self.ways = ways
        self._levels = ways.bit_length() - 1
        # W-1 tree bits per set, packed as an int: bit index = node id
        # in heap order (root = 0). Bit value 0 = victim path goes left.
        self._bits: list[int] = [0] * array.num_sets
        self._counter = 0
        self._stamp: dict[int, int] = {}

    # -- tree mechanics -----------------------------------------------------
    def _touch_way(self, set_index: int, way: int) -> None:
        """Point every node on the way's path *away* from it."""
        bits = self._bits[set_index]
        node = 0
        span = self.ways
        lo = 0
        for _ in range(self._levels):
            span //= 2
            go_right = way >= lo + span
            if go_right:
                lo += span
                bits &= ~(1 << node)  # away = left
                node = 2 * node + 2
            else:
                bits |= 1 << node  # away = right
                node = 2 * node + 1
        self._bits[set_index] = bits

    def victim_way(self, set_index: int) -> int:
        """Follow the tree bits from the root to the victim way."""
        bits = self._bits[set_index]
        node = 0
        lo = 0
        span = self.ways
        for _ in range(self._levels):
            span //= 2
            if (bits >> node) & 1:  # 1 = victim on the right
                lo += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1
        return lo

    def _eviction_order(self, set_index: int) -> list[int]:
        """Ways in the order repeated PLRU evictions would pick them.

        Used only to give the associativity framework a total order;
        hardware never materialises this.
        """
        saved = self._bits[set_index]
        order = []
        for _ in range(self.ways):
            way = self.victim_way(set_index)
            order.append(way)
            self._touch_way(set_index, way)
        self._bits[set_index] = saved
        return order

    def _position(self, address: int):
        pos = self.array.lookup(address)
        if pos is None:
            raise KeyError(f"block {address:#x} is not resident")
        return pos

    # -- policy interface ---------------------------------------------------
    def on_insert(self, address: int) -> None:
        if address in self._stamp:
            raise ValueError(f"block {address:#x} inserted twice")
        self._counter += 1
        self._stamp[address] = self._counter
        pos = self._position(address)
        self._touch_way(pos.index, pos.way)

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._stamp:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._counter += 1
        self._stamp[address] = self._counter
        pos = self._position(address)
        self._touch_way(pos.index, pos.way)

    def on_evict(self, address: int) -> None:
        if address not in self._stamp:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._stamp[address]

    def score(self, address: int) -> tuple[int, int]:
        """PLRU rank within the set, recency-stamped across sets."""
        pos = self._position(address)
        rank = self._eviction_order(pos.index).index(pos.way)
        # Earlier in the eviction order = higher preference.
        return (self.ways - rank, -self._stamp[address])

    def select_victim(self, candidates: Sequence[int]) -> int:
        """The tree's victim; candidates must share one set."""
        if not candidates:
            raise ValueError("select_victim called with no candidates")
        sets = {self._position(a).index for a in candidates}
        if len(sets) != 1:
            raise ValueError(
                "tree-PLRU candidates span multiple sets — the policy "
                "only defines an order within a set"
            )
        set_index = sets.pop()
        way = self.victim_way(set_index)
        by_way = {self._position(a).way: a for a in candidates}
        if way in by_way:
            return by_way[way]
        # The tree's victim way is not among the candidates (partial
        # set, e.g. invalidated lines): fall back to the eviction order.
        for w in self._eviction_order(set_index):
            if w in by_way:
                return by_way[w]
        raise AssertionError("unreachable: candidates must map to ways")
