"""Replacement policy abstract base class."""

from __future__ import annotations

import abc
from typing import Any, Sequence


class ReplacementPolicy(abc.ABC):
    """A policy maintaining a global eviction-preference order of blocks.

    Contract
    --------
    - :meth:`on_insert` / :meth:`on_access` / :meth:`on_evict` are called
      by the cache controller as blocks move through the cache.
    - :meth:`score` returns the block's eviction preference. Higher score
      means "evict me first". The score of a block must only change as a
      result of an ``on_*`` call naming that block, or be reported via
      :meth:`drain_score_updates` — the associativity instrumentation
      mirrors scores into a sorted multiset and must be told when they
      move.
    - :meth:`select_victim` picks the highest-scoring candidate; policies
      may override (e.g. SRRIP's aging sweep).
    """

    @abc.abstractmethod
    def on_insert(self, address: int) -> None:
        """A block was installed in the cache."""

    @abc.abstractmethod
    def on_access(self, address: int, is_write: bool = False) -> None:
        """A resident block was hit."""

    @abc.abstractmethod
    def on_evict(self, address: int) -> None:
        """A block was evicted; the policy must forget its state."""

    @abc.abstractmethod
    def score(self, address: int) -> Any:
        """Eviction preference of a resident block (higher = evict)."""

    def select_victim(self, candidates: Sequence[int]) -> int:
        """Pick the candidate the policy prefers to evict.

        Default: highest :meth:`score`, first-wins tie-breaking.
        """
        if not candidates:
            raise ValueError("select_victim called with no candidates")
        best = candidates[0]
        best_score = self.score(best)
        for addr in candidates[1:]:
            s = self.score(addr)
            if s > best_score:
                best, best_score = addr, s
        return best

    def drain_score_updates(self) -> list[int]:
        """Addresses whose scores changed outside of ``on_*`` calls.

        Policies that mutate block state during victim selection (e.g.
        SRRIP aging) report the affected addresses here so observers can
        re-read their scores. Default: none.
        """
        return []

    def global_victim(self) -> int | None:
        """The globally most-evictable resident block, if the policy can
        produce it cheaply.

        Fully-associative arrays use this to avoid enumerating every
        resident block as a candidate. Policies without an efficient
        global order return None (the default) and the controller falls
        back to scanning the candidate list.
        """
        return None
