"""Least-frequently-used replacement.

The paper's framework (Section IV-A) lists LFU as an example of a policy
with a natural global ordering: blocks ranked by access frequency. Ties
are broken by recency (least recent first) so the score is a total order.
"""

from __future__ import annotations

from repro.replacement.base import ReplacementPolicy


class LFU(ReplacementPolicy):
    """Evict the block with the fewest accesses since insertion."""

    def __init__(self) -> None:
        self._counter = 0
        self._freq: dict[int, int] = {}
        self._stamp: dict[int, int] = {}

    def on_insert(self, address: int) -> None:
        if address in self._freq:
            raise ValueError(f"block {address:#x} inserted twice")
        self._counter += 1
        self._freq[address] = 1
        self._stamp[address] = self._counter

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._freq:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._counter += 1
        self._freq[address] += 1
        self._stamp[address] = self._counter

    def on_evict(self, address: int) -> None:
        if address not in self._freq:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._freq[address]
        del self._stamp[address]

    def score(self, address: int) -> tuple[int, int]:
        # Fewest accesses first; among equals, least recently touched.
        return (-self._freq[address], -self._stamp[address])
