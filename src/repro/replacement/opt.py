"""Belady's OPT replacement, built from a future reference trace.

The paper runs OPT in trace-driven mode (Section VI-B) to decouple
associativity effects from replacement-policy effects: the victim is the
candidate whose next reference is furthest in the future (never referenced
again beats everything). In caches with cross-set interference — skew
caches and zcaches — OPT is not strictly optimal, but remains a good
heuristic (paper footnote 2).

Implementation: pre-index each address's reference positions; keep a
cursor per address advanced lazily as the replayed trace catches up.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.replacement.base import ReplacementPolicy

#: Score of a block that is never referenced again.
NEVER = math.inf


class OptPolicy(ReplacementPolicy):
    """Belady's optimal policy over a known future trace.

    Build with :meth:`from_trace`, then replay *exactly* the same address
    sequence through the cache: each ``on_insert``/``on_access`` consumes
    one trace position.
    """

    def __init__(self, positions: dict[int, Sequence[int]], trace_length: int) -> None:
        self._positions = {a: list(p) for a, p in positions.items()}
        self._cursor: dict[int, int] = {a: 0 for a in self._positions}
        self._trace_length = trace_length
        self._now = -1  # index of the most recently replayed access
        self._resident: set[int] = set()

    @classmethod
    def from_trace(cls, addresses: Iterable[int]) -> "OptPolicy":
        """Index a trace of block addresses into an OPT policy."""
        positions: dict[int, list[int]] = {}
        n = 0
        for i, addr in enumerate(addresses):
            positions.setdefault(addr, []).append(i)
            n = i + 1
        return cls(positions, n)

    @property
    def trace_length(self) -> int:
        """Number of accesses in the indexed trace."""
        return self._trace_length

    def _advance(self, address: int) -> None:
        """Consume the trace position of this access."""
        self._now += 1
        if self._now >= self._trace_length:
            raise RuntimeError(
                "OPT replayed past the end of its trace "
                f"({self._trace_length} accesses)"
            )
        plist = self._positions.get(address)
        cur = self._cursor.get(address, 0)
        if plist is None or cur >= len(plist) or plist[cur] != self._now:
            raise RuntimeError(
                f"OPT replay mismatch at position {self._now}: trace expects "
                f"a different address than {address:#x}"
            )
        self._cursor[address] = cur + 1

    def on_insert(self, address: int) -> None:
        if address in self._resident:
            raise ValueError(f"block {address:#x} inserted twice")
        self._advance(address)
        self._resident.add(address)

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._resident:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._advance(address)

    def on_evict(self, address: int) -> None:
        try:
            self._resident.remove(address)
        except KeyError:
            raise KeyError(f"evicting non-resident block {address:#x}") from None

    def next_use(self, address: int) -> float:
        """Trace position of the next reference to ``address`` after now
        (``math.inf`` if it is never referenced again)."""
        plist = self._positions.get(address)
        if plist is None:
            return NEVER
        cur = self._cursor.get(address, 0)
        if cur >= len(plist):
            return NEVER
        return plist[cur]

    def score(self, address: int) -> float:
        # Furthest next use first; never-referenced-again is +inf.
        return self.next_use(address)
