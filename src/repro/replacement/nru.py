"""Not-recently-used (NRU) replacement.

The paper (Section III-E) notes that several processors already find
per-set LRU ordering too expensive and "resort to policies that do not
require it", citing the Itanium 2 and UltraSPARC T2 — both NRU
variants. NRU keeps one reference bit per block: set on access, and
when every block in the victim-search scope has its bit set, the scope's
bits reset (here: the candidate set, the natural scope for a zcache).

NRU's global order is weak (two classes), so ties are broken by a
coarse insertion clock; the associativity framework still gets a total
order via :meth:`score`.
"""

from __future__ import annotations

from typing import Sequence

from repro.replacement.base import ReplacementPolicy


class NRU(ReplacementPolicy):
    """One reference bit per block; victims come from the not-recent class."""

    def __init__(self) -> None:
        self._referenced: dict[int, bool] = {}
        self._stamp: dict[int, int] = {}
        self._counter = 0
        self._changed: list[int] = []

    def on_insert(self, address: int) -> None:
        if address in self._referenced:
            raise ValueError(f"block {address:#x} inserted twice")
        self._counter += 1
        self._referenced[address] = True
        self._stamp[address] = self._counter

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._referenced:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._counter += 1
        self._referenced[address] = True
        self._stamp[address] = self._counter

    def on_evict(self, address: int) -> None:
        if address not in self._referenced:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._referenced[address]
        del self._stamp[address]

    def score(self, address: int) -> tuple[int, int]:
        # Not-referenced blocks first; within a class, older first.
        return (0 if self._referenced[address] else 1, -self._stamp[address])

    def select_victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("select_victim called with no candidates")
        unreferenced = [a for a in candidates if not self._referenced[a]]
        if not unreferenced:
            # Hardware clears the scope's bits and picks any member; we
            # clear the candidates' bits (the zcache's natural scope).
            for addr in set(candidates):
                self._referenced[addr] = False
                self._changed.append(addr)
            unreferenced = list(candidates)
        # Deterministic pick: the oldest-stamped unreferenced block.
        return min(unreferenced, key=lambda a: self._stamp[a])

    def drain_score_updates(self) -> list[int]:
        out, self._changed = self._changed, []
        return out
