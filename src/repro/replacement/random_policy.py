"""Random replacement with a stable per-residency priority.

Each block receives a random priority when it is inserted; the victim is
the candidate with the highest priority. This is equivalent to uniform
random victim selection but yields a *stable global ordering*, which the
associativity framework requires (the eviction-priority rank of the
victim is well defined).
"""

from __future__ import annotations

import random

from repro.replacement.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Uniform-random eviction via stable random priorities."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._priority: dict[int, float] = {}

    def on_insert(self, address: int) -> None:
        if address in self._priority:
            raise ValueError(f"block {address:#x} inserted twice")
        self._priority[address] = self._rng.random()

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._priority:
            raise KeyError(f"access to non-resident block {address:#x}")

    def on_evict(self, address: int) -> None:
        if address not in self._priority:
            raise KeyError(f"evicting non-resident block {address:#x}")
        del self._priority[address]

    def score(self, address: int) -> float:
        return self._priority[address]
