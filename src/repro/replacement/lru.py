"""Full-timestamp LRU and FIFO.

Paper Section III-E ("Full LRU"): a global counter is incremented on each
access and copied into the accessed block's timestamp field; the
replacement candidate with the lowest timestamp is evicted. In simulation
we use unbounded Python integers, so wrap-around never occurs (the
hardware-faithful n-bit variant is :class:`~repro.replacement.
bucketed_lru.BucketedLRU` with ``bump_every=1``).
"""

from __future__ import annotations

from repro.replacement.base import ReplacementPolicy


class LRU(ReplacementPolicy):
    """Least-recently-used via per-block global timestamps.

    The timestamp dict is kept in recency order (oldest first) so the
    global LRU block is available in O(1) for fully-associative arrays.
    """

    def __init__(self) -> None:
        self._counter = 0
        self._stamp: dict[int, int] = {}

    def _touch(self, address: int) -> None:
        self._counter += 1
        # Re-inserting moves the key to the end: dict order == recency.
        self._stamp.pop(address, None)
        self._stamp[address] = self._counter

    def global_victim(self) -> int | None:
        return next(iter(self._stamp), None)

    def on_insert(self, address: int) -> None:
        if address in self._stamp:
            raise ValueError(f"block {address:#x} inserted twice")
        self._touch(address)

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._stamp:
            raise KeyError(f"access to non-resident block {address:#x}")
        self._touch(address)

    def on_evict(self, address: int) -> None:
        try:
            del self._stamp[address]
        except KeyError:
            raise KeyError(f"evicting non-resident block {address:#x}") from None

    def score(self, address: int) -> int:
        # Older (smaller) timestamps should be evicted first, so the
        # score is the negated timestamp.
        return -self._stamp[address]


class FIFO(ReplacementPolicy):
    """First-in first-out: timestamp at insertion only, never refreshed.

    Insertion order of the dict is the eviction order, so the global
    victim is O(1).
    """

    def __init__(self) -> None:
        self._counter = 0
        self._stamp: dict[int, int] = {}

    def global_victim(self) -> int | None:
        return next(iter(self._stamp), None)

    def on_insert(self, address: int) -> None:
        if address in self._stamp:
            raise ValueError(f"block {address:#x} inserted twice")
        self._counter += 1
        self._stamp[address] = self._counter

    def on_access(self, address: int, is_write: bool = False) -> None:
        if address not in self._stamp:
            raise KeyError(f"access to non-resident block {address:#x}")

    def on_evict(self, address: int) -> None:
        try:
            del self._stamp[address]
        except KeyError:
            raise KeyError(f"evicting non-resident block {address:#x}") from None

    def score(self, address: int) -> int:
        return -self._stamp[address]
