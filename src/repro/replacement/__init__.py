"""Replacement policies with a *global rank* interface.

The paper's analytical framework (Section IV) models the replacement
policy as maintaining a global ordering of all cached blocks by eviction
preference. Every policy here exposes :meth:`~repro.replacement.base.
ReplacementPolicy.score`: a value that is higher for blocks the policy
would rather evict, stable between events affecting that block, and
totally ordered across blocks. Victim selection picks the candidate with
the highest score; the associativity instrumentation ranks the victim's
score among all resident blocks.

Policies
--------
- :class:`LRU` — full-timestamp LRU (paper Section III-E "Full LRU").
- :class:`BucketedLRU` — n-bit timestamps bumped every k accesses
  (Section III-E "Bucketed LRU", the policy used in the paper's
  evaluation).
- :class:`OptPolicy` — Belady's OPT, built from a future trace
  (trace-driven mode, Section VI-B).
- :class:`LFU`, :class:`FIFO`, :class:`RandomPolicy` — classic baselines.
- :class:`SRRIP` — re-reference interval prediction, an example of the
  set-ordering-free policies the paper cites as zcache-compatible.
- :class:`NRU` — the reference-bit policy of the Itanium 2 /
  UltraSPARC T2, which the paper cites as proof that commercial
  processors already forgo per-set ordering.
- :class:`TreePLRU` — per-set tree pseudo-LRU, the set-ordering policy
  the paper notes zcaches *cannot* use; it binds to a set-associative
  array and refuses anything else (so the limitation is executable).
"""

from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import LRU, FIFO
from repro.replacement.nru import NRU
from repro.replacement.bucketed_lru import BucketedLRU
from repro.replacement.lfu import LFU
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.opt import OptPolicy
from repro.replacement.plru import TreePLRU
from repro.replacement.srrip import SRRIP

__all__ = [
    "ReplacementPolicy",
    "LRU",
    "FIFO",
    "BucketedLRU",
    "LFU",
    "RandomPolicy",
    "OptPolicy",
    "SRRIP",
    "NRU",
    "TreePLRU",
    "make_policy",
]


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct a policy by name (``lru``, ``bucketed-lru``, ``lfu``,
    ``fifo``, ``random``, ``srrip``; OPT must be built from a trace)."""
    registry = {
        "lru": LRU,
        "bucketed-lru": BucketedLRU,
        "lfu": LFU,
        "fifo": FIFO,
        "random": RandomPolicy,
        "srrip": SRRIP,
        "nru": NRU,
    }
    if name not in registry:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(registry)} "
            "(OPT is built with OptPolicy.from_trace)"
        )
    return registry[name](**kwargs)
