"""Fault plans: what to break, when, and where.

A :class:`FaultPlan` is a finite list of :class:`FaultEvent` records —
(kind, trigger time, location hints) — fully describing a corruption
schedule. Plans are *data*: serializable to JSON (checkpoints, minimal
counterexamples), comparable, and orderable, so a campaign case or a
faultmin probe is replayable from its plan alone plus the case seed.

Trigger times are access indices into the replay's deterministic
address stream: event ``at=k`` fires just before access ``k``. Location
hints (``way``/``index``/``bit``) are taken modulo whatever the target
structure's size happens to be at fire time, so a plan written for one
geometry stays meaningful on another (faultmin shrinks them toward 0).

The six fault kinds and the machinery each one corrupts:

====================  ====================================================
kind                  corrupted structure
====================  ====================================================
``tag-flip``          one resident line's stored tag (bit flip), the
                      position map left stale — a latent corruption
``stale-walk``        a candidate record in a freshly built walk (the
                      walk "serves" contents the array does not hold)
``drop-relocation``   one relocation of a commit never lands: the moved
                      block vanishes from lines and map
``misdirect-relocation``  one relocation lands at the wrong index of
                      its way
``stamp-corrupt``     an LRU/FIFO timestamp is zeroed — the policy's
                      recency order silently inverts for that block
``drop-eviction-log`` one ZServe eviction-log record is dropped, so the
                      shard never evicts the payload
====================  ====================================================

The first four target array state and are the ZSpec registry's prey;
``stamp-corrupt`` is deliberately *outside* every registered
invariant's reach (policy state is not array state) — the campaign's
planted detector miss; ``drop-eviction-log`` targets the serve layer
and is caught by the shard's payload/residency consistency check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

__all__ = [
    "ARRAY_FAULT_KINDS",
    "FAULT_KINDS",
    "POLICY_FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
]

#: faults applied to cache-array state or walk results
ARRAY_FAULT_KINDS = (
    "tag-flip",
    "stale-walk",
    "drop-relocation",
    "misdirect-relocation",
)

#: faults applied to replacement-policy state (invisible to ZSpec)
POLICY_FAULT_KINDS = ("stamp-corrupt",)

#: faults applied to the serve layer's eviction accounting
SERVE_FAULT_KINDS = ("drop-eviction-log",)

#: every fault kind the injector understands
FAULT_KINDS = ARRAY_FAULT_KINDS + POLICY_FAULT_KINDS + SERVE_FAULT_KINDS


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled corruption.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Access index the event fires before (``0`` = before the first
        access). Walk/commit kinds *arm* at this point and fire on the
        next walk (``stale-walk``), the next relocating commit
        (``drop-relocation``/``misdirect-relocation``) or the next
        eviction (``drop-eviction-log``).
    way / index / bit:
        Location hints, reduced modulo the live structure's size at
        fire time (ways, lines or entries, tag bits respectively).
    """

    kind: str
    at: int
    way: int = 0
    index: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"trigger time must be >= 0, got {self.at}")
        if self.way < 0 or self.index < 0 or self.bit < 0:
            raise ValueError("location hints must be >= 0")

    def to_dict(self) -> dict:
        """JSON-safe representation (zero-valued hints elided)."""
        out: dict[str, Any] = {"kind": self.kind, "at": self.at}
        for name in ("way", "index", "bit"):
            value = getattr(self, name)
            if value:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            at=int(data["at"]),
            way=int(data.get("way", 0)),
            index=int(data.get("index", 0)),
            bit=int(data.get("bit", 0)),
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultEvent` records.

    Events are stored sorted by ``(at, kind, way, index, bit)`` so two
    plans with the same events compare equal regardless of construction
    order — faultmin's subset cache relies on that.
    """

    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.at, e.kind, e.way, e.index, e.bit),
            )
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def kinds(self) -> tuple:
        """The distinct fault kinds present, in schedule order."""
        seen: list[str] = []
        for event in self.events:
            if event.kind not in seen:
                seen.append(event.kind)
        return tuple(seen)

    def subset(self, picked: Sequence[FaultEvent]) -> "FaultPlan":
        """A new plan holding exactly ``picked`` (faultmin's reducer)."""
        return FaultPlan(events=tuple(picked))

    def to_list(self) -> list:
        """JSON-safe list of event dicts."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_list(cls, data: Sequence[dict]) -> "FaultPlan":
        """Inverse of :meth:`to_list`."""
        return cls(events=tuple(FaultEvent.from_dict(d) for d in data))

    @classmethod
    def single(cls, kind: str, at: int, **hints: int) -> "FaultPlan":
        """The one-event plan campaigns sweep with."""
        return cls(events=(FaultEvent(kind=kind, at=at, **hints),))
