"""Fault injectors: seeded, replayable corruption of cache machinery.

Three cooperating pieces turn a :class:`~repro.faults.plan.FaultPlan`
into actual damage:

- :class:`FaultInjector` owns the schedule. The replay harness calls
  :meth:`FaultInjector.advance` once before every access; events whose
  trigger time has arrived either fire immediately (``tag-flip``,
  ``stamp-corrupt`` mutate state between accesses, exactly where a
  particle strike lands in hardware) or *arm* and fire inside the next
  matching operation (walk, relocating commit, eviction).
- :class:`FaultyArray` is an attribute-forwarding proxy in the mold of
  :class:`~repro.analysis.sanitizer.SanitizedArray`, inserted *under*
  the sanitizer: ``SanitizedArray(FaultyArray(array))``. It applies
  armed walk corruption to the candidate trees it returns and armed
  relocation corruption right after the commits it forwards — so the
  sanitizer observes the faulted array exactly as it would observe a
  buggy one. With no injector armed it is a pure pass-through, and
  with ``plan=None`` the harness skips it entirely (bit-identical).
- :class:`LogDroppingPolicy` wraps the serve layer's eviction-log
  policy (via the shard's ``wrap_policy`` hook) and, when armed, lets
  one eviction bypass the log: the real policy still learns, the
  shard's payload bookkeeping does not.

Corruption is applied only to *state between operations* or to
*returned walk results* — never inside candidate collection itself —
so the two-phase purity contract (walks are read-only, rule ZS105)
holds for the faulty stack just as it does for the real one.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Position,
    Replacement,
)
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "TAG_BITS",
    "FaultInjector",
    "FaultyArray",
    "LogDroppingPolicy",
    "faulty_wrapper",
]

#: width of the modelled tag, for ``tag-flip`` bit selection
TAG_BITS = 20


class FaultInjector:
    """Drives one plan through one replay; all decisions deterministic.

    The injector is purely schedule-driven — location hints in the
    events pick targets by modular arithmetic over live structure
    sizes, so no RNG is involved and a replayed plan always damages
    the same state.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending = list(plan)
        self._cursor = 0
        self._op = 0
        self._armed_walk: list[FaultEvent] = []
        self._armed_commit: list[FaultEvent] = []
        self._armed_log: list[FaultEvent] = []
        #: ``(op index, event, applied)`` for every event reaching its
        #: trigger; ``applied=False`` records a fizzle (no viable target)
        self.fired: list[tuple[int, FaultEvent, bool]] = []

    # -- schedule ------------------------------------------------------------
    def advance(
        self, array: Optional[CacheArray] = None, policy: object = None
    ) -> None:
        """Fire/arm every event due at the current access index."""
        op = self._op
        pending = self._pending
        while self._cursor < len(pending) and pending[self._cursor].at <= op:
            event = pending[self._cursor]
            self._cursor += 1
            if event.kind == "tag-flip":
                self.fired.append((op, event, self._flip_tag(array, event)))
            elif event.kind == "stamp-corrupt":
                self.fired.append(
                    (op, event, self._corrupt_stamp(policy, event))
                )
            elif event.kind == "stale-walk":
                self._armed_walk.append(event)
            elif event.kind in ("drop-relocation", "misdirect-relocation"):
                self._armed_commit.append(event)
            else:  # drop-eviction-log
                self._armed_log.append(event)
        self._op = op + 1

    @property
    def exhausted(self) -> bool:
        """True once every event has fired (nothing armed, nothing due)."""
        return (
            self._cursor >= len(self._pending)
            and not self._armed_walk
            and not self._armed_commit
            and not self._armed_log
        )

    # -- between-access faults ----------------------------------------------
    def _flip_tag(self, array: Optional[CacheArray], event: FaultEvent) -> bool:
        """Flip one bit of one resident tag; the map goes stale."""
        if array is None:
            return False
        ways = array.num_ways
        lines = array.lines_per_way
        start_way = event.way % ways
        start_index = event.index % lines
        for w in range(ways):
            way = (start_way + w) % ways
            row = array._lines[way]
            for i in range(lines):
                index = (start_index + i) % lines
                addr = row[index]
                if addr is None:
                    continue
                row[index] = addr ^ (1 << (event.bit % TAG_BITS))
                return True
        return False

    def _corrupt_stamp(self, policy: object, event: FaultEvent) -> bool:
        """Zero one LRU/FIFO timestamp: that block becomes oldest."""
        stamps = getattr(policy, "_stamp", None)
        if not stamps:
            return False
        keys = list(stamps)
        target = keys[-(1 + event.index % len(keys))]
        stamps[target] = 0
        return True

    # -- armed faults (consumed by the wrappers) ------------------------------
    def corrupt_walk(self, repl: Replacement) -> None:
        """Rewrite one candidate's recorded contents (armed stale-walk)."""
        if not self._armed_walk or not repl.candidates:
            return
        event = self._armed_walk.pop(0)
        cands = repl.candidates
        cand = cands[event.index % len(cands)]
        if cand.address is None:
            # A stale record of a block that is not there.
            cand.address = (repl.incoming ^ (1 << (event.bit % TAG_BITS))) | 1
        else:
            cand.address = cand.address ^ (1 << (event.bit % TAG_BITS))
        self.fired.append((self._op, event, True))

    def corrupt_commit(self, array: CacheArray, chosen: Candidate) -> None:
        """Damage one relocation of a just-committed path (armed kinds).

        The event stays armed across non-relocating commits (a
        set-associative or skew array never relocates, so the fault
        physically cannot fire there — by design).
        """
        if not self._armed_commit:
            return
        path = chosen.path_to_root()
        if len(path) < 2:
            return
        event = self._armed_commit.pop(0)
        hop = event.index % (len(path) - 1)
        dest = path[hop].position
        moved = path[hop + 1].address
        assert moved is not None, "internal walk nodes always hold a block"
        wrong = (dest.index + 1 + event.bit) % array.lines_per_way
        if event.kind == "misdirect-relocation" and wrong != dest.index:
            array._lines[dest.way][dest.index] = None
            array._lines[dest.way][wrong] = moved
            array._pos[moved] = Position(dest.way, wrong)
        else:
            # drop-relocation (or a misdirect with nowhere else to go):
            # the write never lands anywhere.
            array._lines[dest.way][dest.index] = None
            array._pos.pop(moved, None)
        self.fired.append((self._op, event, True))

    def take_log_drop(self) -> bool:
        """Consume one armed ``drop-eviction-log`` event, if any."""
        if not self._armed_log:
            return False
        event = self._armed_log.pop(0)
        self.fired.append((self._op, event, True))
        return True


class FaultyArray:
    """Fault-applying proxy around a :class:`CacheArray`.

    Attribute reads and writes not intercepted here forward to the
    inner array (same delegation idiom as
    :class:`~repro.analysis.sanitizer.SanitizedArray`, and for the same
    reason: the stack must duck-type as the array it wraps). Stacked as
    ``SanitizedArray(FaultyArray(array))`` the sanitizer checks the
    *faulted* view — the detector sees what a buggy array would show.
    """

    _OWN = frozenset({"_inner", "_injector"})

    def __init__(self, array: CacheArray, injector: FaultInjector) -> None:
        object.__setattr__(self, "_inner", array)
        object.__setattr__(self, "_injector", injector)

    # -- delegation ----------------------------------------------------------
    @property
    def array(self) -> CacheArray:
        """The wrapped array (for direct inspection)."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._OWN or not hasattr(self._inner, name):
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def __contains__(self, address: int) -> bool:
        return address in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    # -- intercepted operations ----------------------------------------------
    def build_replacement(self, address: int) -> Replacement:
        """Forward the walk, then apply any armed candidate corruption."""
        repl = self._inner.build_replacement(address)
        self._injector.corrupt_walk(repl)
        return repl

    def build_reinsertion(self, address: int) -> Replacement:
        """Forward a reinsertion walk, then apply armed corruption."""
        repl = self._inner.build_reinsertion(address)
        self._injector.corrupt_walk(repl)
        return repl

    def commit_replacement(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Forward the commit, then damage one relocation if armed."""
        result = self._inner.commit_replacement(repl, chosen)
        self._injector.corrupt_commit(self._inner, chosen)
        return result

    def commit_reinsertion(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Forward a reinsertion commit, then damage it if armed."""
        result = self._inner.commit_reinsertion(repl, chosen)
        self._injector.corrupt_commit(self._inner, chosen)
        return result


def faulty_wrapper(
    injector: FaultInjector,
) -> Callable[[CacheArray], FaultyArray]:
    """A ``wrap_array`` callable pre-bound to one injector."""

    def wrap(array: CacheArray) -> FaultyArray:
        """Wrap one array with the captured injector."""
        return FaultyArray(array, injector)

    return wrap


class LogDroppingPolicy:
    """Serve-layer policy wrapper that drops armed eviction-log records.

    Wraps the shard's :class:`~repro.serve.shard.EvictionLog` (via the
    ``wrap_policy`` hook): every call forwards, except an armed
    ``drop-eviction-log`` eviction, which skips the log and notifies
    only the underlying policy — the shard keeps the evicted block's
    payload, which is exactly the corruption its consistency check
    exists to catch.
    """

    def __init__(self, log: Any, injector: FaultInjector) -> None:
        self.log = log
        self.injector = injector

    def on_insert(self, address: int) -> None:
        """Forward an insertion to the wrapped log."""
        self.log.on_insert(address)

    def on_access(self, address: int, is_write: bool = False) -> None:
        """Forward an access to the wrapped log."""
        self.log.on_access(address, is_write)

    def on_evict(self, address: int) -> None:
        """Forward an eviction — unless an armed drop consumes it."""
        if self.injector.take_log_drop():
            # The log never hears about this victim; the policy must
            # (its residency view has to stay exact).
            self.log.inner.on_evict(address)
        else:
            self.log.on_evict(address)

    def score(self, address: int) -> object:
        """Forward scoring to the wrapped log."""
        return self.log.score(address)

    def select_victim(self, candidates: Sequence[int]) -> int:
        """Forward victim selection to the wrapped log."""
        return self.log.select_victim(candidates)

    def drain_score_updates(self) -> list:
        """Forward score-update draining to the wrapped log."""
        return self.log.drain_score_updates()

    def global_victim(self) -> Optional[int]:
        """Forward the global-victim query to the wrapped log."""
        return self.log.global_victim()
