"""Campaign driver: sweep fault location x timing x kind across designs.

The campaign is an outer product — every fault kind, at several
trigger points and locations, against every design — of *independent*
:func:`~repro.faults.harness.run_case` units, so it fans out across a
:class:`~concurrent.futures.ProcessPoolExecutor` exactly like the
experiment sweep engine (:mod:`repro.experiments.parallel`), whose
conventions it reuses:

- per-case seeds via :func:`~repro.experiments.parallel.derive_job_seed`
  (stable across processes and retries);
- a fingerprint-validated JSON checkpoint
  (:class:`~repro.experiments.parallel.SweepCheckpoint`) updated after
  every finished case, so an interrupted campaign resumes without
  recomputing anything;
- deterministic join order, one retry per case, and graceful
  degradation to in-parent execution when the pool dies — parallel
  results are bit-identical to a serial run's.

Classification counts flow into the parent
:class:`~repro.obs.MetricsRegistry` as
``faults.<design>.<kind>.<classification>`` counters; the aggregate
:class:`CampaignReport` renders the per-design detection-rate and
MPKI-drift tables that ``BENCH_faults.json`` commits.
"""

from __future__ import annotations

import json
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.experiments.parallel import (
    SweepCheckpoint,
    default_jobs,
    derive_job_seed,
)
from repro.faults.harness import (
    CLASSIFICATIONS,
    DESIGNS,
    SERVE_DESIGNS,
    FaultCase,
    FaultOutcome,
    run_case,
)
from repro.faults.plan import ARRAY_FAULT_KINDS, POLICY_FAULT_KINDS
from repro.obs import Heartbeat, ObsContext, sanitize_component

__all__ = [
    "CAMPAIGN_VERSION",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignReport",
    "build_cases",
    "run_campaign",
]

#: checkpoint schema version (bump on incompatible change)
CAMPAIGN_VERSION = 1

#: trigger points, as fractions of the replay length
DEFAULT_TRIGGERS = (0.25, 0.5, 0.85)

#: location/bit variants per (design, kind, trigger)
DEFAULT_VARIANTS = 2


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Everything that identifies one campaign (and its checkpoint)."""

    base_seed: int = 1
    accesses: int = 2000
    lines_per_way: int = 64
    deep_interval: int = 16
    triggers: tuple = DEFAULT_TRIGGERS
    variants: int = DEFAULT_VARIANTS
    designs: tuple = tuple(DESIGNS)
    include_serve: bool = True

    def fingerprint(self, cases: Sequence[FaultCase]) -> dict:
        """Checkpoint identity: same fingerprint == resumable."""
        return {
            "version": CAMPAIGN_VERSION,
            "base_seed": self.base_seed,
            "accesses": self.accesses,
            "lines_per_way": self.lines_per_way,
            "deep_interval": self.deep_interval,
            "cases": sorted(case.key for case in cases),
        }


def build_cases(config: CampaignConfig) -> list:
    """The deterministic case roster for one campaign configuration.

    Array and policy fault kinds sweep every design; the serve-layer
    kind sweeps the zcache designs the shard can host. Locations and
    bits vary with the variant index so the sweep samples different
    lines and tag bits, and every case's seed derives from its key.
    """
    cases: list[FaultCase] = []
    kinds = ARRAY_FAULT_KINDS + POLICY_FAULT_KINDS
    for design in config.designs:
        for kind in kinds:
            cases.extend(_cases_for(config, design, kind, serve=False))
    if config.include_serve:
        for design in config.designs:
            if design in SERVE_DESIGNS:
                cases.extend(
                    _cases_for(
                        config, design, "drop-eviction-log", serve=True
                    )
                )
    return cases


def _cases_for(
    config: CampaignConfig, design: str, kind: str, serve: bool
) -> Iterable[FaultCase]:
    """All (trigger x variant) cases of one (design, kind) cell."""
    for trigger in config.triggers:
        at = max(0, min(config.accesses - 1, int(trigger * config.accesses)))
        for variant in range(config.variants):
            identity = f"{design}|{kind}|at{at}|v{variant}"
            yield FaultCase(
                design=design,
                kind=kind,
                at=at,
                seed=derive_job_seed(config.base_seed, identity) & 0xFFFFFFFF,
                accesses=config.accesses,
                lines_per_way=config.lines_per_way,
                way=variant,
                index=3 * variant + 1,
                bit=2 * variant + 1,
                deep_interval=config.deep_interval,
                serve=serve,
            )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CampaignReport:
    """Per-(design, kind) degradation table plus violation taxonomy."""

    #: (design, kind) -> {classification: count}
    cells: dict = field(default_factory=dict)
    #: (design, kind) -> summed |mpki delta| over silent outcomes
    drift: dict = field(default_factory=dict)
    #: violation kind (taxonomy) -> count over detected outcomes
    taxonomy: dict = field(default_factory=dict)
    #: detector name -> count over detected outcomes
    detectors: dict = field(default_factory=dict)

    def add(self, outcome: FaultOutcome) -> None:
        """Fold one classified case into the tables."""
        cell = self.cells.setdefault(
            (outcome.design, outcome.kind), dict.fromkeys(CLASSIFICATIONS, 0)
        )
        cell[outcome.classification] += 1
        if outcome.classification.startswith("silent"):
            key = (outcome.design, outcome.kind)
            self.drift[key] = self.drift.get(key, 0.0) + abs(
                outcome.mpki_delta
            )
        if outcome.classification == "detected":
            kind = outcome.detector_kind or "unclassified"
            self.taxonomy[kind] = self.taxonomy.get(kind, 0) + 1
            name = outcome.detector or "unknown"
            self.detectors[name] = self.detectors.get(name, 0) + 1

    def detection_rate(self, design: str, kind: str) -> float:
        """Detected fraction of one cell's cases (0.0 for empty cells)."""
        cell = self.cells.get((design, kind))
        if not cell:
            return 0.0
        total = sum(cell.values())
        return cell["detected"] / total if total else 0.0

    def mean_drift(self, design: str, kind: str) -> float:
        """Mean |MPKI delta| over one cell's silent outcomes."""
        cell = self.cells.get((design, kind))
        if not cell:
            return 0.0
        silent = cell["silent-wrong-victim"] + cell["silent-mpki-drift"]
        if not silent:
            return 0.0
        return self.drift.get((design, kind), 0.0) / silent

    def rows(self) -> list:
        """Table rows (dicts), sorted by design label then fault kind."""
        out = []
        for (design, kind), cell in sorted(self.cells.items()):
            total = sum(cell.values())
            out.append(
                {
                    "design": design,
                    "kind": kind,
                    "cases": total,
                    **cell,
                    "detection_rate": round(
                        self.detection_rate(design, kind), 4
                    ),
                    "mean_abs_mpki_drift": round(
                        self.mean_drift(design, kind), 4
                    ),
                }
            )
        return out

    def to_dict(self) -> dict:
        """JSON-safe payload (the BENCH_faults.json tables)."""
        return {
            "table": self.rows(),
            "taxonomy": dict(sorted(self.taxonomy.items())),
            "detectors": dict(sorted(self.detectors.items())),
        }

    def render(self) -> str:
        """Human-readable campaign table."""
        lines = [
            f"{'design':8s} {'fault kind':22s} {'cases':>5s} {'det':>4s} "
            f"{'crash':>5s} {'wrongv':>6s} {'drift':>5s} {'benign':>6s} "
            f"{'det-rate':>8s} {'|dMPKI|':>8s}"
        ]
        for row in self.rows():
            lines.append(
                f"{row['design']:8s} {row['kind']:22s} {row['cases']:5d} "
                f"{row['detected']:4d} {row['crash']:5d} "
                f"{row['silent-wrong-victim']:6d} "
                f"{row['silent-mpki-drift']:5d} {row['benign']:6d} "
                f"{row['detection_rate']:8.2f} "
                f"{row['mean_abs_mpki_drift']:8.2f}"
            )
        if self.taxonomy:
            parts = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.taxonomy.items())
            )
            lines.append(f"violation taxonomy: {parts}")
        return "\n".join(lines)


@dataclass(slots=True)
class CampaignOutcome:
    """Everything a campaign produced, plus how it got there."""

    #: case key -> FaultOutcome, in deterministic case order
    outcomes: dict = field(default_factory=dict)
    report: CampaignReport = field(default_factory=CampaignReport)
    #: cases restored from the checkpoint instead of recomputed
    restored: int = 0
    #: True when the worker pool died and cases fell back to the parent
    degraded: bool = False
    #: case key -> error string for cases that kept failing
    errors: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe payload: per-case outcomes plus the tables."""
        return {
            "cases": {
                key: outcome.to_dict()
                for key, outcome in self.outcomes.items()
            },
            "report": self.report.to_dict(),
            "restored": self.restored,
            "degraded": self.degraded,
            "errors": dict(self.errors),
        }


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def _case_worker(case: FaultCase) -> FaultOutcome:
    """Process-pool entry point: one golden + faulted replay pair."""
    return run_case(case)


def run_campaign(
    config: CampaignConfig,
    *,
    jobs: Optional[int] = None,
    checkpoint: Optional[str] = None,
    obs: Optional[ObsContext] = None,
    cases: Optional[Sequence[FaultCase]] = None,
) -> CampaignOutcome:
    """Run the fault campaign; bit-identical at any worker count.

    Parameters
    ----------
    jobs:
        Worker process count. ``1`` runs everything in-process;
        ``None`` uses the machine's available CPUs.
    checkpoint:
        Path of a JSON checkpoint. Finished cases found there (from a
        matching interrupted campaign) are restored, not recomputed.
    obs:
        Parent observability context: classification counters register
        under ``faults.*`` and its heartbeat reports progress.
    cases:
        Explicit case roster (defaults to :func:`build_cases`).
    """
    roster = list(cases) if cases is not None else build_cases(config)
    n_jobs = jobs if jobs is not None else default_jobs()
    heartbeat = obs.heartbeat if obs is not None else Heartbeat.from_env()
    outcome = CampaignOutcome()

    ckpt: Optional[SweepCheckpoint] = None
    restored: dict[str, dict] = {}
    if checkpoint is not None:
        ckpt = SweepCheckpoint(checkpoint, config.fingerprint(roster))
        restored = ckpt.load()
    todo: list[FaultCase] = []
    for case in roster:
        entry = restored.get(case.key)
        if entry is None:
            todo.append(case)
            continue
        _commit(outcome, FaultOutcome.from_dict(entry["result"]), obs)
        outcome.restored += 1
    total = len(roster)
    done = outcome.restored
    if outcome.restored:
        heartbeat.beat(
            f"faults: restored {outcome.restored} case(s) from checkpoint",
            done=done,
            total=total,
        )

    def run_serial(case: FaultCase, status: str) -> None:
        try:
            result = _case_worker(case)
        except Exception as exc:  # mark and continue: the campaign finishes
            outcome.errors[case.key] = f"{type(exc).__name__}: {exc}"
            return
        _commit(outcome, result, obs)
        if ckpt is not None:
            ckpt.record(case.key, status, result)

    if n_jobs <= 1 or len(todo) <= 1:
        for i, case in enumerate(todo):
            run_serial(case, "serial")
            heartbeat.beat(
                f"faults: {case.key} [serial]", done=done + i + 1, total=total
            )
        return outcome

    try:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures: dict[str, Future] = {
                case.key: pool.submit(_case_worker, case) for case in todo
            }
            for case in todo:
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        result = futures[case.key].result()
                    except BrokenProcessPool:
                        raise
                    except Exception:  # one retry, then parent fallback
                        if attempts > 1:
                            break
                        futures[case.key] = pool.submit(_case_worker, case)
                        continue
                    _commit(outcome, result, obs)
                    if ckpt is not None:
                        ckpt.record(case.key, "parallel", result)
                    done += 1
                    heartbeat.beat(
                        f"faults: {case.key} [parallel x{attempts}]",
                        done=done,
                        total=total,
                    )
                    break
    except BrokenProcessPool:
        outcome.degraded = True
    # Graceful degradation: anything the pool did not finish re-runs
    # in the parent, marked as such.
    for case in todo:
        if case.key in outcome.outcomes or case.key in outcome.errors:
            continue
        outcome.degraded = True
        run_serial(case, "serial")
        done += 1
        heartbeat.beat(
            f"faults: {case.key} [degraded-serial]", done=done, total=total
        )
    return outcome


def _commit(
    outcome: CampaignOutcome,
    result: FaultOutcome,
    obs: Optional[ObsContext],
) -> None:
    """Fold one classified case into the outcome (and the registry)."""
    outcome.outcomes[result.key] = result
    outcome.report.add(result)
    if obs is not None:
        scope = (
            f"faults.{sanitize_component(result.design)}."
            f"{sanitize_component(result.kind)}"
        )
        obs.metrics.scoped(scope).counter(result.classification).inc()


def write_campaign_json(outcome: CampaignOutcome, path: str) -> None:
    """Write the full campaign payload (sorted, reproducible)."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(outcome.to_dict(), f, indent=1, sort_keys=True)
