"""faultmin: minimal-fault search over plans (delta debugging + shrink).

Given a case whose plan produces an interesting classification
(anything but ``benign``), faultmin finds a *smaller* plan that still
produces the same classification on the same replay:

1. **ddmin** over the event list — classic delta debugging: try
   dropping chunks of events (halving granularity) while the verdict
   is preserved. Campaign cases carry one event, so this step mostly
   matters for multi-event plans (and proves the one event is load-
   bearing); its real work is in composed scenarios.
2. **Shrinking** of every surviving event's fields toward zero —
   trigger time first (the interesting part: *how early can the same
   fault land and still corrupt the same way?*), then the location
   hints ``way``/``index``/``bit``. Each field shrinks greedily by
   binary descent: try 0, then successive midpoints, keeping any
   candidate that preserves the verdict.

Every probe is one full golden+faulted replay pair, so probes are
cached by plan identity (plans are canonically ordered — see
:class:`~repro.faults.plan.FaultPlan`) and capped by a budget. The
result is a **replayable counterexample**: a JSON payload carrying the
replay configuration, the minimized plan and the expected verdict,
which :func:`replay_counterexample` re-runs and re-checks from the
payload alone.

The oracle is *classification equality* — not mere "still interesting"
— so a minimized ``detected`` case still trips the same class of
invariant and a minimized ``silent-wrong-victim`` case is still silent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.harness import (
    FaultCase,
    ReplayResult,
    classify,
    run_replay,
    run_serve_replay,
)
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "MinimalCounterexample",
    "Minimizer",
    "minimize_case",
    "replay_counterexample",
]


@dataclass(slots=True)
class MinimalCounterexample:
    """A minimized, self-contained, replayable fault scenario."""

    case: FaultCase
    plan: FaultPlan
    classification: str
    detector: Optional[str] = None
    detector_kind: Optional[str] = None
    #: events in the original plan vs. after minimization
    original_events: int = 0
    minimized_events: int = 0
    #: golden+faulted replay pairs spent (cache hits excluded)
    probes: int = 0
    #: minimization trace, one line per accepted reduction
    steps: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """The replayable JSON payload."""
        return {
            "case": self.case.to_dict(),
            "plan": self.plan.to_list(),
            "classification": self.classification,
            "detector": self.detector,
            "detector_kind": self.detector_kind,
            "original_events": self.original_events,
            "minimized_events": self.minimized_events,
            "probes": self.probes,
            "steps": list(self.steps),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MinimalCounterexample":
        """Inverse of :meth:`to_dict`."""
        return cls(
            case=FaultCase.from_dict(data["case"]),
            plan=FaultPlan.from_list(data["plan"]),
            classification=data["classification"],
            detector=data.get("detector"),
            detector_kind=data.get("detector_kind"),
            original_events=int(data.get("original_events", 0)),
            minimized_events=int(data.get("minimized_events", 0)),
            probes=int(data.get("probes", 0)),
            steps=list(data.get("steps", [])),
        )


class Minimizer:
    """One minimization run: fixed case, fixed golden, cached probes."""

    def __init__(self, case: FaultCase, *, budget: int = 200) -> None:
        self.case = case
        self.budget = budget
        self.probes = 0
        #: plan identity -> (verdict, detector, detector kind)
        self._cache: dict[str, tuple] = {}
        self._runner = run_serve_replay if case.serve else run_replay
        #: the golden replay, computed once and reused by every probe
        self.golden: ReplayResult = self._replay(None)

    def _replay(self, plan: Optional[FaultPlan]) -> ReplayResult:
        case = self.case
        return self._runner(
            case.design,
            seed=case.seed,
            accesses=case.accesses,
            lines_per_way=case.lines_per_way,
            plan=plan,
            deep_interval=case.deep_interval,
        )

    def probe(self, plan: FaultPlan) -> tuple:
        """``(verdict, detector, detector kind)`` of one candidate plan.

        Cached by canonical plan identity; raises once the replay
        budget is spent (cache hits are free).
        """
        key = json.dumps(plan.to_list(), sort_keys=True)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if self.probes >= self.budget:
            raise RuntimeError(
                f"faultmin probe budget exhausted ({self.budget})"
            )
        self.probes += 1
        faulted = self._replay(plan)
        info = (
            classify(faulted, self.golden),
            faulted.detector,
            faulted.detector_kind,
        )
        self._cache[key] = info
        return info

    def verdict(self, plan: FaultPlan) -> str:
        """Classification of one candidate plan (see :meth:`probe`)."""
        return self.probe(plan)[0]

    # -- phase 1: ddmin over the event list -----------------------------------
    def ddmin(self, plan: FaultPlan, target: str, steps: list) -> FaultPlan:
        """Minimal event subset preserving ``target`` (delta debugging)."""
        events = list(plan)
        chunks = 2
        while len(events) >= 2:
            size = max(1, len(events) // chunks)
            reduced = False
            start = 0
            while start < len(events):
                complement = events[:start] + events[start + size:]
                if not complement:
                    start += size
                    continue
                candidate = plan.subset(complement)
                if self.verdict(candidate) == target:
                    steps.append(
                        f"ddmin: {len(events)} -> {len(complement)} events"
                    )
                    events = complement
                    chunks = max(chunks - 1, 2)
                    reduced = True
                    break
                start += size
            if not reduced:
                if size <= 1:
                    break
                chunks = min(chunks * 2, len(events))
        return plan.subset(events)

    # -- phase 2: shrink event fields toward zero -----------------------------
    def shrink(self, plan: FaultPlan, target: str, steps: list) -> FaultPlan:
        """Greedily shrink ``at``/``way``/``index``/``bit`` toward 0."""
        events = list(plan)
        for i in range(len(events)):
            for fname in ("at", "way", "index", "bit"):
                events[i] = self._shrink_field(
                    events, i, fname, plan, target, steps
                )
        return plan.subset(events)

    def _shrink_field(
        self,
        events: list,
        i: int,
        fname: str,
        plan: FaultPlan,
        target: str,
        steps: list,
    ) -> FaultEvent:
        """Binary descent of one field of one event (verdict-preserving)."""
        current = events[i]
        value = getattr(current, fname)
        low = 0
        while value > low:
            # Candidates from most to least ambitious: 0 first, then
            # successive midpoints between the best known failure and
            # the current value.
            trial = low
            candidate = self._with_field(current, fname, trial)
            trial_events = events[:i] + [candidate] + events[i + 1:]
            if self.verdict(plan.subset(trial_events)) == target:
                steps.append(f"shrink: event {i} {fname} {value} -> {trial}")
                current = candidate
                value = trial
                events[i] = current
                continue
            # 0 failed: binary-search upward for the smallest keeper.
            low = trial + 1
            while low < value:
                mid = (low + value) // 2
                candidate = self._with_field(current, fname, mid)
                trial_events = events[:i] + [candidate] + events[i + 1:]
                if self.verdict(plan.subset(trial_events)) == target:
                    steps.append(
                        f"shrink: event {i} {fname} {value} -> {mid}"
                    )
                    current = candidate
                    value = mid
                    events[i] = current
                else:
                    low = mid + 1
            break
        return current

    @staticmethod
    def _with_field(event: FaultEvent, fname: str, value: int) -> FaultEvent:
        data = event.to_dict()
        data[fname] = value
        return FaultEvent.from_dict(data)


def minimize_case(
    case: FaultCase,
    plan: Optional[FaultPlan] = None,
    *,
    budget: int = 200,
) -> MinimalCounterexample:
    """Minimize one case's plan; returns a replayable counterexample.

    ``plan`` defaults to the case's own single-event plan. A case whose
    baseline verdict is ``benign`` has nothing to minimize and comes
    back unchanged (classification ``benign``, zero steps).
    """
    baseline = plan if plan is not None else case.plan()
    mini = Minimizer(case, budget=budget)
    target = mini.verdict(baseline)
    if target == "benign":
        return MinimalCounterexample(
            case=case,
            plan=baseline,
            classification=target,
            original_events=len(baseline),
            minimized_events=len(baseline),
            probes=mini.probes,
        )
    steps: list[str] = []
    reduced = mini.ddmin(baseline, target, steps)
    reduced = mini.shrink(reduced, target, steps)
    verdict, detector, detector_kind = mini.probe(reduced)
    assert verdict == target, "minimization must preserve the verdict"
    return MinimalCounterexample(
        case=case,
        plan=reduced,
        classification=target,
        detector=detector,
        detector_kind=detector_kind,
        original_events=len(baseline),
        minimized_events=len(reduced),
        probes=mini.probes,
        steps=steps,
    )


def replay_counterexample(data: dict) -> dict:
    """Re-run a counterexample payload and re-check its verdict.

    Returns ``{"expected": ..., "observed": ..., "match": bool,
    "detector": ...}`` — the CLI's ``--replay`` path prints this, and
    the test suite asserts ``match``.
    """
    ce = MinimalCounterexample.from_dict(data)
    runner = run_serve_replay if ce.case.serve else run_replay
    golden = runner(
        ce.case.design,
        seed=ce.case.seed,
        accesses=ce.case.accesses,
        lines_per_way=ce.case.lines_per_way,
        plan=None,
        deep_interval=ce.case.deep_interval,
    )
    faulted = runner(
        ce.case.design,
        seed=ce.case.seed,
        accesses=ce.case.accesses,
        lines_per_way=ce.case.lines_per_way,
        plan=ce.plan,
        deep_interval=ce.case.deep_interval,
    )
    observed = classify(faulted, golden)
    return {
        "expected": ce.classification,
        "observed": observed,
        "match": observed == ce.classification,
        "detector": faulted.detector,
        "detector_kind": faulted.detector_kind,
    }
