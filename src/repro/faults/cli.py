"""``zcache-repro faults``: the resilience campaign from the shell.

Three modes, composable into one invocation:

``--campaign``
    Sweep fault kind x trigger time x location across the paper's
    designs (parallel, checkpointed, bit-identical at any ``--jobs``),
    print the per-design detection-rate / MPKI-drift table, and
    optionally persist the full payload with ``--json``.
``--minimize``
    Run faultmin on the campaign's interesting outcomes (one
    representative case per (design, kind) cell whose verdict was not
    benign), emitting replayable minimal counterexamples.
``--replay PATH``
    Re-run a previously emitted counterexample file and verify its
    recorded verdict still reproduces — exit 1 if it does not.
"""

from __future__ import annotations

import argparse
import json

from repro.obs import Heartbeat, ObsContext

__all__ = ["run_faults_cli"]


def run_faults_cli(argv: list) -> int:
    """Entry point for the ``faults`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="zcache-repro faults",
        description="Fault-injection resilience campaign: deterministic "
        "corruption of cache machinery under the ZSpec sanitizer, with "
        "minimal-fault search over the interesting outcomes.",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="run the full fault sweep (designs x kinds x triggers)",
    )
    parser.add_argument(
        "--minimize", action="store_true",
        help="faultmin the interesting campaign outcomes into "
        "replayable minimal counterexamples",
    )
    parser.add_argument(
        "--replay", type=str, default=None, metavar="PATH",
        help="re-run a counterexample JSON file and verify its verdict",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: available CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="JSON checkpoint: resume an interrupted campaign from here",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--accesses", type=int, default=2000,
        help="replay length per case (default 2000)",
    )
    parser.add_argument(
        "--lines-per-way", type=int, default=64,
        help="array lines per way (default 64)",
    )
    parser.add_argument(
        "--triggers", type=str, default="0.25,0.5,0.85",
        help="comma-separated trigger fractions of the replay length",
    )
    parser.add_argument(
        "--variants", type=int, default=2,
        help="location/bit variants per (design, kind, trigger)",
    )
    parser.add_argument(
        "--budget", type=int, default=200,
        help="faultmin probe budget per case (default 200)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the campaign payload (and counterexamples) as JSON",
    )
    parser.add_argument(
        "--progress-log", type=str, default=None, metavar="PATH",
        help="append heartbeat progress lines to this file",
    )
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args.replay)
    if not args.campaign and not args.minimize:
        parser.error("choose at least one of --campaign/--minimize/--replay")

    from repro.faults.campaign import (
        CampaignConfig,
        build_cases,
        run_campaign,
    )

    config = CampaignConfig(
        base_seed=args.seed,
        accesses=args.accesses,
        lines_per_way=args.lines_per_way,
        triggers=tuple(
            float(part) for part in args.triggers.split(",") if part
        ),
        variants=args.variants,
    )
    heartbeat = (
        Heartbeat(path=args.progress_log)
        if args.progress_log
        else Heartbeat.from_env()
    )
    obs = ObsContext(heartbeat=heartbeat)
    outcome = run_campaign(
        config, jobs=args.jobs, checkpoint=args.checkpoint, obs=obs
    )
    print(
        f"faults: {len(outcome.outcomes)} cases "
        f"({outcome.restored} restored, {len(outcome.errors)} failed"
        f"{', degraded to serial' if outcome.degraded else ''})"
    )
    print(outcome.report.render())
    for key, error in outcome.errors.items():
        print(f"FAILED {key}: {error}")

    payload = {"campaign": outcome.to_dict()} if args.campaign else {}

    if args.minimize:
        payload["counterexamples"] = _minimize(
            outcome, build_cases(config), budget=args.budget
        )

    if args.json and payload:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
        print(f"JSON written to {args.json}")
    return 1 if outcome.errors else 0


def _minimize(outcome, cases, *, budget: int) -> list:
    """faultmin one representative interesting case per (design, kind)."""
    from repro.faults.faultmin import minimize_case

    by_key = {case.key: case for case in cases}
    picked: dict[tuple, object] = {}
    for key, result in outcome.outcomes.items():
        if result.classification == "benign" or key not in by_key:
            continue
        picked.setdefault((result.design, result.kind), by_key[key])
    counterexamples = []
    for (design, kind), case in sorted(picked.items()):
        ce = minimize_case(case, budget=budget)
        counterexamples.append(ce.to_dict())
        print(
            f"faultmin: {design} {kind}: {ce.original_events} -> "
            f"{ce.minimized_events} event(s), {ce.probes} probes, "
            f"verdict {ce.classification}"
            + (f" ({ce.detector})" if ce.detector else "")
        )
    return counterexamples


def _replay(path: str) -> int:
    """Re-run one counterexample file (or a ``counterexamples`` list)."""
    from repro.faults.faultmin import replay_counterexample

    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if isinstance(data, dict) and "counterexamples" in data:
        entries = data["counterexamples"]
    elif isinstance(data, list):
        entries = data
    else:
        entries = [data]
    failures = 0
    for i, entry in enumerate(entries):
        report = replay_counterexample(entry)
        status = "ok" if report["match"] else "MISMATCH"
        print(
            f"replay[{i}]: expected {report['expected']}, "
            f"observed {report['observed']} [{status}]"
            + (f" det={report['detector']}" if report["detector"] else "")
        )
        if not report["match"]:
            failures += 1
    return 1 if failures else 0
