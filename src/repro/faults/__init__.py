"""ZFault: deterministic fault injection, detection and minimization.

The resilience counterpart to the correctness stack: where ZSpec
*defines* the invariants and ZSan/ZCheck *verify* them on healthy
runs, ZFault deliberately corrupts the machinery — tag bits, walk
candidates, relocations, policy stamps, serve-layer eviction records —
and measures which corruptions the detectors actually catch, which
crash, and which silently change victims or miss rates.

Layers (each usable alone):

- :mod:`repro.faults.plan` — fault plans as serializable data;
- :mod:`repro.faults.inject` — seeded injectors riding the existing
  ``wrap_array``/``wrap_policy`` hooks (``faults=None`` stays
  bit-identical);
- :mod:`repro.faults.harness` — golden-vs-faulted replay and the
  five-way outcome classifier;
- :mod:`repro.faults.campaign` — the parallel, checkpointed sweep and
  its degradation-metrics report;
- :mod:`repro.faults.faultmin` — delta-debugging minimal-fault search
  emitting replayable counterexamples;
- :mod:`repro.faults.cli` — ``zcache-repro faults``.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignOutcome,
    CampaignReport,
    build_cases,
    run_campaign,
)
from repro.faults.faultmin import (
    MinimalCounterexample,
    minimize_case,
    replay_counterexample,
)
from repro.faults.harness import (
    CLASSIFICATIONS,
    DESIGNS,
    SERVE_DESIGNS,
    FaultCase,
    FaultOutcome,
    ReplayResult,
    classify,
    run_case,
    run_replay,
    run_serve_replay,
)
from repro.faults.inject import (
    FaultInjector,
    FaultyArray,
    LogDroppingPolicy,
    faulty_wrapper,
)
from repro.faults.plan import (
    ARRAY_FAULT_KINDS,
    FAULT_KINDS,
    POLICY_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "ARRAY_FAULT_KINDS",
    "CLASSIFICATIONS",
    "DESIGNS",
    "FAULT_KINDS",
    "POLICY_FAULT_KINDS",
    "SERVE_DESIGNS",
    "SERVE_FAULT_KINDS",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignReport",
    "FaultCase",
    "FaultEvent",
    "FaultInjector",
    "FaultOutcome",
    "FaultPlan",
    "FaultyArray",
    "LogDroppingPolicy",
    "MinimalCounterexample",
    "ReplayResult",
    "build_cases",
    "classify",
    "faulty_wrapper",
    "minimize_case",
    "replay_counterexample",
    "run_campaign",
    "run_case",
    "run_replay",
    "run_serve_replay",
]
