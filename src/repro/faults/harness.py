"""Single-replay harness: run one design under one fault plan, classify.

One campaign case = one deterministic replay of a seeded address
stream against one design, with a :class:`~repro.faults.plan.FaultPlan`
injected, under the full ZSpec sanitizer — plus the matching *golden*
replay (``plan=None``, same seed, same stream) the faulted run is
judged against. The classifier's verdicts:

``detected``
    A registered invariant fired (:class:`InvariantViolation`), or the
    serve shard's payload/residency consistency check tripped. The
    detector's name and violation kind are recorded for the taxonomy
    table.
``crash``
    The corruption escaped the sanitizer but crashed the machinery
    (e.g. a flipped tag reaching the policy as an unknown block) —
    fail-stop, but not *detected by an invariant*.
``silent-wrong-victim``
    No detector fired, but the eviction sequence diverged from golden:
    the design silently evicted different blocks.
``silent-mpki-drift``
    Victims matched but the miss count moved — silent performance
    corruption (MPKI is misses per kilo-access here; the stream is the
    instruction proxy).
``benign``
    Bit-identical to golden. The fault fizzled (struck dead state, was
    overwritten, or targeted machinery the design does not have —
    relocation faults on a set-associative array cannot fire at all).

The designs swept are the paper's cast: Z4/16 and Z4/52 (4-way
zcaches, 2- and 3-level walks), SA-4 (4-way set-associative) and SK-4
(skew-associative = one-level zcache).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.analysis.sanitizer import InvariantViolation, SanitizedArray
from repro.core import Cache, SetAssociativeArray, SkewAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.faults.inject import FaultInjector, FaultyArray, LogDroppingPolicy
from repro.faults.plan import FaultPlan
from repro.replacement import make_policy
from repro.serve.shard import EvictionLog

__all__ = [
    "CLASSIFICATIONS",
    "DESIGNS",
    "SERVE_DESIGNS",
    "FaultCase",
    "FaultOutcome",
    "ReplayResult",
    "classify",
    "run_case",
    "run_replay",
    "run_serve_replay",
]

#: classifier verdicts, strongest first
CLASSIFICATIONS = (
    "detected",
    "crash",
    "silent-wrong-victim",
    "silent-mpki-drift",
    "benign",
)

#: design label -> array-builder arguments (the campaign's cast)
DESIGNS = {
    "Z4/16": {"kind": "z", "ways": 4, "levels": 2},
    "Z4/52": {"kind": "z", "ways": 4, "levels": 3},
    "SA-4": {"kind": "sa", "ways": 4},
    "SK-4": {"kind": "skew", "ways": 4},
}

#: designs the serve-layer (shard) replay can host: the shard is built
#: on TwoPhaseZCache, which requires a zcache array
SERVE_DESIGNS = ("Z4/16", "Z4/52")


def build_array(design: str, lines_per_way: int, seed: int):
    """Construct the design's array (hash functions seeded per case)."""
    spec = DESIGNS[design]
    ways = spec["ways"]
    if spec["kind"] == "z":
        return ZCacheArray(
            ways, lines_per_way, levels=spec["levels"], hash_seed=seed
        )
    if spec["kind"] == "skew":
        return SkewAssociativeArray(ways, lines_per_way, hash_seed=seed)
    return SetAssociativeArray(ways, lines_per_way, hash_seed=seed)


@dataclass(slots=True)
class ReplayResult:
    """Everything one replay produced that classification needs."""

    accesses: int
    completed: int
    misses: int
    hits: int
    evictions: tuple = ()
    #: registry name of the invariant that fired (or pseudo-detector
    #: name for serve/crash outcomes); None when the run finished clean
    detector: Optional[str] = None
    #: violation kind for the taxonomy table (None when undetected)
    detector_kind: Optional[str] = None
    detail: str = ""
    crashed: bool = False

    @property
    def mpki(self) -> float:
        """Misses per kilo-access (the stream is the instruction proxy)."""
        if self.completed == 0:
            return 0.0
        return 1000.0 * self.misses / self.completed


@dataclass(frozen=True, slots=True)
class FaultCase:
    """One campaign unit: a design, a plan, and a replay configuration."""

    design: str
    kind: str
    at: int
    seed: int
    accesses: int = 2000
    lines_per_way: int = 64
    way: int = 0
    index: int = 0
    bit: int = 0
    deep_interval: int = 16
    serve: bool = False

    @property
    def key(self) -> str:
        """Stable identity for checkpointing and result lookup."""
        return (
            f"{self.design}|{self.kind}|at{self.at}"
            f"|w{self.way}i{self.index}b{self.bit}|s{self.seed:x}"
        )

    def plan(self) -> FaultPlan:
        """The one-event plan this case injects."""
        return FaultPlan.single(
            self.kind, self.at, way=self.way, index=self.index, bit=self.bit
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (counterexample replay files)."""
        return {
            "design": self.design,
            "kind": self.kind,
            "at": self.at,
            "seed": self.seed,
            "accesses": self.accesses,
            "lines_per_way": self.lines_per_way,
            "way": self.way,
            "index": self.index,
            "bit": self.bit,
            "deep_interval": self.deep_interval,
            "serve": self.serve,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCase":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: data[k] for k in data})


@dataclass(slots=True)
class FaultOutcome:
    """Classified result of one case (what the checkpoint persists)."""

    key: str
    design: str
    kind: str
    classification: str
    detector: Optional[str] = None
    detector_kind: Optional[str] = None
    detail: str = ""
    detected_at: int = -1
    diverged_at: int = -1
    mpki_delta: float = 0.0
    golden_misses: int = 0
    faulted_misses: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation (checkpoint / BENCH payloads)."""
        return {
            "key": self.key,
            "design": self.design,
            "kind": self.kind,
            "classification": self.classification,
            "detector": self.detector,
            "detector_kind": self.detector_kind,
            "detail": self.detail,
            "detected_at": self.detected_at,
            "diverged_at": self.diverged_at,
            "mpki_delta": self.mpki_delta,
            "golden_misses": self.golden_misses,
            "faulted_misses": self.faulted_misses,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultOutcome":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: data[k] for k in data})


# ---------------------------------------------------------------------------
# Replays
# ---------------------------------------------------------------------------


def run_replay(
    design: str,
    *,
    seed: int,
    accesses: int,
    lines_per_way: int = 64,
    plan: Optional[FaultPlan] = None,
    deep_interval: int = 16,
) -> ReplayResult:
    """One sanitized replay of the case's address stream (array layer).

    ``plan=None`` is the golden path: no injector, no
    :class:`FaultyArray` in the stack — bit-identical to a plain
    sanitized run (the wrappers are pure proxies either way; a test
    pins the equivalence against an *empty* plan).
    """
    array = build_array(design, lines_per_way, seed)
    injector = FaultInjector(plan) if plan is not None else None
    target = array if injector is None else FaultyArray(array, injector)
    sanitized = SanitizedArray(
        target, seed=seed, deep_check_interval=deep_interval
    )
    log = EvictionLog(make_policy("lru"))
    cache = Cache(sanitized, log)
    rng = random.Random(seed)
    footprint = 2 * array.num_blocks
    completed = 0
    detector = detector_kind = None
    detail = ""
    crashed = False
    try:
        for i in range(accesses):
            if injector is not None:
                injector.advance(array, log.inner)
            cache.access(rng.randrange(footprint))
            completed = i + 1
        sanitized.final_check()
    except InvariantViolation as exc:
        detector = exc.invariant or "unknown-invariant"
        detector_kind = exc.kind
        detail = exc.detail
    except Exception as exc:  # corrupted state crashing the machinery
        detector = f"crash:{type(exc).__name__}"
        detail = str(exc)
        crashed = True
    counters = cache.stats.counters()
    return ReplayResult(
        accesses=accesses,
        completed=completed,
        misses=counters["misses"].value,
        hits=counters["hits"].value,
        evictions=tuple(log.evicted),
        detector=detector,
        detector_kind=detector_kind,
        detail=detail,
        crashed=crashed,
    )


def run_serve_replay(
    design: str,
    *,
    seed: int,
    accesses: int,
    lines_per_way: int = 64,
    plan: Optional[FaultPlan] = None,
    deep_interval: int = 16,
    consistency_interval: int = 64,
) -> ReplayResult:
    """One single-threaded shard replay (serve layer).

    Drives ``put``/``get`` traffic through a
    :class:`~repro.serve.shard.CacheShard` whose array is sanitized and
    whose eviction log is wrapped by :class:`LogDroppingPolicy` when a
    plan is given. The shard's payload/residency consistency check runs
    every ``consistency_interval`` operations and once at the end — the
    serve layer's deep scan.
    """
    from repro.serve.shard import MISS, CacheShard

    spec = DESIGNS[design]
    if spec["kind"] != "z":
        raise ValueError(f"serve replay requires a zcache design, got {design}")
    injector = FaultInjector(plan) if plan is not None else None
    sanitizers: list[SanitizedArray] = []

    def wrap_array(array):
        wrapped = SanitizedArray(
            array, seed=seed, deep_check_interval=deep_interval
        )
        sanitizers.append(wrapped)
        return wrapped

    def wrap_policy(log):
        return LogDroppingPolicy(log, injector)

    shard = CacheShard(
        num_ways=spec["ways"],
        lines_per_way=lines_per_way,
        levels=spec["levels"],
        hash_seed=seed,
        policy="lru",
        wrap_array=wrap_array,
        wrap_policy=wrap_policy if injector is not None else None,
    )
    rng = random.Random(seed)
    footprint = 2 * spec["ways"] * lines_per_way
    completed = 0
    read_hits = 0
    detector = detector_kind = None
    detail = ""
    crashed = False
    try:
        for i in range(accesses):
            if injector is not None:
                injector.advance()
            address = rng.randrange(footprint)
            if rng.random() < 0.6:
                shard.put(address, address, ("v", address))
            elif shard.get(address) is not MISS:
                read_hits += 1
            completed = i + 1
            if completed % consistency_interval == 0:
                shard.check_consistency()
        shard.check_consistency()
        for sanitizer in sanitizers:
            sanitizer.final_check()
    except InvariantViolation as exc:
        detector = exc.invariant or "unknown-invariant"
        detector_kind = exc.kind
        detail = exc.detail
    except AssertionError as exc:
        # The shard's own consistency contract: payload store and array
        # residency must agree. Not a ZSpec invariant — the serve
        # layer's detector.
        detector = "shard-consistency"
        detector_kind = "payload-desync"
        detail = str(exc)
    except Exception as exc:
        detector = f"crash:{type(exc).__name__}"
        detail = str(exc)
        crashed = True
    counters = shard.cache.stats.counters()
    evictions = list(getattr(shard.policy_log, "evicted", ()))
    return ReplayResult(
        accesses=accesses,
        completed=completed,
        misses=counters["misses"].value,
        hits=counters["hits"].value + read_hits,
        evictions=tuple(evictions),
        detector=detector,
        detector_kind=detector_kind,
        detail=detail,
        crashed=crashed,
    )


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def classify(faulted: ReplayResult, golden: ReplayResult) -> str:
    """Verdict for one faulted replay against its golden twin."""
    if faulted.crashed:
        return "crash"
    if faulted.detector is not None:
        return "detected"
    if faulted.evictions != golden.evictions:
        return "silent-wrong-victim"
    if faulted.misses != golden.misses or faulted.hits != golden.hits:
        return "silent-mpki-drift"
    return "benign"


def _first_divergence(faulted: tuple, golden: tuple) -> int:
    """Index of the first differing eviction (-1 when identical)."""
    for i, (a, b) in enumerate(zip(faulted, golden)):
        if a != b:
            return i
    if len(faulted) != len(golden):
        return min(len(faulted), len(golden))
    return -1


def run_case(case: FaultCase) -> FaultOutcome:
    """Run one campaign case: golden replay, faulted replay, classify."""
    runner = run_serve_replay if case.serve else run_replay
    golden = runner(
        case.design,
        seed=case.seed,
        accesses=case.accesses,
        lines_per_way=case.lines_per_way,
        plan=None,
        deep_interval=case.deep_interval,
    )
    faulted = runner(
        case.design,
        seed=case.seed,
        accesses=case.accesses,
        lines_per_way=case.lines_per_way,
        plan=case.plan(),
        deep_interval=case.deep_interval,
    )
    verdict = classify(faulted, golden)
    return FaultOutcome(
        key=case.key,
        design=case.design,
        kind=case.kind,
        classification=verdict,
        detector=faulted.detector,
        detector_kind=faulted.detector_kind,
        detail=faulted.detail,
        detected_at=faulted.completed if faulted.detector else -1,
        diverged_at=_first_divergence(faulted.evictions, golden.evictions),
        mpki_delta=faulted.mpki - golden.mpki,
        golden_misses=golden.misses,
        faulted_misses=faulted.misses,
    )
