"""The CMP simulator: cores, L1s, directory, banked L2, memory.

Timing model (paper Table I): in-order cores retire one instruction per
cycle except on memory accesses; an L1 hit costs the instruction's own
cycle; an L1 miss stalls for the L1-to-L2-bank latency plus the bank's
hit latency, and an L2 miss additionally stalls for the memory zero-load
latency plus any bandwidth queueing at its memory controller. The
replacement walk of a zcache happens off the critical path while the
miss is outstanding (Section III), so it adds no stall — only tag-array
bandwidth and energy, which the statistics capture.

``CMPSimulator`` is execution-driven (inclusion victims invalidate L1
copies and change the future L1 stream). ``TraceDrivenRunner`` captures
the L1-filtered stream once and replays it against many L2 designs —
required for OPT, and an order of magnitude faster for design sweeps.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterator, Optional

from repro.core import Cache, SetAssociativeArray
from repro.energy.cachecost import CacheCostModel
from repro.obs import NULL_SPANS, ObsContext
from repro.replacement import LRU
from repro.sim.config import CMPConfig
from repro.sim.directory import Directory
from repro.sim.l2 import BankedL2, bank_index


@dataclass
class CMPResult:
    """Everything the experiments need from one simulation."""

    label: str
    num_cores: int
    instructions: list[int]
    cycles: list[int]
    l1_accesses: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    l2_accesses: int
    l2_writebacks: int
    walk_tag_reads: int
    relocations: int
    bank_accesses: list[int]
    coherence_invalidations: int
    upgrades: int
    l2_bank_latency: int
    eviction_priorities: list[float] = field(default_factory=list)
    #: total demand-access delay from bank-port contention (only
    #: non-zero when cfg.bank_queueing is on)
    bank_queueing_cycles: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    @property
    def total_cycles(self) -> int:
        """Wall-clock cycles: the slowest core defines the run length."""
        return max(self.cycles) if self.cycles else 0

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs (multiprogrammed throughput metric)."""
        return sum(
            i / c for i, c in zip(self.instructions, self.cycles) if c > 0
        )

    @property
    def l2_mpki(self) -> float:
        """L2 misses per thousand instructions."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.total_instructions

    @property
    def l1_mpki(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.l1_misses / self.total_instructions

    def tag_load_per_bank_cycle(self) -> float:
        """Tag-array accesses per bank per cycle (Section VI-D metric)."""
        if self.total_cycles == 0:
            return 0.0
        total_tag = self.l2_accesses + self.walk_tag_reads
        return total_tag / len(self.bank_accesses) / self.total_cycles

    def to_dict(self) -> dict:
        """JSON-serialisable form (checkpoint files, worker results)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CMPResult":
        """Rebuild a result from :meth:`to_dict` output (JSON-safe)."""
        return cls(**data)


class _MemoryChannel:
    """Bandwidth queueing at the memory controllers.

    Each controller serialises 64 B line transfers; a miss arriving at
    (core-local) time t starts service at max(t, controller-free time).
    Core clocks drift apart, so this is an approximation of global time
    — adequate because queueing only matters under sustained load, when
    clocks advance together.
    """

    def __init__(self, cfg: CMPConfig) -> None:
        self.cfg = cfg
        self._free = [0.0] * cfg.num_mcs

    def mc_for(self, address: int) -> int:
        return (address >> 4) % self.cfg.num_mcs

    def demand(self, address: int, now: float) -> float:
        """Queueing delay (cycles beyond zero-load latency) for a miss."""
        mc = self.mc_for(address)
        start = max(now, self._free[mc])
        self._free[mc] = start + self.cfg.line_transfer_cycles
        return start - now

    def writeback(self, address: int, now: float) -> None:
        """Writebacks consume bandwidth but do not stall the core."""
        mc = self.mc_for(address)
        start = max(now, self._free[mc])
        self._free[mc] = start + self.cfg.line_transfer_cycles


class _BankPorts:
    """Optional L2 bank-port contention (cfg.bank_queueing).

    Each bank serves one request per cycle; a zcache miss additionally
    occupies its bank's tag port for the walk's duration
    (ceil(reads/ways) cycles, since each way's tag array is a separate
    port). Demand accesses queue behind that. This is the pressure the
    paper's early-stop knob (`candidate_limit`) exists to relieve.
    """

    def __init__(self, cfg: CMPConfig) -> None:
        self.enabled = cfg.bank_queueing
        self.ways = cfg.l2_design.ways
        self._free = [0.0] * cfg.l2_banks
        self.queueing_cycles = 0

    def demand(self, bank: int, now: float) -> int:
        """Delay (cycles) before the bank can serve this access."""
        if not self.enabled:
            return 0
        start = max(now, self._free[bank])
        self._free[bank] = start + 1.0
        delay = int(start - now)
        self.queueing_cycles += delay
        return delay

    def walk(self, bank: int, now: float, tag_reads: int) -> None:
        """A replacement walk occupies the bank's tag port (no stall)."""
        if not self.enabled or tag_reads <= 0:
            return
        duration = -(-tag_reads // self.ways)  # ceil
        start = max(now, self._free[bank])
        self._free[bank] = start + duration


def _build_l1(cfg: CMPConfig, obs: Optional[ObsContext] = None) -> Cache:
    return Cache(
        SetAssociativeArray(cfg.l1_ways, cfg.l1_blocks // cfg.l1_ways),
        LRU(),
        name="L1",
        obs=obs,
    )


def _bank_latency(cfg: CMPConfig) -> int:
    """L2 bank hit latency from the analytical array model."""
    design = cfg.l2_design
    bank_bytes = cfg.bank_blocks * cfg.line_bytes
    # The latency model is calibrated at 1 MB banks; scaled experiments
    # use the paper-size bank for latency so design comparisons see the
    # published 6-11 cycle spread rather than an artifact of scaling.
    nominal = max(bank_bytes, 1 << 20)
    cost = CacheCostModel(
        nominal,
        design.ways,
        levels=design.levels if design.kind == "z" else None,
        parallel_lookup=design.parallel_lookup,
    )
    return cost.hit_latency_cycles()


class CMPSimulator:
    """Execution-driven whole-system simulation."""

    def __init__(
        self,
        cfg: CMPConfig,
        workload,
        instructions_per_core: int = 100_000,
        seed: int = 0,
        policy_wrapper=None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if cfg.l2_design.policy == "opt":
            raise ValueError(
                "OPT needs a captured future trace; use TraceDrivenRunner"
            )
        self.cfg = cfg
        self.workload = workload
        self.instructions_per_core = instructions_per_core
        self.seed = seed
        self.policy_wrapper = policy_wrapper
        self.obs = obs

    def run(self) -> CMPResult:
        """Simulate until every core retires its instruction budget."""
        cfg = self.cfg
        obs = self.obs
        l1s = [
            _build_l1(
                cfg,
                obs.scoped(f"core{c}.l1") if obs is not None else None,
            )
            for c in range(cfg.num_cores)
        ]
        l2 = BankedL2(
            cfg,
            policy_wrapper=self.policy_wrapper,
            obs=obs.scoped("l2") if obs is not None else None,
        )
        directory = Directory(
            cfg.num_cores,
            obs=obs.scoped("directory") if obs is not None else None,
        )
        channel = _MemoryChannel(cfg)
        ports = _BankPorts(cfg)
        bank_latency = _bank_latency(cfg)
        streams = [
            self.workload.core_stream(
                c, cfg.l2_blocks, seed=self.seed, num_cores=cfg.num_cores
            )
            for c in range(cfg.num_cores)
        ]
        instructions = [0] * cfg.num_cores
        cycles = [0] * cfg.num_cores
        active = set(range(cfg.num_cores))

        def l1_invalidate(core: int, address: int) -> None:
            dirty = l1s[core].invalidate(address)
            directory.l1_eviction(address, core)
            if dirty:
                l2.writeback(address)

        while active:
            for core in sorted(active):
                acc = next(streams[core])
                instructions[core] += acc.gap + 1
                cycles[core] += acc.gap + 1
                stall = 0
                l1 = l1s[core]
                was_hit = l1.array.lookup(acc.address) is not None
                if was_hit and acc.is_write and directory.is_shared(acc.address):
                    # Write hit to a shared line: upgrade via the L2 bank.
                    for victim_core in directory.upgrade(acc.address, core):
                        l1_invalidate(victim_core, acc.address)
                    bank = l2.bank_for(acc.address)
                    stall += cfg.l1_to_bank_latency(core, bank) + bank_latency
                result = l1.access(acc.address, acc.is_write)
                if result.evicted is not None:
                    directory.l1_eviction(result.evicted, core)
                    if result.writeback:
                        l2.writeback(result.evicted)
                if not result.hit:
                    bank = l2.bank_for(acc.address)
                    stall += cfg.l1_to_bank_latency(core, bank) + bank_latency
                    stall += ports.demand(bank, cycles[core] + stall)
                    walk_reads_before = l2.walk_tag_reads
                    outcome = l2.access(acc.address, acc.is_write)
                    if not outcome.hit:
                        ports.walk(
                            bank,
                            cycles[core] + stall,
                            l2.walk_tag_reads - walk_reads_before,
                        )
                        stall += cfg.mem_latency
                        # The miss reaches the controller after the L2
                        # round-trip and zero-load latency already in
                        # `stall` — the same post-latency timestamp
                        # TraceDrivenRunner.replay uses. Passing the
                        # pre-stall `cycles[core]` here overstated
                        # queueing relative to trace-driven runs.
                        stall += int(
                            channel.demand(acc.address, cycles[core] + stall)
                        )
                        if outcome.evicted is not None:
                            # Inclusion: kill the victims' L1 copies.
                            for victim_core in directory.inclusion_invalidate(
                                outcome.evicted
                            ):
                                l1_invalidate(victim_core, outcome.evicted)
                        if outcome.writeback:
                            channel.writeback(
                                outcome.evicted, cycles[core] + stall
                            )
                    for victim_core in directory.fill(
                        acc.address, core, acc.is_write
                    ):
                        l1_invalidate(victim_core, acc.address)
                cycles[core] += stall
                if instructions[core] >= self.instructions_per_core:
                    active.discard(core)

        return self._result(cfg, l1s, l2, directory, instructions, cycles,
                            bank_latency, ports.queueing_cycles)

    @staticmethod
    def _result(cfg, l1s, l2, directory, instructions, cycles, bank_latency,
                bank_queueing_cycles=0):
        priorities: list[float] = []
        for bank in l2.banks:
            if hasattr(bank.policy, "priorities"):
                priorities.extend(bank.policy.priorities)
        return CMPResult(
            label=cfg.l2_design.label(),
            num_cores=cfg.num_cores,
            instructions=instructions,
            cycles=cycles,
            l1_accesses=sum(c.stats.accesses for c in l1s),
            l1_misses=sum(c.stats.misses for c in l1s),
            l2_hits=l2.hits,
            l2_misses=l2.misses,
            l2_accesses=l2.accesses + l2.writeback_hits + l2.writeback_misses,
            l2_writebacks=l2.writebacks_to_memory,
            walk_tag_reads=l2.walk_tag_reads,
            relocations=l2.relocations,
            bank_accesses=list(l2.bank_accesses),
            coherence_invalidations=directory.stats.invalidations_sent,
            upgrades=directory.stats.upgrades,
            l2_bank_latency=bank_latency,
            eviction_priorities=priorities,
            bank_queueing_cycles=bank_queueing_cycles,
        )


# ---------------------------------------------------------------------------
# Trace-driven mode
# ---------------------------------------------------------------------------

#: event kinds in a captured trace
MISS, WRITEBACK, UPGRADE = 0, 1, 2


@dataclass
class CapturedTrace:
    """The L1-filtered stream and everything needed to replay it."""

    events: list  # (kind, core, address, is_write, work_cycles)
    instructions: list[int]
    l1_accesses: int
    l1_misses: int
    upgrades: int
    coherence_invalidations: int

    def bank_demand_traces(self, num_banks: int) -> list[list[int]]:
        """Per-bank demand-address sequences (the OPT future traces).

        Uses the same :func:`~repro.sim.l2.bank_index` mapping as
        :class:`~repro.sim.l2.BankedL2`, so OPT's future traces can
        never drift from the banks the demand accesses actually reach.
        """
        traces: list[list[int]] = [[] for _ in range(num_banks)]
        for kind, _core, address, _w, _work in self.events:
            if kind == MISS:
                traces[bank_index(address, num_banks)].append(address)
        return traces


class TraceDrivenRunner:
    """Capture the L2-level stream once; replay it per design.

    The capture pass runs cores + L1s + directory with *no* L2, so the
    captured stream is independent of the L2 design. Replays therefore
    miss one feedback path — inclusion victims cannot re-dirty the L1
    stream — which the paper's own trace-driven OPT runs share.
    """

    def __init__(
        self,
        cfg: CMPConfig,
        workload,
        instructions_per_core: int = 100_000,
        seed: int = 0,
    ) -> None:
        self.cfg = cfg
        self.workload = workload
        self.instructions_per_core = instructions_per_core
        self.seed = seed
        self._captured: Optional[CapturedTrace] = None

    @classmethod
    def from_captured(
        cls,
        cfg: CMPConfig,
        captured: CapturedTrace,
        instructions_per_core: int = 100_000,
        seed: int = 0,
    ) -> "TraceDrivenRunner":
        """A runner seeded with an already-captured stream.

        The parallel sweep engine captures each workload's stream once
        in the parent process and ships the :class:`CapturedTrace` to
        workers; a worker rebuilds a runner from it without needing the
        workload generator (``capture`` is already satisfied).
        """
        runner = cls(
            cfg,
            workload=None,
            instructions_per_core=instructions_per_core,
            seed=seed,
        )
        runner._captured = captured
        return runner

    def capture(self) -> CapturedTrace:
        """Phase 1: L1 filtering and coherence, recording L2 events."""
        if self._captured is not None:
            return self._captured
        cfg = self.cfg
        l1s = [_build_l1(cfg) for _ in range(cfg.num_cores)]
        directory = Directory(cfg.num_cores)
        streams = [
            self.workload.core_stream(
                c, cfg.l2_blocks, seed=self.seed, num_cores=cfg.num_cores
            )
            for c in range(cfg.num_cores)
        ]
        instructions = [0] * cfg.num_cores
        pending_work = [0] * cfg.num_cores  # cycles since last event
        events: list = []
        active = set(range(cfg.num_cores))

        def l1_invalidate(core: int, address: int) -> None:
            dirty = l1s[core].invalidate(address)
            directory.l1_eviction(address, core)
            if dirty:
                events.append((WRITEBACK, core, address, True, 0))

        while active:
            for core in sorted(active):
                acc = next(streams[core])
                instructions[core] += acc.gap + 1
                pending_work[core] += acc.gap + 1
                l1 = l1s[core]
                was_hit = l1.array.lookup(acc.address) is not None
                if was_hit and acc.is_write and directory.is_shared(acc.address):
                    for victim_core in directory.upgrade(acc.address, core):
                        l1_invalidate(victim_core, acc.address)
                    events.append(
                        (UPGRADE, core, acc.address, True, pending_work[core])
                    )
                    pending_work[core] = 0
                result = l1.access(acc.address, acc.is_write)
                if result.evicted is not None:
                    directory.l1_eviction(result.evicted, core)
                    if result.writeback:
                        events.append(
                            (WRITEBACK, core, result.evicted, True, 0)
                        )
                if not result.hit:
                    events.append(
                        (MISS, core, acc.address, acc.is_write, pending_work[core])
                    )
                    pending_work[core] = 0
                    for victim_core in directory.fill(
                        acc.address, core, acc.is_write
                    ):
                        l1_invalidate(victim_core, acc.address)
                if instructions[core] >= self.instructions_per_core:
                    active.discard(core)

        self._captured = CapturedTrace(
            events=events,
            instructions=instructions,
            l1_accesses=sum(c.stats.accesses for c in l1s),
            l1_misses=sum(c.stats.misses for c in l1s),
            upgrades=directory.stats.upgrades,
            coherence_invalidations=directory.stats.invalidations_sent,
        )
        return self._captured

    def replay(
        self,
        design_cfg: CMPConfig,
        policy_wrapper=None,
        obs: Optional[ObsContext] = None,
    ) -> CMPResult:
        """Phase 2: run the captured stream through one L2 design."""
        captured = self.capture()
        cfg = design_cfg
        spans = obs.spans if obs is not None else NULL_SPANS
        opt_traces = None
        if cfg.l2_design.policy == "opt":
            opt_traces = captured.bank_demand_traces(cfg.l2_banks)
        with spans.span("replay.build", design=cfg.l2_design.label()):
            l2 = BankedL2(
                cfg,
                opt_traces=opt_traces,
                policy_wrapper=policy_wrapper,
                obs=obs.scoped("l2") if obs is not None else None,
            )
        if cfg.engine == "turbo":
            # The captured stream's whole address roster is known up
            # front: hash it through the vectorized H3 path once so the
            # replay loop only takes memo hits on index computations.
            from repro.kernels.replay import prime_trace_hashes

            with spans.span("replay.prime"):
                prime_trace_hashes(l2, captured)
        channel = _MemoryChannel(cfg)
        ports = _BankPorts(cfg)
        bank_latency = _bank_latency(cfg)
        cycles = [0] * cfg.num_cores
        accounted = [0] * cfg.num_cores
        with spans.span("replay.stream", events=len(captured.events)):
            for kind, core, address, is_write, work in captured.events:
                cycles[core] += work
                accounted[core] += work
                if kind == WRITEBACK:
                    l2.writeback(address)
                    continue
                bank = l2.bank_for(address)
                if kind == UPGRADE:
                    cycles[core] += (
                        cfg.l1_to_bank_latency(core, bank) + bank_latency
                    )
                    cycles[core] += ports.demand(bank, cycles[core])
                    l2.record_bank_access(bank)
                    continue
                cycles[core] += cfg.l1_to_bank_latency(core, bank) + bank_latency
                cycles[core] += ports.demand(bank, cycles[core])
                walk_reads_before = l2.walk_tag_reads
                outcome = l2.access(address, is_write)
                if not outcome.hit:
                    ports.walk(
                        bank, cycles[core],
                        l2.walk_tag_reads - walk_reads_before,
                    )
                    cycles[core] += cfg.mem_latency
                    cycles[core] += int(channel.demand(address, cycles[core]))
                    if outcome.writeback:
                        channel.writeback(outcome.evicted, cycles[core])
        # Cores spend their residual instructions after the last event.
        instructions = list(captured.instructions)
        for core in range(cfg.num_cores):
            residual = instructions[core] - min(accounted[core], instructions[core])
            cycles[core] += residual

        priorities: list[float] = []
        for bank in l2.banks:
            if hasattr(bank.policy, "priorities"):
                priorities.extend(bank.policy.priorities)
        return CMPResult(
            label=cfg.l2_design.label(),
            num_cores=cfg.num_cores,
            instructions=instructions,
            cycles=cycles,
            l1_accesses=captured.l1_accesses,
            l1_misses=captured.l1_misses,
            l2_hits=l2.hits,
            l2_misses=l2.misses,
            l2_accesses=l2.accesses + l2.writeback_hits + l2.writeback_misses,
            l2_writebacks=l2.writebacks_to_memory,
            walk_tag_reads=l2.walk_tag_reads,
            relocations=l2.relocations,
            bank_accesses=list(l2.bank_accesses),
            coherence_invalidations=captured.coherence_invalidations,
            upgrades=captured.upgrades,
            l2_bank_latency=bank_latency,
            eviction_priorities=priorities,
            bank_queueing_cycles=ports.queueing_cycles,
        )
