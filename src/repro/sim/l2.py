"""The banked, shared L2 (NUCA per Table I: 8 banks of 1 MB).

Each bank is an independent :class:`~repro.core.controller.Cache` built
from the configured design; blocks interleave across banks by address.
The L2 records per-bank access counts for the bandwidth analysis of
Section VI-D.

Since ZScope, every per-bank counter lives in the metrics registry
(``l2.bank3.hits``, ``l2.bank3.walk.tag_reads``, ``l2.bank3.port_accesses``)
and the old attribute surfaces — ``bank_accesses``, ``writeback_hits``,
``writeback_misses`` — are thin read-only views over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import (
    Cache,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.core.zcache import WalkStats
from repro.obs import MetricsRegistry, ObsContext
from repro.replacement import BucketedLRU, LFU, LRU, FIFO, NRU, RandomPolicy, SRRIP
from repro.sim.config import CMPConfig


def bank_index(address: int, num_banks: int) -> int:
    """Address-interleaved bank mapping, shared by every site that needs it.

    This is *the* interleaving function: :meth:`BankedL2.bank_for` and
    the trace-capture path (``CapturedTrace.bank_demand_traces``, which
    builds OPT's per-bank future traces) both call it, so a change to
    the interleaving can never silently desynchronise them.
    """
    return address % num_banks


@dataclass
class L2AccessOutcome:
    """Result of one L2 demand access."""

    hit: bool
    evicted: Optional[int]
    writeback: bool  # dirty L2 victim went to memory
    bank: int


def _build_bank_array(cfg: CMPConfig, bank: int):
    design = cfg.l2_design
    lines = cfg.bank_lines_per_way
    seed = 97 + bank  # distinct hash functions per bank
    if design.kind == "sa":
        return SetAssociativeArray(
            design.ways, lines, hash_kind=design.hash_kind, hash_seed=seed
        )
    if design.kind == "skew":
        return SkewAssociativeArray(
            design.ways, lines, hash_kind=design.hash_kind, hash_seed=seed
        )
    return ZCacheArray(
        design.ways,
        lines,
        levels=design.levels,
        hash_kind=design.hash_kind,
        hash_seed=seed,
        candidate_limit=design.candidate_limit,
    )


def _build_policy(cfg: CMPConfig, bank: int, opt_traces=None):
    name = cfg.l2_design.policy
    if name == "lru":
        return LRU()
    if name == "bucketed-lru":
        return BucketedLRU.for_cache_size(cfg.bank_blocks)
    if name == "fifo":
        return FIFO()
    if name == "lfu":
        return LFU()
    if name == "random":
        return RandomPolicy(seed=bank)
    if name == "srrip":
        return SRRIP()
    if name == "nru":
        return NRU()
    if name == "opt":
        if opt_traces is None:
            raise ValueError(
                "policy 'opt' requires per-bank future traces "
                "(use TraceDrivenRunner)"
            )
        from repro.replacement import OptPolicy

        return OptPolicy.from_trace(opt_traces[bank])
    raise ValueError(f"unknown L2 policy {name!r}")


class BankedL2:
    """The shared L2: bank selection, per-bank caches, statistics.

    Parameters
    ----------
    cfg:
        System configuration (bank geometry comes from here).
    opt_traces:
        For the OPT policy: one future demand-access address list per
        bank (from a trace-capture pass).
    policy_wrapper:
        Optional callable applied to each bank's policy (e.g.
        :class:`~repro.assoc.measurement.TrackedPolicy`).
    obs:
        Optional :class:`~repro.obs.ObsContext`. Each bank registers its
        controller and walk counters under ``<scope>.bank<b>`` and traces
        through the shared bus; without one the L2 keeps a private
        registry (identical behaviour, nothing exported).
    """

    def __init__(
        self,
        cfg: CMPConfig,
        opt_traces=None,
        policy_wrapper: Optional[Callable] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.cfg = cfg
        self.metrics = obs.metrics if obs is not None else MetricsRegistry()
        self.banks: list[Cache] = []
        for b in range(cfg.l2_banks):
            policy = _build_policy(cfg, b, opt_traces)
            if policy_wrapper is not None:
                policy = policy_wrapper(policy)
            self.banks.append(
                Cache(
                    _build_bank_array(cfg, b),
                    policy,
                    name=f"L2b{b}",
                    obs=obs.scoped(f"bank{b}") if obs is not None else None,
                    engine=cfg.engine,
                )
            )
        # Port-level counters (demand + writeback traffic per bank); the
        # name avoids colliding with each bank controller's `accesses`.
        self._bank_access = [
            self.metrics.counter(f"bank{b}.port_accesses")
            for b in range(cfg.l2_banks)
        ]
        self._c_writeback_hits = self.metrics.counter("writeback_hits")
        self._c_writeback_misses = self.metrics.counter("writeback_misses")
        # attr -> the banks' Counter objects, lazily built: the timing
        # model polls aggregates like `walk_tag_reads` per access, so
        # `total()` must not re-resolve counters every call. A bank whose
        # stats object is swapped mid-run (registry re-scoping) would
        # strand the memoized refs on the orphaned counters, so every
        # bank invalidates the memo when that happens.
        self._total_cache: dict[str, list] = {}
        for bank in self.banks:
            bank.add_stats_listener(self._total_cache.clear)

    @property
    def bank_accesses(self) -> list[int]:
        """Per-bank port access counts (a snapshot, not a live list)."""
        return [c.value for c in self._bank_access]

    @property
    def writeback_hits(self) -> int:
        """L1 writebacks the L2 absorbed."""
        return self._c_writeback_hits.value

    @property
    def writeback_misses(self) -> int:
        """L1 writebacks that missed the L2 and went to memory."""
        return self._c_writeback_misses.value

    def record_bank_access(self, bank: int) -> None:
        """Count one port access to ``bank`` (demand or writeback)."""
        self._bank_access[bank].value += 1

    def bank_for(self, address: int) -> int:
        """Address-interleaved bank selection (see :func:`bank_index`)."""
        return bank_index(address, self.cfg.l2_banks)

    def access(self, address: int, is_write: bool) -> L2AccessOutcome:
        """One demand access (an L1 miss reaching the L2)."""
        bank = self.bank_for(address)
        self._bank_access[bank].value += 1
        result = self.banks[bank].access(address, is_write)
        return L2AccessOutcome(
            hit=result.hit,
            evicted=result.evicted,
            writeback=result.writeback,
            bank=bank,
        )

    def writeback(self, address: int) -> bool:
        """An L1 dirty eviction writes its data down.

        Returns True if the L2 absorbed it (hit). Writebacks update data
        and dirty state but do not touch the replacement policy — they
        are not demand references. A miss (possible in trace mode, where
        inclusion is not enforced on the L1 stream) forwards the line to
        memory.
        """
        bank = self.bank_for(address)
        self._bank_access[bank].value += 1
        if self.banks[bank].absorb_writeback(address):
            self._c_writeback_hits.value += 1
            return True
        self._c_writeback_misses.value += 1
        return False

    def invalidate(self, address: int) -> bool:
        """Back-invalidate (unused externally today; symmetry helper)."""
        return self.banks[self.bank_for(address)].invalidate(address)

    def __contains__(self, address: int) -> bool:
        return address in self.banks[self.bank_for(address)]

    # -- aggregate statistics ---------------------------------------------------
    def total(self, attr: str) -> int:
        """Sum a CacheStats counter across banks."""
        counters = self._total_cache.get(attr)
        if counters is None:
            counters = [b.stats.counters()[attr] for b in self.banks]
            self._total_cache[attr] = counters
        return sum(c.value for c in counters)

    @property
    def hits(self) -> int:
        return self.total("hits")

    @property
    def misses(self) -> int:
        return self.total("misses")

    @property
    def accesses(self) -> int:
        return self.total("accesses")

    @property
    def writebacks_to_memory(self) -> int:
        return self.total("writebacks") + self.writeback_misses

    @property
    def walk_tag_reads(self) -> int:
        return self.total("walk_tag_reads")

    @property
    def relocations(self) -> int:
        return self.total("relocations")

    def walk_stats(self) -> Optional[WalkStats]:
        """Merged zcache walk statistics (None for non-z designs)."""
        merged = None
        for bank in self.banks:
            stats = getattr(bank.array, "stats", None)
            if not isinstance(stats, WalkStats):
                return None
            if merged is None:
                merged = WalkStats()
            merged.merge(stats)
        return merged
