"""CMP and L2-design configuration (paper Table I).

The paper system: 32 cores, 32 KB 4-way L1s (split D/I; we model the
data side, which carries the traffic that matters here), an 8 MB shared
inclusive L2 in 8 banks, 4 memory controllers at 200-cycle zero-load
latency and 64 GB/s aggregate bandwidth, all at 2 GHz.

Pure-Python simulation cannot cover 8 MB x 10-billion-instruction runs,
so the default configuration is *scaled*: every capacity (and, via the
workload specs, every footprint) shrinks by ``SCALE`` while the ratios
between them stay fixed. ``CMPConfig.paper_scale()`` returns the
full-size configuration for calibration runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: default linear scale factor applied to cache capacities
SCALE = 32


@dataclass(frozen=True)
class L2DesignConfig:
    """One last-level-cache design point.

    ``kind`` selects the array: ``"sa"`` (set-associative), ``"skew"``,
    or ``"z"`` (zcache). ``hash_kind`` is the index hash (``"bitsel"``
    for a conventional un-hashed SA cache, ``"h3"`` for the paper's
    hashed baseline and all skew/z designs).
    """

    kind: str = "sa"
    ways: int = 4
    levels: int = 1  # walk depth for kind="z"
    hash_kind: str = "h3"
    parallel_lookup: bool = False
    policy: str = "lru"  # "lru" | "bucketed-lru" | "opt" | ...
    #: optional early-stop cap on walk candidates (kind="z" only) —
    #: the paper's bandwidth-pressure contingency
    candidate_limit: int | None = None

    def __post_init__(self):
        if self.kind not in ("sa", "skew", "z"):
            raise ValueError(f"unknown L2 kind {self.kind!r}")
        if self.ways < 1:
            raise ValueError("ways must be >= 1")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.kind != "z" and self.levels != 1:
            raise ValueError("levels only meaningful for zcaches")
        if self.candidate_limit is not None and self.kind != "z":
            raise ValueError("candidate_limit only applies to zcaches")

    def label(self) -> str:
        """Short name used in figures, e.g. ``SA-32`` or ``Z4/52``."""
        from repro.core.zcache import replacement_candidates

        lookup = "P" if self.parallel_lookup else "S"
        if self.kind == "z":
            r = replacement_candidates(self.ways, self.levels)
            return f"Z{self.ways}/{r}-{lookup}"
        if self.kind == "skew":
            return f"SK-{self.ways}-{lookup}"
        suffix = "" if self.hash_kind == "bitsel" else "h"
        return f"SA-{self.ways}{suffix}-{lookup}"


@dataclass(frozen=True)
class CMPConfig:
    """Whole-system configuration."""

    num_cores: int = 32
    # L1 data cache, per core (blocks of 64 B). Scaled less aggressively
    # than capacity alone would suggest (512/32 = 16 is degenerate), but
    # kept small enough that the aggregate L1 stays well under the L2.
    l1_blocks: int = 512 // SCALE * 2
    l1_ways: int = 4
    # shared L2
    l2_blocks: int = (8 << 20) // 64 // SCALE
    l2_banks: int = 8
    # latencies (cycles, 2 GHz)
    l1_to_l2_latency: int = 4
    #: NUCA wire model: when > 0, the L1-to-bank latency becomes
    #: ``l1_to_l2_latency + hops(core, bank) * nuca_hop_cycles`` with
    #: cores and banks placed on a line (hops normalised so the average
    #: over all pairs stays near l1_to_l2_latency's Table I meaning).
    #: The default of 0 is the paper's fixed-average model.
    nuca_hop_cycles: float = 0.0
    #: Model L2 bank-port contention: each bank serves one access per
    #: cycle, and a zcache's walk occupies its home bank's tag port for
    #: ceil(walk reads / ways) cycles after the miss. Off by default
    #: (the paper's experiments show the load is far from saturation;
    #: turning this on lets you find where that stops being true).
    bank_queueing: bool = False
    mem_latency: int = 200
    # bandwidth: 64 GB/s at 2 GHz = 32 B/cycle, split over 4 MCs
    num_mcs: int = 4
    mem_bytes_per_cycle: float = 32.0
    line_bytes: int = 64
    l2_design: L2DesignConfig = field(default_factory=L2DesignConfig)
    #: cache-access engine for every L2 bank: ``"reference"`` (pure
    #: Python protocol) or ``"turbo"`` (ZTurbo vectorized kernels,
    #: bit-identical, falling back per bank when unsupported — e.g.
    #: OPT/SRRIP policies or candidate-limited walks).
    engine: str = "reference"

    def __post_init__(self):
        if self.engine not in ("reference", "turbo"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected 'reference' or 'turbo'"
            )
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.l2_blocks % self.l2_banks:
            raise ValueError("l2_blocks must divide evenly into banks")
        bank_blocks = self.l2_blocks // self.l2_banks
        ways = self.l2_design.ways
        if bank_blocks % ways:
            raise ValueError(
                f"bank of {bank_blocks} blocks does not divide into {ways} ways"
            )
        lines = bank_blocks // ways
        if lines & (lines - 1):
            raise ValueError(
                f"lines per way ({lines}) must be a power of two; adjust "
                "l2_blocks/l2_banks/ways"
            )
        if self.l1_blocks % self.l1_ways:
            raise ValueError("l1_blocks must divide into l1_ways")
        l1_sets = self.l1_blocks // self.l1_ways
        if l1_sets & (l1_sets - 1):
            raise ValueError("L1 sets must be a power of two")

    @property
    def bank_blocks(self) -> int:
        return self.l2_blocks // self.l2_banks

    @property
    def bank_lines_per_way(self) -> int:
        return self.bank_blocks // self.l2_design.ways

    @property
    def line_transfer_cycles(self) -> float:
        """MC occupancy of one line transfer (per controller)."""
        per_mc = self.mem_bytes_per_cycle / self.num_mcs
        return self.line_bytes / per_mc

    def l1_to_bank_latency(self, core: int, bank: int) -> int:
        """Core-to-bank request latency.

        With the default ``nuca_hop_cycles == 0`` this is the fixed
        Table I average. Otherwise cores map onto bank columns
        (core mod banks) and each column of distance costs
        ``nuca_hop_cycles`` extra cycles — a 1-D NUCA wire model.
        """
        if self.nuca_hop_cycles <= 0:
            return self.l1_to_l2_latency
        hops = abs((core % self.l2_banks) - bank)
        # Centre the distribution on the configured average: the mean
        # 1-D distance between uniform points on [0, B) is ~B/3.
        mean_hops = self.l2_banks / 3
        extra = (hops - mean_hops) * self.nuca_hop_cycles
        return max(1, round(self.l1_to_l2_latency + extra))

    @classmethod
    def paper_scale(cls, **overrides) -> "CMPConfig":
        """The unscaled Table I system (slow in pure Python)."""
        cfg = cls(
            l1_blocks=512,
            l2_blocks=(8 << 20) // 64,
        )
        return replace(cfg, **overrides) if overrides else cfg

    def with_design(self, design: L2DesignConfig) -> "CMPConfig":
        """A copy of this config with a different L2 design."""
        return replace(self, l2_design=design)
