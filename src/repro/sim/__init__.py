"""Trace-driven CMP simulator (paper Table I system).

Models the paper's evaluation platform: 32 in-order x86-class cores
(IPC=1 except on memory accesses), private split L1s, a shared, banked,
inclusive L2 with MESI-style directory coherence, and memory controllers
with a zero-load latency plus bandwidth queueing.

Two operating modes:

- **full** (:meth:`CMPSimulator.run`): execution-driven; the L2 design
  affects the L1 stream through inclusion victims and coherence.
- **trace** (:class:`TraceDrivenRunner`): the L1-filtered L2 stream is
  captured once and replayed against many L2 designs — this is how the
  paper runs OPT, and it makes design sweeps (Fig. 4/5) cheap. Inclusion
  victims do not feed back into the L1 stream in this mode.
"""

from repro.sim.config import CMPConfig, L2DesignConfig
from repro.sim.cmp import CMPResult, CMPSimulator, TraceDrivenRunner
from repro.sim.directory import Directory
from repro.sim.l2 import BankedL2

__all__ = [
    "CMPConfig",
    "L2DesignConfig",
    "CMPSimulator",
    "TraceDrivenRunner",
    "CMPResult",
    "Directory",
    "BankedL2",
]
