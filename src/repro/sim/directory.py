"""MESI-style directory for the private L1s (paper Table I).

The L2 is inclusive and keeps, per resident block, the set of cores
whose L1 may hold a copy plus a single-owner dirty bit. The directory
implements the transactions the simulator needs:

- **fill**: a core's L1 acquires a copy (S, or M for a write fill);
  a write fill invalidates all other sharers.
- **upgrade**: a core writes a block it already shares; other sharers
  are invalidated (the write-hit-to-Shared case).
- **l1_eviction**: a sharer silently drops its copy.
- **inclusion_invalidate**: the L2 evicted the block, so every L1 copy
  must go (inclusion victims).

Full MESI has more states than this matters for cache-miss statistics;
E (exclusive-clean) is folded into S, which only forgoes the silent
E->M upgrade — a timing nicety, not a correctness issue for MPKI/IPC at
the L2 (documented substitution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import RegistryStats

if TYPE_CHECKING:
    from repro.obs import ObsContext


class DirectoryStats(RegistryStats):
    """Coherence-traffic counters, backed by the metrics registry."""

    _COUNTER_FIELDS = ("invalidations_sent", "upgrades", "write_fills")


class Directory:
    """Sharer tracking for an inclusive L2."""

    def __init__(
        self, num_cores: int, obs: Optional["ObsContext"] = None
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.num_cores = num_cores
        self._sharers: dict[int, set[int]] = {}
        self.stats = DirectoryStats(obs.metrics if obs is not None else None)
        self._sc = self.stats.counters()

    def sharers(self, address: int) -> frozenset[int]:
        """Cores that may hold the block in their L1."""
        return frozenset(self._sharers.get(address, ()))

    def is_shared(self, address: int) -> bool:
        """True when more than one L1 may hold the block."""
        return len(self._sharers.get(address, ())) > 1

    def fill(self, address: int, core: int, is_write: bool) -> list[int]:
        """A core's L1 fills the block; returns cores to invalidate."""
        self._check_core(core)
        holders = self._sharers.setdefault(address, set())
        victims: list[int] = []
        if is_write:
            victims = [c for c in holders if c != core]
            holders.clear()
            self._sc["write_fills"].value += 1
            self._sc["invalidations_sent"].value += len(victims)
        holders.add(core)
        return victims

    def upgrade(self, address: int, core: int) -> list[int]:
        """A sharer writes the block; returns other cores to invalidate."""
        self._check_core(core)
        holders = self._sharers.get(address)
        if holders is None or core not in holders:
            raise KeyError(
                f"core {core} upgrading block {address:#x} it does not share"
            )
        victims = [c for c in holders if c != core]
        if victims:
            self._sc["upgrades"].value += 1
            self._sc["invalidations_sent"].value += len(victims)
        self._sharers[address] = {core}
        return victims

    def l1_eviction(self, address: int, core: int) -> None:
        """A core's L1 dropped its copy (silent for clean lines)."""
        self._check_core(core)
        holders = self._sharers.get(address)
        if holders is not None:
            holders.discard(core)
            if not holders:
                del self._sharers[address]

    def inclusion_invalidate(self, address: int) -> list[int]:
        """L2 eviction: every L1 copy must be invalidated (inclusion)."""
        holders = self._sharers.pop(address, set())
        self._sc["invalidations_sent"].value += len(holders)
        return sorted(holders)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core id {core} out of range")
