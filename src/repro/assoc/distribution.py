"""Associativity distributions: empirical samples vs. analytic curves."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.util.statistics import empirical_cdf, ks_distance


def uniformity_cdf(num_candidates: int) -> Callable[[float], float]:
    """Analytic associativity CDF under the uniformity assumption.

    ``F_A(x) = x^n`` for x in [0, 1] (paper Section IV-B): the maximum of
    n i.i.d. uniform eviction priorities.
    """
    if num_candidates < 1:
        raise ValueError(f"num_candidates must be >= 1, got {num_candidates}")

    def cdf(x: float) -> float:
        if x <= 0.0:
            return 0.0
        if x >= 1.0:
            return 1.0
        return x**num_candidates

    return cdf


def expected_priority(num_candidates: int) -> float:
    """Mean eviction priority under uniformity: E[max of n U(0,1)] = n/(n+1)."""
    if num_candidates < 1:
        raise ValueError(f"num_candidates must be >= 1, got {num_candidates}")
    return num_candidates / (num_candidates + 1)


class AssociativityDistribution:
    """Empirical distribution of eviction priorities.

    Built from the samples a :class:`~repro.assoc.measurement.
    TrackedPolicy` records; offers CDF evaluation, quantiles, and
    goodness-of-fit against the uniformity assumption.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("no eviction-priority samples")
        if np.any((arr < 0.0) | (arr > 1.0)):
            raise ValueError("eviction priorities must lie in [0, 1]")
        self.samples = np.sort(arr)

    def __len__(self) -> int:
        return int(self.samples.size)

    def cdf(self, xs: Sequence[float]) -> np.ndarray:
        """Empirical CDF evaluated at ``xs``."""
        return empirical_cdf(self.samples, xs)

    def mean(self) -> float:
        """Mean eviction priority (n/(n+1) under uniformity)."""
        return float(np.mean(self.samples))

    def quantile(self, q: float) -> float:
        """Inverse CDF."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        return float(np.quantile(self.samples, q))

    def fraction_below(self, threshold: float) -> float:
        """P(evicted block priority < threshold) — the paper's headline
        per-curve statistic (e.g. 10^-6 below 0.4 for n=16)."""
        return float(np.searchsorted(self.samples, threshold, side="left")) / len(self)

    def ks_to_uniformity(self, num_candidates: int) -> float:
        """KS distance to the analytic ``x^n`` curve."""
        return ks_distance(self.samples, uniformity_cdf(num_candidates))

    def effective_candidates(self) -> float:
        """Invert the mean: the n for which n/(n+1) equals the sample
        mean. A design-agnostic "effective associativity" scalar."""
        m = self.mean()
        if m >= 1.0:
            return float("inf")
        return m / (1.0 - m)

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports."""
        return {
            "samples": float(len(self)),
            "mean": self.mean(),
            "p10": self.quantile(0.10),
            "p50": self.quantile(0.50),
            "frac_below_0.4": self.fraction_below(0.4),
            "effective_candidates": self.effective_candidates(),
        }
