"""Conflict-miss accounting (paper Section IV's starting point).

The classical way to quantify associativity — the one the paper argues
against, but also the one everything else in the literature reports —
is the three-C decomposition (Hill & Smith 1989):

- **compulsory**: first reference to a block;
- **capacity**: misses a fully-associative cache of the same size with
  the same policy would also take;
- **conflict**: whatever is left — misses caused by restricted
  placement.

:func:`classify_misses` replays one trace through the design under test
and through a fully-associative twin, then reports the decomposition.
The paper's criticisms are directly observable here: with an anti-LRU
workload the conflict count can go *negative* (the restricted cache
beats the fully-associative one), and the decomposition changes with
the policy — which is why Section IV replaces it with the
associativity distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Tuple

from repro.core.base import CacheArray
from repro.core.controller import Cache
from repro.core.fullyassoc import FullyAssociativeArray


@dataclass(frozen=True)
class MissDecomposition:
    """Three-C decomposition of one run."""

    accesses: int
    total_misses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def miss_rate(self) -> float:
        return self.total_misses / self.accesses if self.accesses else 0.0

    @property
    def conflict_fraction(self) -> float:
        """Share of misses attributable to placement restrictions.

        Can be negative: a restricted cache can beat fully-associative
        LRU on anti-LRU patterns (one of the paper's objections to this
        metric)."""
        if self.total_misses == 0:
            return 0.0
        return self.conflict / self.total_misses

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"misses={self.total_misses} (rate {self.miss_rate:.4f}): "
            f"compulsory={self.compulsory} capacity={self.capacity} "
            f"conflict={self.conflict}"
        )


def classify_misses(
    array_factory: Callable[[], CacheArray],
    policy_factory: Callable[[], object],
    trace: Iterable[Tuple[int, bool]],
) -> MissDecomposition:
    """Replay ``trace`` and decompose the design's misses.

    Parameters
    ----------
    array_factory:
        Builds the array under test (its ``num_blocks`` sizes the
        fully-associative twin).
    policy_factory:
        Builds a fresh policy for each cache (so state is not shared).
    trace:
        ``(address, is_write)`` pairs.
    """
    test_array = array_factory()
    test = Cache(test_array, policy_factory(), name="under-test")
    ideal = Cache(
        FullyAssociativeArray(test_array.num_blocks),
        policy_factory(),
        name="fully-assoc",
    )
    seen: set[int] = set()
    compulsory = 0
    accesses = 0
    for address, is_write in trace:
        accesses += 1
        if address not in seen:
            seen.add(address)
            compulsory += 1
        test.access(address, is_write)
        ideal.access(address, is_write)
    total = test.stats.misses
    ideal_misses = ideal.stats.misses
    capacity = ideal_misses - compulsory
    conflict = total - ideal_misses
    return MissDecomposition(
        accesses=accesses,
        total_misses=total,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )
