"""Eviction-priority instrumentation (paper Section IV-A).

:class:`TrackedPolicy` wraps any replacement policy and mirrors the
scores of all resident blocks into a sorted multiset. When a block is
evicted, its *rank* r among the B resident blocks (by eviction
preference) yields the eviction priority e = r / (B - 1); the stream of
e values is the cache's associativity distribution.

The wrapper is transparent: the cache controller talks to it exactly as
to the underlying policy, so any array/policy pairing can be measured
without modification.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

from repro.assoc.distribution import AssociativityDistribution
from repro.replacement.base import ReplacementPolicy
from repro.util.sortedmultiset import SortedMultiset


class TrackedPolicy(ReplacementPolicy):
    """Decorator recording the eviction priority of every evicted block."""

    def __init__(self, inner: ReplacementPolicy) -> None:
        self.inner = inner
        self._scores = SortedMultiset()
        self._mirror: dict[int, Tuple[Any, int]] = {}
        #: eviction priorities, one per eviction, in eviction order
        self.priorities: list[float] = []

    # -- mirror maintenance ----------------------------------------------------
    def _entry(self, address: int) -> Tuple[Any, int]:
        # (score, address) tuples are unique even when scores tie.
        return (self.inner.score(address), address)

    def _sync(self, address: int) -> None:
        """Re-read a block's score after the inner policy changed it."""
        old = self._mirror.get(address)
        if old is not None:
            self._scores.remove(old)
        new = self._entry(address)
        self._mirror[address] = new
        self._scores.add(new)

    # -- forwarded policy interface ---------------------------------------------
    def on_insert(self, address: int) -> None:
        self.inner.on_insert(address)
        if address in self._mirror:
            raise ValueError(f"block {address:#x} inserted twice")
        entry = self._entry(address)
        self._mirror[address] = entry
        self._scores.add(entry)

    def on_access(self, address: int, is_write: bool = False) -> None:
        self.inner.on_access(address, is_write)
        self._sync(address)

    def on_evict(self, address: int) -> None:
        entry = self._mirror.get(address)
        if entry is None:
            raise KeyError(f"evicting untracked block {address:#x}")
        resident = len(self._scores)
        rank = self._scores.rank(entry)
        priority = rank / (resident - 1) if resident > 1 else 1.0
        self.priorities.append(priority)
        self._scores.remove(entry)
        del self._mirror[address]
        self.inner.on_evict(address)

    def score(self, address: int) -> Any:
        return self.inner.score(address)

    def select_victim(self, candidates: Sequence[int]) -> int:
        victim = self.inner.select_victim(candidates)
        # Policies like SRRIP age blocks during selection; pick up the
        # score changes so the mirror stays exact.
        for address in self.inner.drain_score_updates():
            if address in self._mirror:
                self._sync(address)
        return victim

    def global_victim(self):
        # The sorted mirror makes the globally most-evictable block an
        # O(1) query under any wrapped policy. (For policies whose
        # select_victim deviates from score order — BucketedLRU's
        # wrapped-age comparison — this returns the ground-truth-order
        # victim instead.)
        if len(self._scores) == 0:
            return self.inner.global_victim()
        return self._scores.max()[1]

    # -- results -----------------------------------------------------------------
    def distribution(self) -> AssociativityDistribution:
        """The associativity distribution recorded so far."""
        return AssociativityDistribution(self.priorities)

    def reset(self) -> None:
        """Drop recorded priorities (e.g. after cache warm-up)."""
        self.priorities.clear()


def measure_associativity(
    cache_factory,
    policy_factory,
    trace: Iterable[Tuple[int, bool]],
    warmup: int = 0,
):
    """Run ``trace`` through a cache and measure its associativity.

    Parameters
    ----------
    cache_factory:
        Callable returning a fresh :class:`~repro.core.base.CacheArray`.
    policy_factory:
        Callable returning a fresh replacement policy.
    trace:
        Iterable of ``(address, is_write)`` pairs.
    warmup:
        Number of leading accesses whose evictions are discarded.

    Returns
    -------
    (distribution, cache):
        The measured :class:`AssociativityDistribution` and the finished
        :class:`~repro.core.controller.Cache` (for stats inspection).
    """
    from repro.core.controller import Cache

    tracked = TrackedPolicy(policy_factory())
    cache = Cache(cache_factory(), tracked, name="measured")
    for i, (address, is_write) in enumerate(trace):
        if i == warmup:
            tracked.reset()
        cache.access(address, is_write)
    return tracked.distribution(), cache
