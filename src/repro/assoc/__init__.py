"""The paper's analytical framework for associativity (Section IV).

Associativity is defined as the probability distribution of the
*eviction priorities* of evicted blocks: the victim's rank in the
replacement policy's global ordering, normalised to [0, 1]. Under the
uniformity assumption — candidates' priorities i.i.d. uniform — the
distribution's CDF is ``F_A(x) = x^n`` with ``n`` the number of
replacement candidates.

- :class:`~repro.assoc.measurement.TrackedPolicy` instruments any policy
  to record eviction priorities while a cache runs.
- :class:`~repro.assoc.distribution.AssociativityDistribution` holds the
  samples and compares them to the analytic curves.
- :func:`~repro.assoc.distribution.uniformity_cdf` is the analytic CDF.
- :func:`~repro.assoc.measurement.measure_associativity` runs a trace
  through a cache and returns the measured distribution.
"""

from repro.assoc.compare import (
    ComparisonReport,
    DesignMeasurement,
    compare_designs,
    dominates,
)
from repro.assoc.conflict import MissDecomposition, classify_misses
from repro.assoc.prediction import (
    DesignPrediction,
    effective_lru_capacity,
    predict_designs,
    predict_miss_rate,
)
from repro.assoc.distribution import (
    AssociativityDistribution,
    expected_priority,
    uniformity_cdf,
)
from repro.assoc.measurement import TrackedPolicy, measure_associativity

__all__ = [
    "AssociativityDistribution",
    "uniformity_cdf",
    "expected_priority",
    "TrackedPolicy",
    "measure_associativity",
    "MissDecomposition",
    "classify_misses",
    "ComparisonReport",
    "DesignMeasurement",
    "compare_designs",
    "dominates",
    "DesignPrediction",
    "effective_lru_capacity",
    "predict_miss_rate",
    "predict_designs",
]
