"""First-order miss-rate prediction from the two analytical frameworks.

This module joins the paper's associativity theory (Section IV) with
the classic reuse-distance theory (Mattson 1970) into a simulation-free
miss-rate predictor:

1. Under the uniformity assumption, a cache with ``n`` replacement
   candidates evicts at mean priority n/(n+1) — its evictions sit, on
   average, that deep in the global LRU order. To first order it
   behaves like a *smaller* fully-associative LRU cache with

       effective capacity = B * n / (n + 1).

2. A fully-associative LRU cache's miss rate at any capacity is exactly
   the reuse profile's stack-distance tail.

Composing the two predicts any design's miss rate from one trace pass
and the candidate count alone — no cache simulation.

Accuracy contract (tested in ``tests/assoc/test_prediction.py``): on
recency-friendly traffic the prediction lands within ~10% relative
error at n >= 4, tightening as n grows (exact at full associativity).
On *anti-LRU* traffic (cyclic scans over capacity) the model breaks by
construction — it predicts monotone improvement with n, while real LRU
caches can get *worse* with associativity (paper Fig. 4's three
pathological workloads). The model is a design-space triage tool, not a
replacement for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.analysis import ReuseProfile


def effective_lru_capacity(num_blocks: int, candidates: int) -> int:
    """Blocks of a fully-associative LRU cache with equivalent behaviour.

    ``B * n/(n+1)``: the mean eviction priority under uniformity says an
    n-candidate cache protects that fraction of the LRU stack.
    """
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    if candidates < 1:
        raise ValueError(f"candidates must be >= 1, got {candidates}")
    return max(1, int(num_blocks * candidates / (candidates + 1)))


def predict_miss_rate(
    profile: ReuseProfile, num_blocks: int, candidates: int
) -> float:
    """Predicted miss rate of an n-candidate cache of B blocks."""
    return profile.miss_rate_at(effective_lru_capacity(num_blocks, candidates))


@dataclass(frozen=True)
class DesignPrediction:
    """One design's analytic prediction (and optional measured value)."""

    design: str
    candidates: int
    predicted_miss_rate: float
    measured_miss_rate: float | None = None

    @property
    def relative_error(self) -> float | None:
        """|pred - measured| / measured, if a measurement is attached."""
        if self.measured_miss_rate is None or self.measured_miss_rate == 0:
            return None
        return (
            abs(self.predicted_miss_rate - self.measured_miss_rate)
            / self.measured_miss_rate
        )

    def row(self) -> str:
        """One formatted report line."""
        out = (
            f"{self.design:10s} n={self.candidates:<4d} "
            f"predicted={self.predicted_miss_rate:.4f}"
        )
        if self.measured_miss_rate is not None:
            out += (
                f" measured={self.measured_miss_rate:.4f} "
                f"err={self.relative_error:.1%}"
            )
        return out


def predict_designs(
    profile: ReuseProfile,
    num_blocks: int,
    designs: dict,
) -> list[DesignPrediction]:
    """Predict every design in ``{name: candidate_count}`` at once."""
    return [
        DesignPrediction(
            design=name,
            candidates=n,
            predicted_miss_rate=predict_miss_rate(profile, num_blocks, n),
        )
        for name, n in designs.items()
    ]
