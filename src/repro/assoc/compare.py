"""Cross-design associativity comparison (paper Section IV's purpose).

The framework exists so different cache organisations can be compared
on one axis. This module packages that comparison:

- :func:`compare_designs` runs one trace through many designs and
  returns each design's associativity distribution plus headline stats;
- :func:`dominates` tests first-order stochastic dominance between two
  measured distributions (design A dominates B when A's eviction
  priorities are distributionally higher — strictly better replacement
  decisions under *any* monotone value function);
- :class:`ComparisonReport` renders the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from repro.assoc.distribution import AssociativityDistribution
from repro.assoc.measurement import TrackedPolicy
from repro.core.controller import Cache


@dataclass
class DesignMeasurement:
    name: str
    nominal_candidates: int
    distribution: AssociativityDistribution
    miss_rate: float

    def row(self) -> str:
        """One formatted report line."""
        d = self.distribution
        return (
            f"{self.name:18s} n={self.nominal_candidates:<4d} "
            f"mean={d.mean():.4f} effn={d.effective_candidates():6.1f} "
            f"KS={d.ks_to_uniformity(self.nominal_candidates):.3f} "
            f"missrate={self.miss_rate:.4f}"
        )


def dominates(
    a: AssociativityDistribution,
    b: AssociativityDistribution,
    tolerance: float = 0.01,
) -> bool:
    """First-order stochastic dominance: F_a(x) <= F_b(x) + tol for all x.

    Lower CDF everywhere = mass shifted towards e = 1.0 = strictly
    better eviction decisions.
    """
    xs = np.linspace(0.0, 1.0, 201)
    return bool(np.all(a.cdf(xs) <= b.cdf(xs) + tolerance))


@dataclass
class ComparisonReport:
    measurements: list

    def ranked(self) -> list:
        """Designs by effective candidate count, best first."""
        return sorted(
            self.measurements,
            key=lambda m: m.distribution.effective_candidates(),
            reverse=True,
        )

    def dominance_matrix(self) -> dict:
        """(A, B) -> True when A stochastically dominates B."""
        out = {}
        for a in self.measurements:
            for b in self.measurements:
                if a is b:
                    continue
                out[(a.name, b.name)] = dominates(
                    a.distribution, b.distribution
                )
        return out

    def rows(self) -> list[str]:
        """Formatted report lines, ranking included."""
        lines = ["Associativity comparison (best effective-n first):"]
        lines += ["  " + m.row() for m in self.ranked()]
        return lines


def compare_designs(
    designs: Sequence[Tuple[str, int, Callable[[], object]]],
    policy_factory: Callable[[], object],
    trace: Iterable[Tuple[int, bool]],
    warmup: int = 0,
) -> ComparisonReport:
    """Measure several designs on one trace.

    Parameters
    ----------
    designs:
        ``(name, nominal_candidates, array_factory)`` triples.
    policy_factory:
        Fresh policy per design (wrapped in a TrackedPolicy).
    trace:
        ``(address, is_write)`` pairs; it is materialised once and
        replayed identically for every design.
    warmup:
        Leading accesses whose evictions are discarded.
    """
    materialised = list(trace)
    measurements = []
    for name, candidates, array_factory in designs:
        tracked = TrackedPolicy(policy_factory())
        cache = Cache(array_factory(), tracked, name=name)
        for i, (address, is_write) in enumerate(materialised):
            if i == warmup:
                tracked.reset()
            cache.access(address, is_write)
        if not tracked.priorities:
            raise ValueError(
                f"design {name!r} produced no evictions; lengthen the trace"
            )
        measurements.append(
            DesignMeasurement(
                name=name,
                nominal_candidates=candidates,
                distribution=tracked.distribution(),
                miss_rate=cache.stats.miss_rate,
            )
        )
    return ComparisonReport(measurements=measurements)
