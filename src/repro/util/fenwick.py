"""Fenwick (binary indexed) tree over integer positions.

Used by the reuse-distance analyser: O(log n) point update and prefix
sum make the classic Mattson stack-distance computation O(n log n).
"""

from __future__ import annotations


class FenwickTree:
    """Prefix sums over ``size`` integer slots (0-indexed API)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values in [0, index] (empty sum if index < 0)."""
        if index >= self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        total = 0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of values in [lo, hi]."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum of all values."""
        return self.prefix_sum(self.size - 1)
