"""Sorted multiset with O(log n) rank queries, used for eviction ranks.

The associativity framework (paper Section IV) needs, at every eviction,
the victim's *rank* among all resident blocks under the replacement
policy's global ordering. We keep the resident scores in a sorted list
(bisect-maintained); insertion/removal is O(n) memmove — fast in CPython
for the tens of thousands of blocks a scaled cache holds — and rank
queries are O(log n).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable


class SortedMultiset:
    """A multiset over comparable items supporting rank queries."""

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = sorted(items)

    def add(self, item: Any) -> None:
        """Insert ``item``, keeping the container sorted."""
        bisect.insort(self._items, item)

    def remove(self, item: Any) -> None:
        """Remove one occurrence of ``item``.

        Raises
        ------
        KeyError
            If ``item`` is not present.
        """
        i = bisect.bisect_left(self._items, item)
        if i >= len(self._items) or self._items[i] != item:
            raise KeyError(item)
        del self._items[i]

    def rank(self, item: Any) -> int:
        """Number of items strictly less than ``item``."""
        return bisect.bisect_left(self._items, item)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Any) -> bool:
        i = bisect.bisect_left(self._items, item)
        return i < len(self._items) and self._items[i] == item

    def __iter__(self):
        return iter(self._items)

    def min(self) -> Any:
        """Smallest item."""
        if not self._items:
            raise ValueError("empty multiset")
        return self._items[0]

    def max(self) -> Any:
        """Largest item."""
        if not self._items:
            raise ValueError("empty multiset")
        return self._items[-1]
