"""Counting-free Bloom filter.

The paper (Section III-D) suggests inserting addresses visited during the
replacement walk into a Bloom filter to avoid expanding repeated
candidates in small caches/TLBs. This is that filter: ``k`` hash probes
into an ``m``-bit vector, no deletions (the walk filter is cleared whole
between replacements).
"""

from __future__ import annotations

import math

from repro.hashing.mixers import splitmix64


class BloomFilter:
    """Standard Bloom filter over non-negative integer keys.

    Parameters
    ----------
    num_bits:
        Size of the bit vector. Rounded up to a multiple of 64 internally.
    num_hashes:
        Number of probes per key. Defaults to the optimum for the
        expected load if ``expected_items`` is given, else 2.
    expected_items:
        Optional sizing hint used only to pick ``num_hashes``.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int | None = None,
        expected_items: int | None = None,
    ) -> None:
        if num_bits < 1:
            raise ValueError(f"num_bits must be >= 1, got {num_bits}")
        # Round up to whole 64-bit words, as the docstring promises: the
        # bit vector is conceptually an array of machine words, and
        # false_positive_rate() must reflect the real vector size.
        self.num_bits = (num_bits + 63) // 64 * 64
        if num_hashes is None:
            if expected_items:
                num_hashes = max(
                    1, round(math.log(2) * self.num_bits / expected_items)
                )
            else:
                num_hashes = 2
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    def _probes(self, key: int):
        # Kirsch-Mitzenmacher double hashing: h1 + i*h2 is as good as k
        # independent hashes for Bloom filters.
        h1 = splitmix64(key)
        h2 = splitmix64(key ^ 0xDEADBEEFCAFEF00D) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: int) -> None:
        """Insert ``key`` into the filter."""
        for bit in self._probes(key):
            self._bits |= 1 << bit
        self._count += 1

    def __contains__(self, key: int) -> bool:
        return all((self._bits >> bit) & 1 for bit in self._probes(key))

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._bits = 0
        self._count = 0

    def __len__(self) -> int:
        """Number of ``add`` calls since the last ``clear``."""
        return self._count

    def false_positive_rate(self) -> float:
        """Theoretical false-positive probability at the current load."""
        if self._count == 0:
            return 0.0
        k, m, n = self.num_hashes, self.num_bits, self._count
        return (1.0 - math.exp(-k * n / m)) ** k
