"""Small shared substrates: Bloom filter, sorted multiset, math helpers."""

from repro.util.bloom import BloomFilter
from repro.util.sortedmultiset import SortedMultiset
from repro.util.statistics import geometric_mean, empirical_cdf

__all__ = ["BloomFilter", "SortedMultiset", "geometric_mean", "empirical_cdf"]
