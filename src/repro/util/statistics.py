"""Statistical helpers shared by the analysis framework and experiments."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper reports geomean speedups).

    Raises
    ------
    ValueError
        If the input is empty or contains non-positive values.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def empirical_cdf(samples: Sequence[float], xs: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``samples`` at the points ``xs``.

    Returns ``P(sample <= x)`` for each ``x`` in ``xs``.
    """
    if len(samples) == 0:
        raise ValueError("empirical_cdf of empty sample set")
    sorted_samples = np.sort(np.asarray(samples, dtype=float))
    xs_arr = np.asarray(xs, dtype=float)
    counts = np.searchsorted(sorted_samples, xs_arr, side="right")
    return counts / len(sorted_samples)


def ks_distance(samples: Sequence[float], cdf) -> float:
    """Kolmogorov-Smirnov distance between samples and an analytic CDF.

    ``cdf`` is a callable mapping x -> P(X <= x). Used to quantify how
    closely a cache design matches the uniformity assumption.
    """
    sorted_samples = np.sort(np.asarray(samples, dtype=float))
    n = len(sorted_samples)
    if n == 0:
        raise ValueError("ks_distance of empty sample set")
    theo = np.asarray([cdf(x) for x in sorted_samples])
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(max(np.max(np.abs(ecdf_hi - theo)), np.max(np.abs(theo - ecdf_lo))))
