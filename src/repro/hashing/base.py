"""Common protocol for cache index hash functions.

A hash function maps a block address (an arbitrary non-negative integer)
to a line index in ``[0, num_lines)``. Implementations must be
deterministic: the same address always maps to the same index, because a
block's only valid position in a way is the hash of its address.
"""

from __future__ import annotations

import abc


class HashFunction(abc.ABC):
    """Deterministic map from block address to line index.

    Parameters
    ----------
    num_lines:
        Size of the index space. Must be a power of two (hardware indexes
        are bit vectors) and at least 1.
    """

    def __init__(self, num_lines: int) -> None:
        if num_lines < 1:
            raise ValueError(f"num_lines must be >= 1, got {num_lines}")
        if num_lines & (num_lines - 1):
            raise ValueError(f"num_lines must be a power of two, got {num_lines}")
        self.num_lines = num_lines
        self.index_bits = num_lines.bit_length() - 1

    @abc.abstractmethod
    def __call__(self, address: int) -> int:
        """Return the line index for ``address`` in ``[0, num_lines)``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_lines={self.num_lines})"


def make_hash_family(
    kind: str, num_ways: int, num_lines: int, seed: int = 0
) -> list[HashFunction]:
    """Build one independent hash function per way.

    Parameters
    ----------
    kind:
        ``"h3"``, ``"bitsel"`` or ``"mix"``.
    num_ways:
        Number of functions to create. Each receives a distinct seed so
        the family members are pairwise independent (for ``"bitsel"``
        every way necessarily uses the same index bits, as in a
        conventional set-associative cache).
    num_lines:
        Lines per way.
    seed:
        Base seed; way ``w`` uses ``seed * 1000003 + w``.
    """
    from repro.hashing.bitsel import BitSelectHash
    from repro.hashing.h3 import H3Hash
    from repro.hashing.mixers import MixHash

    if num_ways < 1:
        raise ValueError(f"num_ways must be >= 1, got {num_ways}")
    funcs: list[HashFunction] = []
    for way in range(num_ways):
        way_seed = seed * 1000003 + way
        if kind == "h3":
            funcs.append(H3Hash(num_lines, seed=way_seed))
        elif kind == "bitsel":
            funcs.append(BitSelectHash(num_lines))
        elif kind == "mix":
            funcs.append(MixHash(num_lines, seed=way_seed))
        else:
            raise ValueError(f"unknown hash kind: {kind!r}")
    return funcs
