"""Bit-selection indexing: the conventional un-hashed set index.

A set-associative cache without index hashing uses the low-order bits of
the block address as the set index. Strided access patterns whose stride
is a multiple of ``num_lines`` therefore all collide in one set — the
pathology that hashing-based schemes avoid.
"""

from __future__ import annotations

from repro.hashing.base import HashFunction


class BitSelectHash(HashFunction):
    """Select the ``log2(num_lines)`` low-order bits of the address."""

    def __init__(self, num_lines: int) -> None:
        super().__init__(num_lines)
        self._mask = num_lines - 1

    def __call__(self, address: int) -> int:
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        return address & self._mask
