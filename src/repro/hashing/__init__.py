"""Hash function families used to index cache ways.

The paper indexes each zcache way with a different H3 hash function
(Carter & Wegman's universal family, implemented with a few XOR gates per
hash bit in hardware). This package provides:

- :class:`~repro.hashing.base.HashFunction` — the common protocol.
- :class:`~repro.hashing.h3.H3Hash` — the H3 universal family.
- :class:`~repro.hashing.bitsel.BitSelectHash` — plain bit selection,
  i.e. the conventional un-hashed set index.
- :class:`~repro.hashing.mixers.MixHash` — a strong 64-bit finalizer used
  as the paper's "SHA-1" stand-in for hash-quality sweeps.
- :func:`~repro.hashing.base.make_hash_family` — build one independent
  hash per way from a seed.
"""

from repro.hashing.base import HashFunction, make_hash_family
from repro.hashing.bitsel import BitSelectHash
from repro.hashing.h3 import H3Hash
from repro.hashing.mixers import MixHash

__all__ = [
    "HashFunction",
    "H3Hash",
    "BitSelectHash",
    "MixHash",
    "make_hash_family",
]
