"""Strong 64-bit mixing hash, the paper's "SHA-1" stand-in.

Section IV-C notes that replacing H3 with SHA-1 makes the measured
associativity distributions indistinguishable from the uniformity
assumption. Running an actual cryptographic hash per cache index is
pointless in simulation; a 64-bit finalizer (splitmix64 / murmur3-style
avalanche) has the same statistical behaviour for this purpose and is
orders of magnitude faster.
"""

from __future__ import annotations

from repro.hashing.base import HashFunction

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """One round of the splitmix64 finalizer (full 64-bit avalanche)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class MixHash(HashFunction):
    """High-quality hash: splitmix64 of (address XOR seeded offset)."""

    def __init__(self, num_lines: int, seed: int = 0) -> None:
        super().__init__(num_lines)
        # Derive a per-instance 64-bit tweak from the seed so different
        # ways produce independent indexes.
        self._tweak = splitmix64(seed & _MASK64) ^ splitmix64((seed >> 64) | 1)
        self._mask = num_lines - 1

    def __call__(self, address: int) -> int:
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        return splitmix64(address ^ self._tweak) & self._mask
