"""H3 universal hash family (Carter & Wegman, 1977).

An H3 function over ``b``-bit keys producing ``i``-bit indexes is defined
by an ``i x b`` binary matrix ``Q``: bit ``j`` of the output is the parity
(XOR-reduction) of ``key AND Q[j]``. In hardware each output bit costs a
few XOR gates; in Python we compute the parity with ``int.bit_count()``.

Because cache experiments hash the same addresses over and over (a
workload's footprint is finite), results are memoised per instance.
"""

from __future__ import annotations

import random

from repro.hashing.base import HashFunction

#: Number of address bits the matrix covers. 48 bits of block address is
#: plenty for simulated workloads (256 TB of cache-line address space).
ADDRESS_BITS = 48


class H3Hash(HashFunction):
    """One member of the H3 family, selected by ``seed``.

    Parameters
    ----------
    num_lines:
        Index space size (power of two).
    seed:
        Selects the random binary matrix. Two instances with different
        seeds are pairwise-independent hash functions.
    """

    def __init__(self, num_lines: int, seed: int = 0) -> None:
        super().__init__(num_lines)
        rng = random.Random(seed)
        # One random row (an ADDRESS_BITS-bit mask) per output bit. Rows
        # must be non-zero or the corresponding output bit is constant.
        self._rows: list[int] = []
        for _ in range(self.index_bits):
            row = 0
            while row == 0:
                row = rng.getrandbits(ADDRESS_BITS)
            self._rows.append(row)
        self.seed = seed
        self._memo: dict[int, int] = {}

    def __call__(self, address: int) -> int:
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        cached = self._memo.get(address)
        if cached is not None:
            return cached
        index = 0
        for bit, row in enumerate(self._rows):
            index |= ((address & row).bit_count() & 1) << bit
        self._memo[address] = index
        return index

    def matrix(self) -> list[int]:
        """Return the row masks defining this function (for inspection)."""
        return list(self._rows)

    def prime(self, addresses, indices) -> None:
        """Pre-fill the memo with externally computed (address, index) pairs.

        The ZTurbo replay driver hashes a trace's whole address roster in
        one vectorized pass (:func:`repro.kernels.h3.prime_h3`) and
        deposits the results here, so later scalar calls are dict hits.
        Callers are trusted to supply values equal to ``self(address)``;
        the kernel test suite asserts the vector path matches bit for bit.
        """
        memo = self._memo
        for address, index in zip(addresses, indices):
            memo[address] = index
