"""Command-line interface: ``zcache-repro <experiment> [options]``.

Examples::

    zcache-repro table2
    zcache-repro fig3 --instructions 4000
    zcache-repro fig4 --workloads canneal,cactusADM --instructions 5000
    zcache-repro roster
    zcache-repro lint src/repro
    zcache-repro lint --deep --fix src/repro
    zcache-repro check --sanitize
    zcache-repro stats fig2 --format json
    zcache-repro trace fig2 --instructions 2000
    zcache-repro timeline sweep --jobs 2 --out trace.json --critical-path
    zcache-repro sweep --jobs 4 --workloads canneal,gcc --checkpoint ck.json
    zcache-repro faults --campaign --minimize --jobs 2 --json faults.json
    zcache-repro serve --shards 8 --port 9401
    zcache-repro loadgen --workload canneal --workers 4 --sanitize

``lint`` and ``check`` are the correctness-tooling subcommands (the
ZSan static analyzer and the runtime invariant sanitizer; see
``docs/lint_rules.md``); ``stats`` and ``trace`` are the ZScope
observability subcommands (metrics snapshots and JSONL event traces;
see ``docs/observability.md``); everything else regenerates a paper
artifact.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import ExperimentScale


def _scale_from_args(args) -> ExperimentScale:
    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    return ExperimentScale(
        instructions_per_core=args.instructions,
        workloads=workloads,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # The analysis subcommands own their argument parsing (they take
    # paths and flags the experiment parser must not see).
    if argv and argv[0] == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])
    if argv and argv[0] == "check":
        from repro.analysis.cli import run_check

        return run_check(argv[1:])
    if argv and argv[0] == "stats":
        from repro.obs.cli import run_stats

        return run_stats(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import run_trace

        return run_trace(argv[1:])
    if argv and argv[0] == "timeline":
        from repro.obs.cli import run_timeline

        return run_timeline(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.experiments.parallel import run_sweep_cli

        return run_sweep_cli(argv[1:])
    if argv and argv[0] == "faults":
        from repro.faults.cli import run_faults_cli

        return run_faults_cli(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import run_serve_cli

        return run_serve_cli(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.serve.cli import run_loadgen_cli

        return run_loadgen_cli(argv[1:])
    parser = argparse.ArgumentParser(
        prog="zcache-repro",
        description="Reproduce the tables and figures of the zcache paper "
        "(Sanchez & Kozyrakis, MICRO 2010).",
        epilog="Additional subcommands: 'zcache-repro lint [paths...]' "
        "(ZSan static analysis, rules ZS001-ZS006; add --deep for the "
        "ZProve whole-program rules ZS101-ZS109 and --fix for "
        "mechanical repairs), 'zcache-repro "
        "check --sanitize' (runtime invariant sanitizer; --model for "
        "the exhaustive bounded model checker), 'zcache-repro "
        "stats <experiment>' (ZScope metrics snapshot), 'zcache-repro "
        "trace <experiment>' (JSONL event trace + offline summary), "
        "'zcache-repro timeline <experiment> [--jobs N]' (ZTrace span "
        "timeline: Perfetto trace-event export + critical-path report) "
        "and 'zcache-repro sweep --jobs N' (parallel design sweep with "
        "checkpoint/resume); 'zcache-repro faults --campaign' runs the "
        "ZFault resilience campaign (deterministic fault injection under "
        "the sanitizer; --minimize for minimal-fault search); "
        "'zcache-repro serve' boots the ZServe "
        "concurrent key-value cache over TCP and 'zcache-repro loadgen' "
        "replays a workload proxy against it, reporting throughput and "
        "latency percentiles; each has its own --help.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "table1", "table2", "bandwidth", "merit", "buffering",
            "conflict", "hashquality", "pressure", "roster",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--instructions", type=int, default=6_000,
        help="instructions per core per workload (default 6000)",
    )
    parser.add_argument(
        "--workloads", type=str, default=None,
        help="comma-separated workload subset (default: all 72)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--engine", choices=("reference", "turbo"), default="reference",
        help="cache access engine: 'turbo' runs the ZTurbo vectorized "
        "kernels where supported (bit-identical results; currently "
        "honoured by fig2)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write structured results as JSON (simulation "
        "experiments: fig3/fig4/fig5/bandwidth)",
    )
    parser.add_argument(
        "--svg", type=str, default=None, metavar="DIR",
        help="also render figures as SVG into DIR (fig2/fig3/fig4/fig5)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "roster":
        from repro.workloads import WORKLOADS

        for spec in WORKLOADS.values():
            print(spec.describe())
        return 0
    if args.experiment == "fig1":
        from repro.experiments import fig1

        fig1.main()
        return 0
    if args.experiment == "fig2":
        from repro.experiments import fig2

        result = fig2.run(engine=args.engine)
        for line in result.rows():
            print(line)
        if args.svg:
            from repro.viz import fig2_svg

            for path in fig2_svg(args.svg, result):
                print(f"SVG written to {path}")
        return 0
    if args.experiment == "buffering":
        from repro.experiments import buffering

        buffering.main()
        return 0
    if args.experiment == "conflict":
        from repro.experiments import conflict

        conflict.main()
        return 0
    if args.experiment == "hashquality":
        from repro.experiments import hashquality

        hashquality.main()
        return 0
    if args.experiment == "pressure":
        from repro.experiments import pressure

        pressure.main()
        return 0
    if args.experiment == "table1":
        from repro.experiments import table1

        table1.main()
        return 0
    if args.experiment == "table2":
        from repro.experiments import table2

        table2.main()
        return 0
    if args.experiment == "merit":
        from repro.experiments import merit

        merit.main()
        return 0

    scale = _scale_from_args(args)
    payload = None
    if args.experiment == "fig3":
        from repro.experiments import fig3

        cells = fig3.run(scale=scale)
        for cell in cells:
            print(cell.row())
        if args.svg:
            from repro.viz import fig3_svg

            for path in fig3_svg(args.svg, cells):
                print(f"SVG written to {path}")
        payload = [
            {
                "panel": c.panel,
                "design": c.design,
                "workload": c.workload,
                "candidates": c.candidates,
                **c.distribution.summary(),
            }
            for c in cells
        ]
    elif args.experiment == "fig4":
        from repro.experiments import fig4

        result = fig4.run(scale=scale)
        for s in sorted(
            result.series, key=lambda s: (s.metric, s.policy, s.design)
        ):
            print(s.row())
        if args.svg:
            from repro.viz import fig4_svg

            for policy in {s.policy for s in result.series}:
                for path in fig4_svg(args.svg, result, policy=policy):
                    print(f"SVG written to {path}")
        payload = [
            {
                "metric": s.metric,
                "policy": s.policy,
                "design": s.design,
                "points": s.points,
                "geomean": s.geomean(),
            }
            for s in result.series
        ]
    elif args.experiment == "fig5":
        from repro.experiments import fig5

        cells = fig5.run(scale=scale)
        for cell in cells:
            print(cell.row())
        if args.svg:
            from repro.viz import fig5_svg

            for policy in {c.policy for c in cells}:
                for path in fig5_svg(args.svg, cells, policy=policy):
                    print(f"SVG written to {path}")
        payload = [vars(c) for c in cells]
    elif args.experiment == "bandwidth":
        from repro.experiments import bandwidth

        points = bandwidth.run(scale=scale)
        for p in sorted(points, key=lambda p: p.misses_per_cycle_per_bank):
            print(p.row())
        payload = [vars(p) for p in points]
    if args.json and payload is not None:
        import json

        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
