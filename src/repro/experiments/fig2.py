"""Fig. 2: associativity CDFs under the uniformity assumption.

``F_A(x) = x^n`` for n in {4, 8, 16, 64}, evaluated on a grid, in both
linear and semi-log form — plus the experimental validation of Section
IV-B: a random-candidates cache simulated for each n must land on the
analytic curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.assoc import TrackedPolicy, uniformity_cdf
from repro.core import Cache, RandomCandidatesArray
from repro.obs import NULL_SPANS, ObsContext
from repro.replacement import LRU

CANDIDATE_COUNTS = (4, 8, 16, 64)


@dataclass
class Fig2Result:
    xs: np.ndarray
    #: n -> analytic CDF values on xs
    analytic: dict
    #: n -> (empirical CDF values on xs, KS distance to analytic)
    simulated: dict

    def rows(self) -> list[str]:
        """Formatted report lines: CDF table plus KS distances."""
        out = ["Fig.2: associativity CDFs F_A(x) = x^n (analytic vs simulated)"]
        header = "x      " + "".join(
            f"  n={n}:ana/sim " for n in sorted(self.analytic)
        )
        out.append(header)
        for i, x in enumerate(self.xs):
            if i % max(1, len(self.xs) // 12):
                continue
            cells = []
            for n in sorted(self.analytic):
                cells.append(
                    f"  {self.analytic[n][i]:.4f}/{self.simulated[n][0][i]:.4f}"
                )
            out.append(f"{x:5.2f} " + "".join(cells))
        for n in sorted(self.simulated):
            out.append(f"KS(n={n}) = {self.simulated[n][1]:.4f}")
        return out


def run(
    cache_blocks: int = 2048,
    accesses: int = 60_000,
    footprint_mult: int = 8,
    seed: int = 0,
    wrap_array: Optional[Callable] = None,
    obs: Optional[ObsContext] = None,
    engine: str = "reference",
) -> Fig2Result:
    """Generate Fig. 2's curves and validate them by simulation.

    ``wrap_array`` optionally wraps each simulated array before it is
    handed to the controller — the hook ``zcache-repro check
    --sanitize`` uses to run this experiment under the runtime
    invariant sanitizer without perturbing it. ``obs`` threads an
    observability context through: each n's cache registers metrics
    under an ``n<N>`` scope and emits trace events through the shared
    bus (labelled ``n4``, ``n8``, ...), which is how the eviction
    CDFs become reconstructible from a JSONL trace. ``engine="turbo"``
    runs each cache on the ZTurbo vectorized core and pre-draws the
    whole access stream in bulk; results are bit-identical to the
    reference engine.
    """
    xs = np.linspace(0.0, 1.0, 101)
    analytic = {}
    simulated = {}
    profiler = obs.profiler if obs is not None else None
    spans = obs.spans if obs is not None else NULL_SPANS
    with spans.span("fig2", accesses=accesses, engine=engine):
        for n in CANDIDATE_COUNTS:
            # The whole per-n iteration sits under one span — the turbo
            # path pre-draws its access stream in bulk, and that setup
            # cost belongs to the n it serves.
            with spans.span(f"fig2.n{n}", candidates=n):
                cdf = uniformity_cdf(n)
                analytic[n] = np.array([cdf(x) for x in xs])
                tracked = TrackedPolicy(LRU())
                array = RandomCandidatesArray(cache_blocks, n, seed=seed + n)
                if wrap_array is not None:
                    array = wrap_array(array)
                cache = Cache(
                    array,
                    tracked,
                    name=f"n{n}",
                    obs=obs.scoped(f"n{n}") if obs is not None else None,
                    engine=engine,
                )
                rng = random.Random(seed + n)
                footprint = cache_blocks * footprint_mult
                if cache.engine == "turbo":
                    from repro.kernels.replay import fig2_addresses

                    stream = iter(fig2_addresses(rng, footprint, accesses))
                else:
                    stream = iter(
                        rng.randrange(footprint) for _ in range(accesses)
                    )
                # Turbo path: roll one child span per access batch via
                # the TurboCore hook (no-op on the reference engine or
                # with spans disabled).
                with spans.turbo_batches(
                    getattr(cache, "_turbo", None),
                    f"fig2.n{n}",
                    every=max(1, accesses // 8),
                ):
                    if profiler is not None:
                        with profiler.phase(f"fig2.n{n}"):
                            for address in stream:
                                cache.access(address)
                    else:
                        for address in stream:
                            cache.access(address)
                dist = tracked.distribution()
                simulated[n] = (dist.cdf(xs), dist.ks_to_uniformity(n))
    return Fig2Result(xs=xs, analytic=analytic, simulated=simulated)


def main() -> None:
    """Print the Fig. 2 curves and validation."""
    for line in run().rows():
        print(line)


if __name__ == "__main__":
    main()
