"""Shared experiment infrastructure: design lists, sweep runner, scaling."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.obs import (
    NULL_PHASE_TIMER,
    NULL_SPANS,
    Heartbeat,
    ObsContext,
    sanitize_component,
)
from repro.sim import CMPConfig, L2DesignConfig, TraceDrivenRunner
from repro.workloads import WORKLOADS, get_workload


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run an experiment.

    ``instructions_per_core`` drives simulation length; ``workloads``
    restricts the roster (None = all 72). Benches use small scales; the
    EXPERIMENTS.md numbers use the defaults.
    """

    instructions_per_core: int = 6_000
    workloads: Optional[tuple[str, ...]] = None
    seed: int = 1

    def workload_names(self) -> list[str]:
        """The workload roster this scale covers."""
        if self.workloads is None:
            return list(WORKLOADS)
        return list(self.workloads)


def baseline_design(parallel: bool = False) -> L2DesignConfig:
    """The paper's baseline: 4-way set-associative with H3 hashing."""
    return L2DesignConfig(kind="sa", ways=4, hash_kind="h3", parallel_lookup=parallel)


#: Fig. 4's design sweep (all serial lookup; the baseline comes first).
DESIGNS_FIG4: tuple[L2DesignConfig, ...] = (
    baseline_design(),
    L2DesignConfig(kind="sa", ways=16, hash_kind="h3"),
    L2DesignConfig(kind="sa", ways=32, hash_kind="h3"),
    L2DesignConfig(kind="skew", ways=4),  # Z4/4
    L2DesignConfig(kind="z", ways=4, levels=2),  # Z4/16
    L2DesignConfig(kind="z", ways=4, levels=3),  # Z4/52
)


def representative_workloads() -> list[str]:
    """Fig. 5's five representative applications."""
    return ["blackscholes", "gamess", "cpu2K6rand0", "canneal", "cactusADM"]


@dataclass
class SweepResult:
    """Results of one workload across several designs/policies."""

    workload: str
    #: (design label, policy) -> CMPResult
    results: dict = field(default_factory=dict)


def run_design_sweep(
    workload_name: str,
    designs: Iterable[L2DesignConfig],
    policies: Iterable[str] = ("lru",),
    scale: ExperimentScale = ExperimentScale(),
    cfg: Optional[CMPConfig] = None,
    policy_wrapper=None,
    obs: Optional[ObsContext] = None,
    jobs: int = 1,
    engine: Optional[str] = None,
) -> SweepResult:
    """Capture a workload's L2 stream once, replay it per design/policy.

    OPT policies are supported (the captured stream provides the future
    trace). Returns a :class:`SweepResult` keyed by (design label,
    policy name).

    ``jobs > 1`` fans the (design, policy) replays across that many
    worker processes via :mod:`repro.experiments.parallel`; results are
    bit-identical to the serial path (replay is deterministic given the
    captured trace) and worker metrics merge back into ``obs`` under
    the same per-design scopes the serial path uses.

    When an :class:`~repro.obs.ObsContext` is given, the capture and
    each replay run under its phase timer (``capture``,
    ``replay.<design>.<policy>``), each replay's metrics register under
    a per-design scope, and the context's heartbeat records progress.
    Without one, a heartbeat is still honoured if the
    ``ZCACHE_PROGRESS_LOG`` environment variable names a log file.

    ``engine`` (``"reference"`` / ``"turbo"``) overrides ``cfg.engine``
    for every replayed bank — a convenience so callers don't have to
    rebuild the :class:`~repro.sim.CMPConfig` to switch engines.
    """
    cfg = cfg or CMPConfig()
    if engine is not None:
        cfg = replace(cfg, engine=engine)
    if jobs > 1:
        from repro.experiments.parallel import run_parallel_sweeps

        outcome = run_parallel_sweeps(
            workloads=[workload_name],
            designs=designs,
            policies=policies,
            scale=scale,
            cfg=cfg,
            jobs=jobs,
            obs=obs,
            policy_wrapper=policy_wrapper,
            scope_workloads=False,
        )
        return outcome.sweeps[workload_name]
    workload = get_workload(workload_name)
    profiler = obs.profiler if obs is not None else NULL_PHASE_TIMER
    heartbeat = obs.heartbeat if obs is not None else Heartbeat.from_env()
    spans = obs.spans if obs is not None else NULL_SPANS
    runner = TraceDrivenRunner(
        cfg,
        workload,
        instructions_per_core=scale.instructions_per_core,
        seed=scale.seed,
    )
    with spans.span("sweep", workload=workload_name):
        with profiler.phase("capture"):
            with spans.span("capture", workload=workload_name):
                runner.capture()
        heartbeat.beat(f"{workload_name}: captured L2 stream")
        sweep = SweepResult(workload=workload_name)
        jobs = [(d, p) for d in designs for p in policies]
        for done, (design, policy) in enumerate(jobs, start=1):
            design_cfg = cfg.with_design(replace(design, policy=policy))
            scope = f"{sanitize_component(design.label())}.{policy}"
            with profiler.phase(f"replay.{scope}"):
                with spans.span(f"job.{scope}", design=design.label(),
                                policy=policy):
                    result = runner.replay(
                        design_cfg,
                        policy_wrapper=policy_wrapper,
                        obs=obs.scoped(scope) if obs is not None else None,
                    )
            sweep.results[(design.label(), policy)] = result
            heartbeat.beat(
                f"{workload_name}: replayed {design.label()}/{policy}",
                done=done,
                total=len(jobs),
            )
    return sweep


def collect_design_sweeps(
    workloads: Iterable[str],
    designs: Iterable[L2DesignConfig],
    policies: Iterable[str] = ("lru",),
    scale: ExperimentScale = ExperimentScale(),
    cfg: Optional[CMPConfig] = None,
    jobs: int = 1,
    obs: Optional[ObsContext] = None,
    engine: Optional[str] = None,
) -> dict:
    """Sweep several workloads; returns workload name -> SweepResult.

    With ``jobs > 1`` the full (workload x design x policy) product fans
    across worker processes (:mod:`repro.experiments.parallel`), which
    is how ``scripts_run_all.py`` and the figure sweeps parallelise;
    with ``jobs == 1`` it is a plain loop over :func:`run_design_sweep`.
    Both paths produce bit-identical results.
    """
    workloads = list(workloads)
    designs = list(designs)
    if engine is not None:
        cfg = replace(cfg or CMPConfig(), engine=engine)
    if jobs > 1:
        from repro.experiments.parallel import run_parallel_sweeps

        outcome = run_parallel_sweeps(
            workloads=workloads,
            designs=designs,
            policies=policies,
            scale=scale,
            cfg=cfg,
            jobs=jobs,
            obs=obs,
        )
        return outcome.sweeps
    return {
        w: run_design_sweep(
            w, designs, policies=policies, scale=scale, cfg=cfg, obs=obs
        )
        for w in workloads
    }


def improvement(base: float, value: float) -> float:
    """Fractional improvement as the paper plots it.

    For MPKI: base/value (1.2 = 1.2x fewer misses). For IPC the caller
    passes value/base instead.
    """
    if value == 0:
        return float("inf") if base > 0 else 1.0
    return base / value
