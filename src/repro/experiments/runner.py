"""Shared experiment infrastructure: design lists, sweep runner, scaling."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.sim import CMPConfig, L2DesignConfig, TraceDrivenRunner
from repro.workloads import WORKLOADS, get_workload


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run an experiment.

    ``instructions_per_core`` drives simulation length; ``workloads``
    restricts the roster (None = all 72). Benches use small scales; the
    EXPERIMENTS.md numbers use the defaults.
    """

    instructions_per_core: int = 6_000
    workloads: Optional[tuple[str, ...]] = None
    seed: int = 1

    def workload_names(self) -> list[str]:
        """The workload roster this scale covers."""
        if self.workloads is None:
            return list(WORKLOADS)
        return list(self.workloads)


def baseline_design(parallel: bool = False) -> L2DesignConfig:
    """The paper's baseline: 4-way set-associative with H3 hashing."""
    return L2DesignConfig(kind="sa", ways=4, hash_kind="h3", parallel_lookup=parallel)


#: Fig. 4's design sweep (all serial lookup; the baseline comes first).
DESIGNS_FIG4: tuple[L2DesignConfig, ...] = (
    baseline_design(),
    L2DesignConfig(kind="sa", ways=16, hash_kind="h3"),
    L2DesignConfig(kind="sa", ways=32, hash_kind="h3"),
    L2DesignConfig(kind="skew", ways=4),  # Z4/4
    L2DesignConfig(kind="z", ways=4, levels=2),  # Z4/16
    L2DesignConfig(kind="z", ways=4, levels=3),  # Z4/52
)


def representative_workloads() -> list[str]:
    """Fig. 5's five representative applications."""
    return ["blackscholes", "gamess", "cpu2K6rand0", "canneal", "cactusADM"]


@dataclass
class SweepResult:
    """Results of one workload across several designs/policies."""

    workload: str
    #: (design label, policy) -> CMPResult
    results: dict = field(default_factory=dict)


def run_design_sweep(
    workload_name: str,
    designs: Iterable[L2DesignConfig],
    policies: Iterable[str] = ("lru",),
    scale: ExperimentScale = ExperimentScale(),
    cfg: Optional[CMPConfig] = None,
    policy_wrapper=None,
) -> SweepResult:
    """Capture a workload's L2 stream once, replay it per design/policy.

    OPT policies are supported (the captured stream provides the future
    trace). Returns a :class:`SweepResult` keyed by (design label,
    policy name).
    """
    cfg = cfg or CMPConfig()
    workload = get_workload(workload_name)
    runner = TraceDrivenRunner(
        cfg,
        workload,
        instructions_per_core=scale.instructions_per_core,
        seed=scale.seed,
    )
    runner.capture()
    sweep = SweepResult(workload=workload_name)
    for design in designs:
        for policy in policies:
            design_cfg = cfg.with_design(replace(design, policy=policy))
            result = runner.replay(design_cfg, policy_wrapper=policy_wrapper)
            sweep.results[(design.label(), policy)] = result
    return sweep


def improvement(base: float, value: float) -> float:
    """Fractional improvement as the paper plots it.

    For MPKI: base/value (1.2 = 1.2x fewer misses). For IPC the caller
    passes value/base instead.
    """
    if value == 0:
        return float("inf") if base > 0 else 1.0
    return base / value
