"""Section I motivation experiment: buffering (pinned-block) capacity.

The introduction argues that TM / speculation / replay / monitoring
systems need associativity because they pin blocks in the cache, and
"low associativity makes it difficult to buffer large sets of blocks".
This experiment quantifies it: pin uniformly random blocks until the
first overflow (the fall-back event) and report the usable fraction of
capacity per design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import (
    Cache,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from repro.replacement import LRU


@dataclass
class BufferingPoint:
    design: str
    capacity: int
    pinnable_mean: float
    pinnable_min: int
    pinnable_max: int

    @property
    def fraction(self) -> float:
        return self.pinnable_mean / self.capacity

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.design:14s} pinnable={self.pinnable_mean:7.1f} "
            f"({self.fraction:5.1%} of {self.capacity}) "
            f"range=[{self.pinnable_min}, {self.pinnable_max}]"
        )


def _designs(blocks: int):
    return [
        ("SA-4", lambda s: SetAssociativeArray(4, blocks // 4)),
        (
            "SA-4h",
            lambda s: SetAssociativeArray(
                4, blocks // 4, hash_kind="h3", hash_seed=s
            ),
        ),
        (
            "SA-32h",
            lambda s: SetAssociativeArray(
                32, blocks // 32, hash_kind="h3", hash_seed=s
            ),
        ),
        ("SK-4", lambda s: SkewAssociativeArray(4, blocks // 4, hash_seed=s)),
        ("Z4/16", lambda s: ZCacheArray(4, blocks // 4, levels=2, hash_seed=s)),
        ("Z4/52", lambda s: ZCacheArray(4, blocks // 4, levels=3, hash_seed=s)),
    ]


def pinnable_blocks(array_factory, seed: int) -> int:
    """Pin random write-set blocks until the first overflow."""
    cache = Cache(array_factory(seed), LRU())
    rng = random.Random(seed)
    pinned = 0
    while True:
        result = cache.access(rng.randrange(1 << 30), is_write=True)
        if result.bypassed:
            return pinned
        cache.pin(result.address)
        pinned += 1


def run(blocks: int = 1024, trials: int = 5) -> list[BufferingPoint]:
    """Measure pinnable capacity for every design."""
    if blocks < 64 or blocks % 32:
        raise ValueError("blocks must be a multiple of 32, at least 64")
    points = []
    for name, factory in _designs(blocks):
        counts = [pinnable_blocks(factory, seed) for seed in range(trials)]
        points.append(
            BufferingPoint(
                design=name,
                capacity=blocks,
                pinnable_mean=sum(counts) / len(counts),
                pinnable_min=min(counts),
                pinnable_max=max(counts),
            )
        )
    return points


def main() -> None:
    """Print the buffering-capacity report."""
    print("Section I: blocks pinnable before overflow (buffering capacity)")
    for point in run():
        print("  " + point.row())


if __name__ == "__main__":
    main()
