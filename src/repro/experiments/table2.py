"""Table II: timing, area and power of set-associative caches vs zcaches.

Regenerates the table from the analytical array model and checks the
paper's headline ratios. The ``mean_relocations`` input can come from a
simulation (``repro.experiments.merit`` reports measured values); the
default of 1.0 reflects the measured Z4/52 average under LRU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import CacheCostModel, table2_rows


@dataclass
class Table2Checks:
    serial_hit_ratio_32_vs_4: float
    parallel_hit_ratio_32_vs_4: float
    serial_latency_ratio_32_vs_4: float
    parallel_latency_ratio_32_vs_4: float
    area_ratio_32_vs_4: float
    z52_vs_sa32_miss_energy: float
    z52_keeps_4way_hit_energy: bool
    z52_keeps_4way_latency: bool


def checks(capacity_bytes: int = 1 << 20, mean_relocations: float = 1.0) -> Table2Checks:
    """Compute the headline Table II ratios for assertion/report."""
    s4 = CacheCostModel(capacity_bytes, 4)
    s32 = CacheCostModel(capacity_bytes, 32)
    p4 = CacheCostModel(capacity_bytes, 4, parallel_lookup=True)
    p32 = CacheCostModel(capacity_bytes, 32, parallel_lookup=True)
    z52 = CacheCostModel(
        capacity_bytes, 4, levels=3, mean_relocations=mean_relocations
    )
    return Table2Checks(
        serial_hit_ratio_32_vs_4=s32.hit_energy() / s4.hit_energy(),
        parallel_hit_ratio_32_vs_4=p32.hit_energy() / p4.hit_energy(),
        serial_latency_ratio_32_vs_4=(
            s32.hit_latency_cycles() / s4.hit_latency_cycles()
        ),
        parallel_latency_ratio_32_vs_4=(
            p32.hit_latency_cycles() / p4.hit_latency_cycles()
        ),
        area_ratio_32_vs_4=s32.area_mm2() / s4.area_mm2(),
        z52_vs_sa32_miss_energy=z52.miss_energy() / s32.miss_energy(),
        z52_keeps_4way_hit_energy=abs(z52.hit_energy() - s4.hit_energy()) < 1e-9,
        z52_keeps_4way_latency=(
            z52.hit_latency_cycles() == s4.hit_latency_cycles()
        ),
    )


def main(capacity_bytes: int = 1 << 20, mean_relocations: float = 1.0) -> None:
    """Print Table II and its headline-ratio checks."""
    print(f"Table II: cache designs at {capacity_bytes / (1 << 20):.0f} MB per bank")
    for row in table2_rows(capacity_bytes, mean_relocations):
        print("  " + row.format())
    c = checks(capacity_bytes, mean_relocations)
    print("Headline ratios (paper values in parentheses):")
    print(f"  serial hit energy 32w/4w   = {c.serial_hit_ratio_32_vs_4:.2f}x (2.0x)")
    print(f"  parallel hit energy 32w/4w = {c.parallel_hit_ratio_32_vs_4:.2f}x (3.3x)")
    print(f"  serial latency 32w/4w      = {c.serial_latency_ratio_32_vs_4:.2f}x (1.23x)")
    print(f"  parallel latency 32w/4w    = {c.parallel_latency_ratio_32_vs_4:.2f}x (1.32x)")
    print(f"  area 32w/4w                = {c.area_ratio_32_vs_4:.2f}x (1.22x)")
    print(f"  Z4/52 vs SA-32 miss energy = {c.z52_vs_sa32_miss_energy:.2f}x (~1.3x)")


if __name__ == "__main__":
    main()
