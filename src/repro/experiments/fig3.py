"""Fig. 3: associativity distributions of real cache designs at the L2.

Four panels, each measured over the paper's six representative
applications (wupwise, apsi, mgrid, canneal, fluidanimate,
blackscholes), with the uniformity-assumption curve as reference:

- (a) set-associative, 4 and 16 ways, un-hashed index;
- (b) set-associative with H3 index hashing;
- (c) skew-associative, 4 and 16 ways;
- (d) zcache, 4 ways, 2- and 3-level walks.

The measurement instruments the CMP simulator's L2 banks with
:class:`~repro.assoc.measurement.TrackedPolicy` and pools eviction
priorities across banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assoc import AssociativityDistribution, TrackedPolicy, expected_priority
from repro.experiments.runner import ExperimentScale, run_design_sweep
from repro.sim import L2DesignConfig

FIG3_WORKLOADS = (
    "wupwise",
    "apsi",
    "mgrid",
    "canneal",
    "fluidanimate",
    "blackscholes",
)

PANELS: dict[str, tuple[L2DesignConfig, ...]] = {
    "a: set-assoc (no hash)": (
        L2DesignConfig(kind="sa", ways=4, hash_kind="bitsel"),
        L2DesignConfig(kind="sa", ways=16, hash_kind="bitsel"),
    ),
    "b: set-assoc (H3 hash)": (
        L2DesignConfig(kind="sa", ways=4, hash_kind="h3"),
        L2DesignConfig(kind="sa", ways=16, hash_kind="h3"),
    ),
    "c: skew-associative": (
        L2DesignConfig(kind="skew", ways=4),
        L2DesignConfig(kind="skew", ways=16),
    ),
    "d: zcache (4-way)": (
        L2DesignConfig(kind="z", ways=4, levels=2),
        L2DesignConfig(kind="z", ways=4, levels=3),
    ),
}


@dataclass
class Fig3Cell:
    panel: str
    design: str
    workload: str
    candidates: int
    distribution: AssociativityDistribution

    def row(self) -> str:
        """One formatted report line."""
        d = self.distribution
        return (
            f"{self.panel:24s} {self.design:10s} {self.workload:14s} "
            f"n={self.candidates:<3d} mean={d.mean():.4f} "
            f"(uniformity {expected_priority(self.candidates):.4f}) "
            f"effn={d.effective_candidates():6.1f} "
            f"KS={d.ks_to_uniformity(self.candidates):.3f}"
        )


def _design_candidates(design: L2DesignConfig) -> int:
    from repro.core.zcache import replacement_candidates

    if design.kind == "z":
        return replacement_candidates(design.ways, design.levels)
    return design.ways


def run(
    scale: ExperimentScale = ExperimentScale(instructions_per_core=6_000),
    workloads=None,
) -> list[Fig3Cell]:
    """Measure all four panels; returns one cell per (design, workload).

    ``workloads`` defaults to the paper's six Fig. 3 applications unless
    the scale restricts the roster.
    """
    if workloads is None:
        workloads = scale.workloads if scale.workloads else FIG3_WORKLOADS
    cells: list[Fig3Cell] = []
    for workload in workloads:
        for panel, designs in PANELS.items():
            sweep = run_design_sweep(
                workload,
                designs,
                policies=("lru",),
                scale=scale,
                policy_wrapper=TrackedPolicy,
            )
            for design in designs:
                result = sweep.results[(design.label(), "lru")]
                if not result.eviction_priorities:
                    continue
                cells.append(
                    Fig3Cell(
                        panel=panel,
                        design=design.label(),
                        workload=workload,
                        candidates=_design_candidates(design),
                        distribution=AssociativityDistribution(
                            result.eviction_priorities
                        ),
                    )
                )
    return cells


def main() -> None:
    """Print the Fig. 3 distribution summaries."""
    print("Fig.3: associativity distributions (eviction-priority summary)")
    for cell in run():
        print(cell.row())


if __name__ == "__main__":
    main()
