"""Section IV-C's closing observation: hash quality and way count.

"The small differences observed between applications decrease by either
increasing the number of ways (and hash functions) or improving the
quality of hash functions (the same experiments using more complex
SHA-1 hash functions instead of H3 yield distributions identical to the
uniformity assumption)."

This experiment sweeps index-hash quality (bit-selection → H3 → strong
64-bit mixer as the SHA-1 stand-in) and way count for skew caches, and
reports each configuration's distance from uniformity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.assoc import TrackedPolicy
from repro.core import Cache, SkewAssociativeArray
from repro.replacement import LRU

BLOCKS = 2048


@dataclass
class HashQualityPoint:
    hash_kind: str
    ways: int
    ks: float
    effective_candidates: float

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.hash_kind:7s} W={self.ways:<2d} "
            f"KS={self.ks:.4f} effn={self.effective_candidates:6.2f}"
        )


def _trace(n: int, seed: int):
    """Mixed strided + zipf traffic: stresses weak index functions."""
    from repro.workloads.patterns import mixed, strided, zipf

    import itertools

    parts = [
        (0.5, zipf(BLOCKS * 4, skew=1.1, seed=seed)),
        (0.5, strided(BLOCKS * 4, stride=64, start=seed)),
    ]
    return itertools.islice(mixed(parts, seed=seed), n)


def run(
    accesses: int = 120_000,
    hash_kinds=("bitsel", "h3", "mix"),
    way_counts=(2, 4, 8),
    seed: int = 3,
) -> list[HashQualityPoint]:
    """Sweep hash kinds x way counts; one point per configuration."""
    points = []
    for kind in hash_kinds:
        for ways in way_counts:
            tracked = TrackedPolicy(LRU())
            cache = Cache(
                SkewAssociativeArray(
                    ways, BLOCKS // ways, hash_kind=kind, hash_seed=seed
                ),
                tracked,
            )
            for addr in _trace(accesses, seed):
                cache.access(addr)
            dist = tracked.distribution()
            points.append(
                HashQualityPoint(
                    hash_kind=kind,
                    ways=ways,
                    ks=dist.ks_to_uniformity(ways),
                    effective_candidates=dist.effective_candidates(),
                )
            )
    return points


def main() -> None:
    """Print the hash-quality sweep."""
    print("Section IV-C: distance from uniformity vs hash quality and ways")
    print("(skew-associative caches; bitsel degenerates to set-associative)")
    for p in run():
        print("  " + p.row())
    print(
        "-> better hashes and more ways both pull the distribution toward "
        "x^n, as the paper reports."
    )


if __name__ == "__main__":
    main()
