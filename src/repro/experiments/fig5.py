"""Fig. 5: IPC and energy efficiency, serial vs. parallel lookups.

All results are normalised to the serial-lookup, H3-hashed 4-way
set-associative baseline. For each design (serial and parallel variants
of SA-4, SA-16, SA-32, Z4/4, Z4/16, Z4/52) and both policies, the
experiment reports IPC and BIPS/W improvements for the paper's five
representative applications plus the geometric means over the full
roster and over the 10 workloads with the highest baseline L2 MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.energy import CacheCostModel, ChipPowerModel
from repro.experiments.runner import (
    ExperimentScale,
    baseline_design,
    collect_design_sweeps,
    representative_workloads,
)
from repro.obs import ObsContext
from repro.sim import CMPConfig, L2DesignConfig
from repro.sim.cmp import CMPResult
from repro.util.statistics import geometric_mean


def fig5_designs() -> list[L2DesignConfig]:
    """The serial and parallel design matrix of Fig. 5."""
    designs = []
    for parallel in (False, True):
        designs.append(baseline_design(parallel=parallel))
        for ways in (16, 32):
            designs.append(
                L2DesignConfig(
                    kind="sa", ways=ways, hash_kind="h3", parallel_lookup=parallel
                )
            )
        designs.append(L2DesignConfig(kind="skew", ways=4, parallel_lookup=parallel))
        for levels in (2, 3):
            designs.append(
                L2DesignConfig(
                    kind="z", ways=4, levels=levels, parallel_lookup=parallel
                )
            )
    return designs


def energy_report(result: CMPResult, design: L2DesignConfig, cfg: CMPConfig):
    """System energy for one simulation, via the McPAT-like model."""
    bank_bytes = max(cfg.bank_blocks * cfg.line_bytes, 1 << 20)
    walk_stats_mean = 1.0
    if result.walk_tag_reads and result.l2_misses:
        walk_stats_mean = result.relocations / max(result.l2_misses, 1)
    cost = CacheCostModel(
        bank_bytes,
        design.ways,
        levels=design.levels if design.kind == "z" else None,
        parallel_lookup=design.parallel_lookup,
        mean_relocations=min(walk_stats_mean, max(design.levels - 1, 0)),
    )
    chip = ChipPowerModel(cost, num_cores=cfg.num_cores, num_banks=cfg.l2_banks)
    return chip.report(
        instructions=result.total_instructions,
        cycles=result.total_cycles,
        l1_accesses=result.l1_accesses,
        l2_hits=result.l2_hits,
        l2_misses=result.l2_misses,
        l2_writebacks=result.l2_writebacks,
        walk_tag_reads=result.walk_tag_reads,
        relocations=result.relocations,
    )


@dataclass
class Fig5Cell:
    design: str
    policy: str
    group: str  # workload name, "geomean-all", or "geomean-top10"
    ipc_improvement: float
    bips_per_watt_improvement: float

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.policy:3s} {self.design:11s} {self.group:16s} "
            f"IPC x{self.ipc_improvement:5.3f}  "
            f"BIPS/W x{self.bips_per_watt_improvement:5.3f}"
        )


def run(
    scale: ExperimentScale = ExperimentScale(),
    policies: tuple = ("lru",),
    cfg: CMPConfig | None = None,
    jobs: int = 1,
    obs: Optional[ObsContext] = None,
) -> list[Fig5Cell]:
    """Run the Fig. 5 sweep; one cell per design/policy/group.

    ``jobs > 1`` fans the replays across worker processes (bit-identical
    results, see :mod:`repro.experiments.parallel`). The optional
    ``obs`` context threads metrics, phase timings and ZTrace spans
    through the sweep.
    """
    cfg = cfg or CMPConfig()
    designs = fig5_designs()
    base_label = baseline_design(parallel=False).label()
    names = scale.workload_names()
    # per (design,policy) -> workload -> (ipc_imp, eff_imp); plus base MPKIs
    imps: dict = {}
    base_mpki: dict = {}
    sweeps = collect_design_sweeps(
        names, designs, policies=policies, scale=scale, jobs=jobs, obs=obs
    )
    for workload, sweep in sweeps.items():
        for policy in policies:
            base = sweep.results[(base_label, policy)]
            base_energy = energy_report(base, baseline_design(), cfg)
            base_mpki[(workload, policy)] = base.l2_mpki
            for design in designs:
                res = sweep.results[(design.label(), policy)]
                rep = energy_report(res, design, cfg)
                ipc_imp = (
                    res.aggregate_ipc / base.aggregate_ipc
                    if base.aggregate_ipc
                    else 1.0
                )
                eff_imp = (
                    rep.bips_per_watt / base_energy.bips_per_watt
                    if base_energy.bips_per_watt
                    else 1.0
                )
                imps.setdefault((design.label(), policy), {})[workload] = (
                    ipc_imp,
                    eff_imp,
                )
    cells: list[Fig5Cell] = []
    reps = [w for w in representative_workloads() if w in names]
    for policy in policies:
        ranked = sorted(
            names, key=lambda w: base_mpki[(w, policy)], reverse=True
        )
        top10 = ranked[: min(10, len(ranked))]
        for design in designs:
            per_wl = imps[(design.label(), policy)]
            for w in reps:
                cells.append(
                    Fig5Cell(
                        design=design.label(),
                        policy=policy,
                        group=w,
                        ipc_improvement=per_wl[w][0],
                        bips_per_watt_improvement=per_wl[w][1],
                    )
                )
            for group, members in (
                ("geomean-all", names),
                ("geomean-top10", top10),
            ):
                cells.append(
                    Fig5Cell(
                        design=design.label(),
                        policy=policy,
                        group=group,
                        ipc_improvement=geometric_mean(
                            [per_wl[w][0] for w in members]
                        ),
                        bips_per_watt_improvement=geometric_mean(
                            [per_wl[w][1] for w in members]
                        ),
                    )
                )
    return cells


def main() -> None:
    """Print the Fig. 5 improvement cells."""
    print("Fig.5: IPC and BIPS/W vs serial SA-4h baseline")
    for cell in run():
        print(cell.row())


if __name__ == "__main__":
    main()
