"""Fig. 4: L2 MPKI and IPC improvements over the hashed SA-4 baseline.

For every workload and both replacement policies (OPT in trace-driven
mode, then LRU), each design's improvement over the baseline is
computed; per design, workloads are sorted by improvement so every
series is monotonically increasing — exactly how the paper plots them.

Designs: SA-16, SA-32, Z4/4 (skew), Z4/16, Z4/52, all serial-lookup,
baseline SA-4 with H3 hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.runner import (
    DESIGNS_FIG4,
    ExperimentScale,
    collect_design_sweeps,
)
from repro.obs import ObsContext
from repro.util.statistics import geometric_mean


@dataclass
class Fig4Series:
    """One line in one panel: a design's sorted improvements."""

    design: str
    policy: str
    metric: str  # "mpki" | "ipc"
    #: (workload, improvement) sorted ascending by improvement
    points: list

    def values(self) -> list[float]:
        """The sorted improvement values."""
        return [v for _w, v in self.points]

    def geomean(self) -> float:
        """Geometric-mean improvement across workloads."""
        return geometric_mean(self.values())

    def row(self) -> str:
        """One formatted summary line for this series."""
        vals = self.values()
        return (
            f"{self.metric:4s} {self.policy:3s} {self.design:10s} "
            f"min={vals[0]:.3f} med={vals[len(vals) // 2]:.3f} "
            f"max={vals[-1]:.3f} geomean={self.geomean():.3f} "
            f"worse-than-base={sum(1 for v in vals if v < 0.999)}/{len(vals)}"
        )


@dataclass
class Fig4Result:
    series: list
    #: (workload, policy) -> {design: (mpki, ipc)}
    raw: dict

    def get(self, metric: str, policy: str, design: str) -> Fig4Series:
        """Look up one series by metric, policy and design label."""
        for s in self.series:
            if (s.metric, s.policy, s.design) == (metric, policy, design):
                return s
        raise KeyError((metric, policy, design))


def run(
    scale: ExperimentScale = ExperimentScale(),
    policies: tuple = ("opt", "lru"),
    jobs: int = 1,
    obs: Optional[ObsContext] = None,
) -> Fig4Result:
    """Run the Fig. 4 sweep. The baseline is DESIGNS_FIG4[0].

    ``jobs > 1`` fans the (workload, design, policy) replays across
    worker processes; results are bit-identical to a serial run. The
    optional ``obs`` context threads metrics, phase timings and ZTrace
    spans through the sweep (spans cross the process boundary when the
    context's tracker is enabled).
    """
    base_label = DESIGNS_FIG4[0].label()
    raw: dict = {}
    per_design: dict = {}
    sweeps = collect_design_sweeps(
        scale.workload_names(), DESIGNS_FIG4,
        policies=policies, scale=scale, jobs=jobs, obs=obs,
    )
    for workload, sweep in sweeps.items():
        for policy in policies:
            base = sweep.results[(base_label, policy)]
            raw[(workload, policy)] = {}
            for design in DESIGNS_FIG4:
                res = sweep.results[(design.label(), policy)]
                raw[(workload, policy)][design.label()] = (
                    res.l2_mpki,
                    res.aggregate_ipc,
                )
                if design.label() == base_label:
                    continue
                mpki_imp = (
                    base.l2_mpki / res.l2_mpki if res.l2_mpki > 0 else 1.0
                )
                ipc_imp = (
                    res.aggregate_ipc / base.aggregate_ipc
                    if base.aggregate_ipc > 0
                    else 1.0
                )
                per_design.setdefault(
                    ("mpki", policy, design.label()), []
                ).append((workload, mpki_imp))
                per_design.setdefault(("ipc", policy, design.label()), []).append(
                    (workload, ipc_imp)
                )
    series = [
        Fig4Series(
            design=design,
            policy=policy,
            metric=metric,
            points=sorted(points, key=lambda p: p[1]),
        )
        for (metric, policy, design), points in per_design.items()
    ]
    return Fig4Result(series=series, raw=raw)


def main() -> None:
    """Print the Fig. 4 series summaries."""
    result = run()
    print("Fig.4: improvements over serial SA-4 (H3-hashed) baseline")
    for metric in ("mpki", "ipc"):
        for policy in ("opt", "lru"):
            print(f"-- {metric.upper()} under {policy.upper()}:")
            for s in sorted(
                (s for s in result.series
                 if s.metric == metric and s.policy == policy),
                key=lambda s: s.design,
            ):
                print("   " + s.row())


if __name__ == "__main__":
    main()
