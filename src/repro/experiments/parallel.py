"""Parallel sweep engine: process-pool replay with deterministic merge.

The paper's LLC evaluation (Section VI) is a large outer product —
72 workloads x 6 designs x multiple policies — of *independent* replay
jobs: each replays one workload's L1-filtered stream against one L2
design under one policy, sharing no mutable state with any other job.
That independence (the same structural property that makes
address-partitioned cache state safe to run concurrently) makes the
sweep embarrassingly parallel, so this module fans it across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

1. **Capture once.** The parent captures each workload's stream with
   :meth:`~repro.sim.TraceDrivenRunner.capture` and ships the
   :class:`~repro.sim.cmp.CapturedTrace` to workers — workers never
   re-run the (expensive, design-independent) capture pass.
2. **Fan out.** Every (workload, design, policy) job is submitted with
   a deterministic per-job seed derived from the sweep seed and the job
   key, so a retried or resubmitted job can never drift from its first
   scheduling.
3. **Merge deterministically.** Each worker runs under a *private*
   :class:`~repro.obs.ObsContext`; on join, its metrics snapshot folds
   into the parent registry via
   :meth:`~repro.obs.MetricsRegistry.merge_snapshot` (additive, order
   independent), its phase timings fold into the parent profiler, and
   the parent heartbeat reports progress aggregated across workers.
   Replay itself is bit-deterministic given (trace, design, policy), so
   parallel results are identical to a serial run's.

Robustness is part of the contract:

- a per-job **timeout** (soft: the future stops being waited on, the
  worker is not killed) with one retry;
- **graceful degradation to serial**: a crashed worker pool — or a job
  that keeps failing — is marked in the outcome and the job re-runs in
  the parent process; the sweep always completes;
- a JSON **checkpoint** file, updated after every finished job, so an
  interrupted 72-workload sweep resumes without recomputing anything
  (stale checkpoints are detected by a sweep fingerprint and ignored).

When the parent context carries an enabled
:class:`~repro.obs.SpanTracker` (ZTrace), the engine also propagates
spans across the process boundary: the parent opens a ``sweep`` root
span, records one ``job.<scope>`` child per job (its id derived from
the job seed, so both sides can name it without a rendezvous), and
serializes a :class:`~repro.obs.SpanContext` into each submission.
Workers record their own span trees into per-job JSONL sinks (named by
the job-seed fingerprint); on join the parent stitches each worker
tree under its job span (:meth:`~repro.obs.SpanTracker.adopt`),
re-based onto the parent clock and clamped into the job window.
Timeouts, retries and degradation show up as span attributes, so the
``timeline`` CLI renders the whole fan-out as one tree.

Entry points: :func:`run_parallel_sweeps` (multi-workload),
``run_design_sweep(jobs=N)`` (single workload, in
:mod:`repro.experiments.runner`) and the ``zcache-repro sweep --jobs N``
CLI path (:func:`run_sweep_cli`).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.experiments.runner import ExperimentScale, SweepResult
from repro.hashing.mixers import splitmix64
from repro.obs import (
    NULL_SPANS,
    Heartbeat,
    ObsContext,
    SpanContext,
    SpanTracker,
    read_span_export,
    sanitize_component,
)
from repro.obs.spans import derive_trace_id
from repro.sim import CMPConfig, CMPResult, L2DesignConfig, TraceDrivenRunner
from repro.sim.cmp import CapturedTrace
from repro.workloads import get_workload

#: checkpoint schema version (bump on incompatible change)
CHECKPOINT_VERSION = 1


def default_jobs() -> int:
    """Worker count matching the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def derive_job_seed(base_seed: int, key: str) -> int:
    """Deterministic per-job seed from the sweep seed and the job key.

    Stable across processes and Python versions (crc32 + splitmix64,
    never the salted builtin ``hash``), so a retried job always replays
    under exactly the seed of its first submission.
    """
    return splitmix64((base_seed & 0xFFFFFFFF) << 32 | zlib.crc32(key.encode()))


@dataclass(frozen=True)
class SweepJob:
    """One (workload, design, policy) replay unit."""

    workload: str
    design: L2DesignConfig
    policy: str
    seed: int  #: deterministic per-job seed (see :func:`derive_job_seed`)

    @property
    def key(self) -> str:
        """Stable identity used for checkpointing and result lookup."""
        return f"{self.workload}|{self.design.label()}|{self.policy}"

    def scope(self, include_workload: bool) -> str:
        """Metric scope for this job's registry subtree."""
        design_part = f"{sanitize_component(self.design.label())}.{self.policy}"
        if not include_workload:
            return design_part
        return f"{sanitize_component(self.workload)}.{design_part}"

    @property
    def span_id(self) -> int:
        """Deterministic id of this job's parent-side span.

        Derived from the job seed, so the parent can name the span at
        submit time and the worker can parent its tree under it without
        any rendezvous — and a retried job reuses the same id.
        """
        return derive_trace_id(self.seed)

    @property
    def fingerprint(self) -> str:
        """Filesystem-safe job identity (per-job span sink file names)."""
        return f"{self.seed:016x}"


@dataclass
class JobOutcome:
    """What happened to one job (for reporting and the checkpoint)."""

    key: str
    #: "parallel" | "serial" | "checkpoint" | "failed"
    status: str
    attempts: int = 1
    error: str = ""
    result: Optional[CMPResult] = None


@dataclass
class ParallelSweepOutcome:
    """Everything a sweep produced, plus how it got there."""

    #: workload name -> SweepResult (same shape as run_design_sweep's)
    sweeps: dict = field(default_factory=dict)
    #: job key -> JobOutcome, in deterministic job order
    outcomes: dict = field(default_factory=dict)
    #: True when the worker pool died and jobs fell back to the parent
    degraded: bool = False
    #: jobs restored from the checkpoint instead of recomputed
    restored: int = 0

    @property
    def failed(self) -> list:
        """Outcomes of the jobs that produced no result."""
        return [o for o in self.outcomes.values() if o.status == "failed"]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _execute_job(
    job: SweepJob,
    cfg: CMPConfig,
    captured: CapturedTrace,
    policy_wrapper,
    obs: Optional[ObsContext],
) -> CMPResult:
    """Replay one job. Shared verbatim by workers and the serial path,
    which is what makes degraded (in-parent) execution bit-identical."""
    runner = TraceDrivenRunner.from_captured(cfg, captured, seed=job.seed)
    design_cfg = cfg.with_design(replace(job.design, policy=job.policy))
    return runner.replay(design_cfg, policy_wrapper=policy_wrapper, obs=obs)


def _replay_worker(
    job: SweepJob,
    cfg: CMPConfig,
    captured: CapturedTrace,
    policy_wrapper,
    scope: str,
    span_ctx: Optional[dict] = None,
) -> tuple[str, CMPResult, dict, dict]:
    """Process-pool entry point: replay under a private ObsContext.

    Returns ``(key, result, metrics snapshot, phase-seconds report)``;
    the parent merges the snapshot and timings into its own context.
    With a serialized :class:`SpanContext`, the worker also records its
    span tree (root ``replay.<scope>``, parented under the parent-side
    job span) into the per-job sink file named in the context; spans
    travel back through the filesystem, not the return value.
    """
    spans = NULL_SPANS
    if span_ctx is not None:
        spans = SpanTracker.from_context(
            SpanContext.from_dict(span_ctx), process=f"worker-{os.getpid()}"
        )
    obs = ObsContext(spans=spans)
    try:
        with obs.profiler.phase(f"replay.{scope}"):
            with spans.span(f"replay.{scope}", key=job.key):
                result = _execute_job(
                    job, cfg, captured, policy_wrapper, obs.scoped(scope)
                )
    finally:
        spans.close()
    return job.key, result, obs.metrics.snapshot(), obs.profiler.report()


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


def _sweep_fingerprint(
    cfg: CMPConfig,
    scale: ExperimentScale,
    jobs: Sequence[SweepJob],
) -> dict:
    """Identity of a sweep: same fingerprint == checkpoint is resumable.

    The engine is part of the identity: both engines are bit-identical
    *when supported*, but a turbo run silently falls back per-cache for
    unsupported configurations, so resuming a reference checkpoint
    under ``--engine turbo`` (or vice versa) would mix results whose
    provenance can no longer be told apart.
    """
    return {
        "version": CHECKPOINT_VERSION,
        "seed": scale.seed,
        "instructions_per_core": scale.instructions_per_core,
        "num_cores": cfg.num_cores,
        "l2_blocks": cfg.l2_blocks,
        "l2_banks": cfg.l2_banks,
        "engine": cfg.engine,
        "jobs": sorted(j.key for j in jobs),
    }


class SweepCheckpoint:
    """Append-as-you-go JSON checkpoint for an interruptible sweep.

    One file, rewritten atomically (temp + rename) after every finished
    job: {"fingerprint": ..., "results": {job key: {"status", "result",
    "metrics"}}}. ``load`` ignores files whose fingerprint does not
    match the current sweep, so changing the roster, scale or seed never
    resurrects stale results.
    """

    def __init__(self, path, fingerprint: dict) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._results: dict[str, dict] = {}

    def load(self) -> dict[str, dict]:
        """Restore finished jobs (empty dict when absent/stale/corrupt)."""
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            return {}
        if data.get("fingerprint") != self.fingerprint:
            return {}
        results = data.get("results", {})
        if not isinstance(results, dict):
            return {}
        self._results = results
        return dict(results)

    def record(self, key: str, status: str, result: CMPResult,
               metrics: Optional[dict] = None) -> None:
        """Persist one finished job (atomic rewrite)."""
        self._results[key] = {
            "status": status,
            "result": result.to_dict(),
            "metrics": metrics or {},
        }
        payload = {"fingerprint": self.fingerprint, "results": self._results}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def run_parallel_sweeps(
    workloads: Optional[Iterable[str]] = None,
    designs: Iterable[L2DesignConfig] = (),
    policies: Iterable[str] = ("lru",),
    scale: ExperimentScale = ExperimentScale(),
    cfg: Optional[CMPConfig] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    obs: Optional[ObsContext] = None,
    policy_wrapper=None,
    scope_workloads: bool = True,
    span_dir: Optional[str] = None,
) -> ParallelSweepOutcome:
    """Run a (workload x design x policy) sweep across worker processes.

    Parameters
    ----------
    workloads:
        Workload roster (default: ``scale.workload_names()``).
    jobs:
        Worker process count. ``1`` runs everything in-process (no pool);
        ``None`` uses the machine's available CPUs. Results are
        bit-identical either way.
    timeout:
        Soft per-job timeout in seconds; a job gets one retry, then
        falls back to in-parent execution.
    checkpoint:
        Path of a JSON checkpoint. Finished jobs found there (from a
        matching interrupted sweep) are restored, not recomputed.
    obs:
        Parent observability context. Worker metrics merge into its
        registry, worker phase timings into its profiler, and its
        heartbeat receives progress aggregated across all workers.
        Without one, a heartbeat is still honoured via the
        ``ZCACHE_PROGRESS_LOG`` environment variable.
    scope_workloads:
        Include the workload name in each job's metric scope (disabled
        by ``run_design_sweep(jobs=N)``, whose serial naming has no
        workload component).
    span_dir:
        Directory for the per-job worker span sink files (only used
        when ``obs.spans`` is enabled and the pool path runs). Default:
        a temporary directory, removed after stitching.
    """
    cfg = cfg or CMPConfig()
    designs = list(designs)
    policies = list(policies)
    names = list(workloads) if workloads is not None else scale.workload_names()
    n_jobs = jobs if jobs is not None else default_jobs()
    heartbeat = obs.heartbeat if obs is not None else Heartbeat.from_env()

    all_jobs = [
        SweepJob(
            workload=w,
            design=d,
            policy=p,
            seed=derive_job_seed(
                scale.seed, f"{w}|{d.label()}|{p}"
            ),
        )
        for w in names
        for d in designs
        for p in policies
    ]
    outcome = ParallelSweepOutcome(
        sweeps={w: SweepResult(workload=w) for w in names}
    )

    # -- checkpoint restore ------------------------------------------------
    ckpt: Optional[SweepCheckpoint] = None
    restored: dict[str, dict] = {}
    if checkpoint is not None:
        ckpt = SweepCheckpoint(
            checkpoint, _sweep_fingerprint(cfg, scale, all_jobs)
        )
        restored = ckpt.load()
    todo: list[SweepJob] = []
    for job in all_jobs:
        entry = restored.get(job.key)
        if entry is None:
            todo.append(job)
            continue
        result = CMPResult.from_dict(entry["result"])
        _commit(outcome, job, result, "checkpoint", obs, entry.get("metrics"))
        outcome.restored += 1
    total = len(all_jobs)
    done = outcome.restored
    if outcome.restored:
        heartbeat.beat(
            f"sweep: restored {outcome.restored} job(s) from checkpoint",
            done=done,
            total=total,
        )

    spans = obs.spans if obs is not None else NULL_SPANS
    with spans.span(
        "sweep", total_jobs=total, restored=outcome.restored, workers=n_jobs
    ):
        # -- capture phase (once per workload, in the parent) --------------
        captures: dict[str, CapturedTrace] = {}
        profiler = obs.profiler if obs is not None else None
        for w in names:
            if not any(j.workload == w for j in todo):
                continue
            runner = TraceDrivenRunner(
                cfg,
                get_workload(w),
                instructions_per_core=scale.instructions_per_core,
                seed=scale.seed,
            )
            if profiler is not None:
                with profiler.phase(f"capture.{sanitize_component(w)}"):
                    with spans.span(
                        f"capture.{sanitize_component(w)}", workload=w
                    ):
                        captures[w] = runner.capture()
            else:
                with spans.span(
                    f"capture.{sanitize_component(w)}", workload=w
                ):
                    captures[w] = runner.capture()
            heartbeat.beat(f"sweep: {w}: captured L2 stream")

        # -- serial path (jobs == 1, or single remaining job) --------------
        def run_serial(job: SweepJob, status: str, attempts: int) -> None:
            scope = job.scope(scope_workloads)
            job_obs = obs.scoped(scope) if obs is not None else None
            try:
                with spans.span(
                    f"job.{scope}",
                    span_id=job.span_id,
                    key=job.key,
                    status=status,
                    attempts=attempts,
                ):
                    if profiler is not None:
                        with profiler.phase(f"replay.{scope}"):
                            result = _execute_job(
                                job, cfg, captures[job.workload],
                                policy_wrapper, job_obs,
                            )
                    else:
                        result = _execute_job(
                            job, cfg, captures[job.workload],
                            policy_wrapper, job_obs,
                        )
            except Exception as exc:  # mark and continue: the sweep finishes
                outcome.outcomes[job.key] = JobOutcome(
                    key=job.key, status="failed", attempts=attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            _commit(outcome, job, result, status, obs=None, snapshot=None,
                    attempts=attempts)
            if ckpt is not None:
                ckpt.record(job.key, status, result)

        if n_jobs <= 1 or len(todo) <= 1:
            for i, job in enumerate(todo):
                run_serial(job, "serial", attempts=1)
                heartbeat.beat(
                    f"sweep: {job.key} [serial]",
                    done=done + i + 1,
                    total=total,
                )
            return outcome

        # -- parallel path -------------------------------------------------
        stitch_dir: Optional[Path] = None
        cleanup_stitch_dir = False
        if spans.enabled:
            if span_dir is not None:
                stitch_dir = Path(span_dir)
                stitch_dir.mkdir(parents=True, exist_ok=True)
            else:
                stitch_dir = Path(tempfile.mkdtemp(prefix="ztrace-"))
                cleanup_stitch_dir = True
        try:
            try:
                with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                    done = _drain_pool(
                        pool, todo, captures, cfg, policy_wrapper,
                        scope_workloads, timeout, outcome, obs, ckpt,
                        heartbeat, done, total, spans, stitch_dir,
                    )
            except BrokenProcessPool:
                outcome.degraded = True
            # Graceful degradation: anything the pool did not finish
            # (worker crash, exhausted retries) re-runs in the parent,
            # marked as such.
            for job in todo:
                if job.key in outcome.outcomes:
                    continue
                outcome.degraded = True
                run_serial(job, "serial", attempts=2)
                done += 1
                heartbeat.beat(
                    f"sweep: {job.key} [degraded-serial]",
                    done=done,
                    total=total,
                )
        finally:
            if cleanup_stitch_dir and stitch_dir is not None:
                shutil.rmtree(stitch_dir, ignore_errors=True)
    return outcome


def _span_sink_path(
    stitch_dir: Optional[Path], job: SweepJob, attempt: int
) -> Optional[Path]:
    """Per-(job, attempt) worker span sink file (None when spans are off).

    Keyed by the job-seed fingerprint so the parent can re-derive the
    path at join time; the attempt index keeps a timed-out first
    attempt (whose worker may still be writing) from racing its retry.
    """
    if stitch_dir is None:
        return None
    return stitch_dir / f"{job.fingerprint}.a{attempt}.spans.jsonl"


def _drain_pool(
    pool: ProcessPoolExecutor,
    todo: list[SweepJob],
    captures: dict[str, CapturedTrace],
    cfg: CMPConfig,
    policy_wrapper,
    scope_workloads: bool,
    timeout: Optional[float],
    outcome: ParallelSweepOutcome,
    obs: Optional[ObsContext],
    ckpt: Optional[SweepCheckpoint],
    heartbeat: Heartbeat,
    done: int,
    total: int,
    spans: SpanTracker = NULL_SPANS,
    stitch_dir: Optional[Path] = None,
) -> int:
    """Submit every job, join in deterministic order, retry once each.

    Raises :class:`BrokenProcessPool` through to the caller when the
    pool dies; jobs already committed stay committed.

    With spans enabled, each submission carries a serialized
    :class:`SpanContext`; at join the parent records the job's
    submit-to-join window as a ``job.<scope>`` span (deterministic
    seed-derived id) and stitches the worker's span tree under it,
    clamped into that window.
    """

    def submit(job: SweepJob, attempt: int) -> Future:
        span_ctx = None
        sink = _span_sink_path(stitch_dir, job, attempt)
        if sink is not None:
            span_ctx = SpanContext(
                seed=job.seed,
                parent_span_id=job.span_id,
                thread=job.scope(scope_workloads),
                sink_path=str(sink),
            ).to_dict()
        return pool.submit(
            _replay_worker,
            job,
            cfg,
            captures[job.workload],
            policy_wrapper,
            job.scope(scope_workloads),
            span_ctx,
        )

    submitted_at = {
        job.key: spans.now() if spans.enabled else 0.0 for job in todo
    }
    futures: dict[str, Future] = {
        job.key: submit(job, attempt=1) for job in todo
    }
    for job in todo:
        attempts = 0
        while True:
            attempts += 1
            try:
                key, result, snapshot, phases = futures[job.key].result(
                    timeout=timeout
                )
            except BrokenProcessPool:
                raise
            except FutureTimeout:
                if attempts > 1:
                    break  # degraded serial fallback picks it up
                # one retry, same seed
                futures[job.key] = submit(job, attempt=2)
                continue
            except Exception:  # worker raised: one retry, then fallback
                if attempts > 1:
                    break
                futures[job.key] = submit(job, attempt=2)
                continue
            _commit(outcome, job, result, "parallel", obs, snapshot,
                    attempts=attempts)
            if obs is not None:
                for phase, seconds in phases.items():
                    obs.profiler.add(phase, seconds)
            if spans.enabled:
                joined_at = spans.now()
                spans.record_span(
                    f"job.{job.scope(scope_workloads)}",
                    start=submitted_at[job.key],
                    end=joined_at,
                    span_id=job.span_id,
                    key=job.key,
                    status="parallel",
                    attempts=attempts,
                )
                sink = _span_sink_path(stitch_dir, job, attempts)
                if sink is not None and sink.exists():
                    spans.adopt(
                        read_span_export(sink),
                        window=(submitted_at[job.key], joined_at),
                    )
            if ckpt is not None:
                ckpt.record(job.key, "parallel", result, metrics=snapshot)
            done += 1
            heartbeat.beat(
                f"sweep: {job.key} [parallel x{attempts}]",
                done=done,
                total=total,
            )
            break
    return done


def _commit(
    outcome: ParallelSweepOutcome,
    job: SweepJob,
    result: CMPResult,
    status: str,
    obs: Optional[ObsContext],
    snapshot: Optional[dict],
    attempts: int = 1,
) -> None:
    """Fold one finished job into the sweep outcome (and the registry)."""
    outcome.sweeps[job.workload].results[(job.design.label(), job.policy)] = (
        result
    )
    outcome.outcomes[job.key] = JobOutcome(
        key=job.key, status=status, attempts=attempts, result=result
    )
    if obs is not None and snapshot:
        obs.metrics.merge_snapshot(snapshot)


# ---------------------------------------------------------------------------
# CLI: zcache-repro sweep
# ---------------------------------------------------------------------------


def run_sweep_cli(argv: list) -> int:
    """``zcache-repro sweep``: the parallel design sweep from the shell."""
    import argparse

    from repro.experiments.runner import DESIGNS_FIG4

    parser = argparse.ArgumentParser(
        prog="zcache-repro sweep",
        description="Run a (workload x design x policy) replay sweep "
        "across worker processes with deterministic merge.",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: available CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--workloads", type=str, default=None,
        help="comma-separated roster subset (default: all 72)",
    )
    parser.add_argument(
        "--policies", type=str, default="lru",
        help="comma-separated replacement policies (default: lru)",
    )
    parser.add_argument("--instructions", type=int, default=6_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--engine", choices=("reference", "turbo"), default="reference",
        help="bank access engine: 'turbo' runs the ZTurbo vectorized "
        "kernels (bit-identical; unsupported policies fall back)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="soft per-job timeout in seconds (one retry, then serial)",
    )
    parser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="JSON checkpoint: resume an interrupted sweep from here",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write per-job results as JSON",
    )
    parser.add_argument(
        "--progress-log", type=str, default=None, metavar="PATH",
        help="append heartbeat progress lines to this file",
    )
    args = parser.parse_args(argv)

    workloads = args.workloads.split(",") if args.workloads else None
    scale = ExperimentScale(
        instructions_per_core=args.instructions,
        workloads=tuple(workloads) if workloads else None,
        seed=args.seed,
    )
    heartbeat = (
        Heartbeat(path=args.progress_log)
        if args.progress_log
        else Heartbeat.from_env()
    )
    obs = ObsContext(heartbeat=heartbeat)
    outcome = run_parallel_sweeps(
        workloads=workloads,
        designs=DESIGNS_FIG4,
        policies=tuple(args.policies.split(",")),
        scale=scale,
        cfg=CMPConfig(engine=args.engine),
        jobs=args.jobs,
        timeout=args.timeout,
        checkpoint=args.checkpoint,
        obs=obs,
    )

    print(
        f"sweep: {len(outcome.outcomes)} jobs "
        f"({outcome.restored} restored, {len(outcome.failed)} failed"
        f"{', degraded to serial' if outcome.degraded else ''})"
    )
    header = f"{'workload':16s} {'design':10s} {'policy':12s} " \
             f"{'l2_mpki':>8s} {'ipc':>7s} {'cycles':>10s}"
    print(header)
    for w in sorted(outcome.sweeps):
        sweep = outcome.sweeps[w]
        for (design, policy), res in sorted(sweep.results.items()):
            print(
                f"{w:16s} {design:10s} {policy:12s} "
                f"{res.l2_mpki:8.2f} {res.aggregate_ipc:7.3f} "
                f"{res.total_cycles:10d}"
            )
    for job_outcome in outcome.failed:
        print(f"FAILED {job_outcome.key}: {job_outcome.error}")
    if args.json:
        payload = {
            key: {
                "status": o.status,
                "attempts": o.attempts,
                "error": o.error,
                "result": o.result.to_dict() if o.result else None,
            }
            for key, o in outcome.outcomes.items()
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"JSON written to {args.json}")
    return 1 if outcome.failed else 0
