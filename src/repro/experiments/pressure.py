"""Bandwidth-pressure ablation: when does the walk start to hurt?

Section III argues the walk is harmless because it runs off the
critical path in spare tag bandwidth, and Section VI-D confirms the
spare bandwidth exists — *at the paper's load levels*. This experiment
turns on bank-port contention (each bank serves one request per cycle
and walks occupy their bank's tag port) and sweeps the early-stop knob
(``candidate_limit``), measuring how much port queueing the walk causes
and what that does to MPKI and IPC. It makes the paper's "should
bandwidth become an issue, stop the walk early" contingency
quantitative.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.experiments.runner import ExperimentScale
from repro.sim import CMPConfig, L2DesignConfig, TraceDrivenRunner
from repro.workloads import get_workload


@dataclass
class PressurePoint:
    candidate_limit: Optional[int]
    ipc: float
    l2_mpki: float
    queueing_cycles: int
    tag_load_per_bank: float

    def row(self) -> str:
        """One formatted report line."""
        label = (
            "full(52)"
            if self.candidate_limit is None
            else str(self.candidate_limit)
        )
        return (
            f"limit={label:>8s} IPC={self.ipc:6.3f} MPKI={self.l2_mpki:7.2f} "
            f"queueing={self.queueing_cycles:8d}cy "
            f"tagload={self.tag_load_per_bank:.4f}"
        )


def run(
    workload: str = "canneal",
    limits=(None, 24, 12, 4),
    scale: ExperimentScale = ExperimentScale(),
) -> list[PressurePoint]:
    """Sweep the early-stop limit under bank-port contention."""
    cfg = dataclasses.replace(CMPConfig(), bank_queueing=True)
    runner = TraceDrivenRunner(
        cfg,
        get_workload(workload),
        instructions_per_core=scale.instructions_per_core,
        seed=scale.seed,
    )
    runner.capture()
    points = []
    for limit in limits:
        design = L2DesignConfig(
            kind="z", ways=4, levels=3, candidate_limit=limit
        )
        result = runner.replay(cfg.with_design(design))
        points.append(
            PressurePoint(
                candidate_limit=limit,
                ipc=result.aggregate_ipc,
                l2_mpki=result.l2_mpki,
                queueing_cycles=result.bank_queueing_cycles,
                tag_load_per_bank=result.tag_load_per_bank_cycle(),
            )
        )
    return points


def main() -> None:
    """Print the bandwidth-pressure sweep."""
    print("Bandwidth pressure: Z4/52 early-stop sweep with bank-port")
    print("contention enabled (canneal, miss-intensive):")
    for p in run():
        print("  " + p.row())
    print(
        "-> shrinking the walk trades misses (MPKI up) for queueing "
        "(down); at the paper's load levels the full walk wins."
    )


if __name__ == "__main__":
    main()
