"""Section IV's opening argument: why conflict misses fail as a metric.

The paper replaces conflict-miss counting with the associativity
distribution because the classic metric is (1) policy-dependent,
(2) reference-stream-dependent, and (3) can go negative. This
experiment demonstrates all three on synthetic traces, then shows the
associativity distribution ranking the same designs cleanly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.assoc import classify_misses, compare_designs
from repro.core import SetAssociativeArray, SkewAssociativeArray, ZCacheArray
from repro.replacement import LFU, LRU, FIFO

BLOCKS = 512


def _designs(seed: int = 0):
    """The design table, hash seeds threaded from a caller seed.

    The defaults reproduce the historical constants (1–4), so existing
    goldens are bit-identical; a sweep can now re-seed the whole table
    from config instead of editing literals.
    """
    return [
        ("SA-4", 4, lambda: SetAssociativeArray(4, BLOCKS // 4)),
        (
            "SA-4h",
            4,
            lambda: SetAssociativeArray(
                4, BLOCKS // 4, hash_kind="h3", hash_seed=seed + 1
            ),
        ),
        ("SK-4", 4, lambda: SkewAssociativeArray(4, BLOCKS // 4, hash_seed=seed + 2)),
        (
            "Z4/16",
            16,
            lambda: ZCacheArray(4, BLOCKS // 4, levels=2, hash_seed=seed + 3),
        ),
        (
            "Z4/52",
            52,
            lambda: ZCacheArray(4, BLOCKS // 4, levels=3, hash_seed=seed + 4),
        ),
    ]


def conflict_trace(n: int = 30_000, seed: int = 0):
    """Hot-set conflicts over a background slightly above capacity."""
    rng = random.Random(seed)
    trace = []
    for i in range(n):
        if i % 2:
            trace.append(((i // 2 % 64) * (BLOCKS // 4), False))
        else:
            trace.append((rng.randrange(BLOCKS), False))
    return trace


def anti_lru_trace(n: int = 20_000):
    """Cyclic scan slightly over capacity: LRU's worst case."""
    return [(i % (BLOCKS + 64), False) for i in range(n)]


@dataclass
class ConflictRow:
    design: str
    policy: str
    trace: str
    conflict: int
    total: int

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.design:8s} {self.policy:5s} {self.trace:10s} "
            f"conflict={self.conflict:6d} of {self.total:6d} misses"
        )


def run() -> tuple[list[ConflictRow], list[str]]:
    """Return (conflict-decomposition rows, associativity report rows)."""
    rows: list[ConflictRow] = []
    traces = {"conflict": conflict_trace(), "anti-lru": anti_lru_trace()}
    policies = {"lru": LRU, "fifo": FIFO, "lfu": LFU}
    for trace_name, trace in traces.items():
        for policy_name, policy in policies.items():
            for design, _n, factory in _designs()[:3]:
                d = classify_misses(factory, policy, trace)
                rows.append(
                    ConflictRow(
                        design=design,
                        policy=policy_name,
                        trace=trace_name,
                        conflict=d.conflict,
                        total=d.total_misses,
                    )
                )
    report = compare_designs(_designs(), LRU, conflict_trace())
    return rows, report.rows()


def main() -> None:
    """Print the conflict-metric critique report."""
    rows, report = run()
    print("Conflict-miss decomposition (policy- and trace-dependent):")
    for row in rows:
        print("  " + row.row())
    negative = [r for r in rows if r.conflict < 0]
    print(
        f"-> {len(negative)} design/policy/trace combinations show NEGATIVE "
        "conflict misses (the paper's objection)."
    )
    print()
    print("The associativity framework ranks the same designs cleanly:")
    for line in report:
        print("  " + line)
    print(
        "-> note the Z4/52's miss rate can EXCEED a worse array's here: "
        "the trace is partially anti-LRU, so faithfully evicting the "
        "global LRU block is the wrong call — exactly the paper's point "
        "that the framework separates array quality from policy quality."
    )


if __name__ == "__main__":
    main()
