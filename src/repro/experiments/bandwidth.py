"""Section VI-D: L2 array bandwidth and self-throttling.

For each workload, the Z4/52 replay reports:

- average demand load per bank (core accesses / cycle / bank);
- total tag-array load including the replacement walks;
- misses per cycle per bank.

The paper's observation: as L2 misses increase, demand load *decreases*
(cores stall more) — the system self-throttles, leaving spare tag
bandwidth that the zcache walks consume safely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentScale, run_design_sweep
from repro.sim import L2DesignConfig


@dataclass
class BandwidthPoint:
    workload: str
    demand_load_per_bank: float  # L2 accesses / cycle / bank
    tag_load_per_bank: float  # incl. walk tag reads
    misses_per_cycle_per_bank: float

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.workload:16s} demand={self.demand_load_per_bank:.4f} "
            f"tag(total)={self.tag_load_per_bank:.4f} "
            f"miss/cyc/bank={self.misses_per_cycle_per_bank:.5f}"
        )


def run(scale: ExperimentScale = ExperimentScale()) -> list[BandwidthPoint]:
    """Measure per-bank L2 load under a Z4/52 for each workload."""
    design = L2DesignConfig(kind="z", ways=4, levels=3)
    points = []
    for workload in scale.workload_names():
        sweep = run_design_sweep(workload, [design], policies=("lru",), scale=scale)
        res = sweep.results[(design.label(), "lru")]
        cycles = res.total_cycles
        banks = len(res.bank_accesses)
        if cycles == 0:
            continue
        points.append(
            BandwidthPoint(
                workload=workload,
                demand_load_per_bank=sum(res.bank_accesses) / banks / cycles,
                tag_load_per_bank=res.tag_load_per_bank_cycle(),
                misses_per_cycle_per_bank=res.l2_misses / banks / cycles,
            )
        )
    return points


def self_throttling_correlation(points: list[BandwidthPoint]) -> float:
    """Correlation between miss intensity and demand load.

    Negative (or near-zero) correlation across miss-intensive workloads
    is the self-throttling effect.
    """
    import numpy as np

    if len(points) < 3:
        raise ValueError("need at least 3 points")
    x = np.array([p.misses_per_cycle_per_bank for p in points])
    y = np.array([p.demand_load_per_bank for p in points])
    return float(np.corrcoef(x, y)[0, 1])


def main() -> None:
    """Print the Section VI-D bandwidth report."""
    points = run()
    print("Section VI-D: L2 bank bandwidth under Z4/52 (LRU)")
    for p in sorted(points, key=lambda p: p.misses_per_cycle_per_bank):
        print("  " + p.row())
    print(f"max demand load/bank = {max(p.demand_load_per_bank for p in points):.4f}")
    print(f"max tag load/bank    = {max(p.tag_load_per_bank for p in points):.4f}")


if __name__ == "__main__":
    main()
