"""Table I: main characteristics of the simulated CMP."""

from __future__ import annotations

from repro.sim import CMPConfig


def rows(cfg: CMPConfig | None = None) -> list[str]:
    """Table I lines for a configuration (paper scale by default)."""
    cfg = cfg or CMPConfig.paper_scale()
    l1_kb = cfg.l1_blocks * cfg.line_bytes // 1024
    l2_mb = cfg.l2_blocks * cfg.line_bytes / (1 << 20)
    bw_gbs = cfg.mem_bytes_per_cycle * 2  # 2 GHz
    return [
        "Table I: simulated CMP configuration",
        f"Cores      {cfg.num_cores} cores, x86-64 ISA, in-order, IPC=1 except on "
        "memory accesses, 2 GHz",
        f"L1 caches  {l1_kb} KB, {cfg.l1_ways}-way set associative, split D/I, "
        "1-cycle latency",
        f"L2 cache   {l2_mb:.2f} MB NUCA, {cfg.l2_banks} banks, shared, inclusive, "
        f"MESI directory coherence, {cfg.l1_to_l2_latency}-cycle average "
        "L1-to-L2-bank latency, 6-11-cycle L2 bank latency (design-dependent)",
        f"MCU        {cfg.num_mcs} memory controllers, {cfg.mem_latency} cycles "
        f"zero-load latency, {bw_gbs:.0f} GB/s peak memory BW",
    ]


def main() -> None:
    """Print Table I at paper scale and the scaled default."""
    for line in rows():
        print(line)
    print()
    print("Scaled configuration used by default experiments:")
    for line in rows(CMPConfig()):
        print("  " + line)


if __name__ == "__main__":
    main()
