"""Reproductions of every table and figure in the paper's evaluation.

Each module regenerates one artifact (see DESIGN.md's experiment index):

================  ==========================================================
module            paper artifact
================  ==========================================================
``fig2``          Fig. 2 — analytic associativity CDFs ``x^n``
``fig3``          Fig. 3 — measured associativity distributions (4 designs)
``table1``        Table I — simulated CMP configuration
``table2``        Table II — area / latency / energy of cache designs
``fig4``          Fig. 4 — per-workload MPKI and IPC improvements (OPT+LRU)
``fig5``          Fig. 5 — IPC and BIPS/W, serial vs. parallel lookups
``bandwidth``     Section VI-D — L2 tag-array bandwidth / self-throttling
``merit``         Section III-B — figures of merit vs. simulated walks
================  ==========================================================

Every experiment accepts scaling knobs (instruction counts, workload
subsets) so it can run as a quick bench or as the full reproduction; the
defaults used for EXPERIMENTS.md are recorded there.
"""

from repro.experiments.runner import (
    DESIGNS_FIG4,
    ExperimentScale,
    baseline_design,
    representative_workloads,
    run_design_sweep,
)

__all__ = [
    "ExperimentScale",
    "baseline_design",
    "DESIGNS_FIG4",
    "representative_workloads",
    "run_design_sweep",
]
