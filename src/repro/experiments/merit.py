"""Section III-B: figures of merit of the zcache, formulas vs. simulation.

Checks, for a range of (W, L) configurations:

- R(W, L) = W * sum (W-1)^l — against the walk's actual candidate
  counts in a full cache (repeats make simulation fall slightly short);
- T_walk = sum over levels of max(T_tag, (W-1)^l) — the pipelined walk
  latency, compared against the miss service time;
- E_miss = R*E_rt + m*(E_rt+E_rd+E_wt+E_wd) — using measured mean
  relocations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import Cache, ZCacheArray
from repro.core.zcache import expected_relocations, replacement_candidates
from repro.energy import CacheCostModel
from repro.replacement import LRU

#: tag-array read latency assumed by the paper's walk-latency example
T_TAG_CYCLES = 4


def walk_latency_cycles(ways: int, levels: int, t_tag: int = T_TAG_CYCLES) -> int:
    """T_walk = sum_l max(T_tag, (W-1)^l): accesses pipeline per level."""
    if ways < 1 or levels < 1:
        raise ValueError("ways and levels must be >= 1")
    return sum(max(t_tag, (ways - 1) ** l) for l in range(levels))


@dataclass
class MeritRow:
    ways: int
    levels: int
    r_formula: int
    r_measured: float
    walk_latency: int
    mean_relocations: float
    expected_relocations: float
    e_miss_nj: float

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"W={self.ways} L={self.levels}: R={self.r_formula:<3d} "
            f"measured={self.r_measured:6.2f}  T_walk={self.walk_latency:3d}cy  "
            f"m={self.mean_relocations:.2f} (uniformity {self.expected_relocations:.2f})  "
            f"E_miss={self.e_miss_nj:.3f}nJ"
        )


def run(
    configs=((2, 2), (2, 3), (4, 2), (4, 3), (8, 2)),
    lines_per_way: int = 256,
    accesses: int = 20_000,
    seed: int = 0,
) -> list[MeritRow]:
    """Measure walk statistics for each (W, L) configuration."""
    rows = []
    for ways, levels in configs:
        arr = ZCacheArray(ways, lines_per_way, levels=levels, hash_seed=seed)
        cache = Cache(arr, LRU())
        rng = random.Random(seed)
        footprint = ways * lines_per_way * 8
        for _ in range(accesses):
            cache.access(rng.randrange(footprint))
        mean_relocs = arr.stats.mean_relocations_per_walk
        cost = CacheCostModel(
            max(ways * lines_per_way * 64, 1 << 20),
            ways,
            levels=levels,
            mean_relocations=mean_relocs,
        )
        rows.append(
            MeritRow(
                ways=ways,
                levels=levels,
                r_formula=replacement_candidates(ways, levels),
                r_measured=arr.stats.mean_candidates_per_walk,
                walk_latency=walk_latency_cycles(ways, levels),
                mean_relocations=mean_relocs,
                expected_relocations=expected_relocations(ways, levels),
                e_miss_nj=cost.miss_energy(include_memory=False),
            )
        )
    return rows


def main() -> None:
    """Print the figures-of-merit comparison."""
    print("Section III-B figures of merit (formula vs simulated walks)")
    for row in run():
        print("  " + row.row())
    print(
        "Paper example: W=3, L=3, T_tag=4 -> 21 candidates in "
        f"{walk_latency_cycles(3, 3)} cycles (paper: 12)"
    )


if __name__ == "__main__":
    main()
