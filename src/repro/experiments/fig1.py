"""Fig. 1: the replacement process, step by step.

Recreates the paper's worked example — a 3-way zcache with 8 lines per
way, a miss expanding three walk levels (3 + 6 + 12 = 21 candidates),
the victim chosen by the policy, the relocation chain, and the Fig. 1g
timeline showing the whole process completing well inside the 100-cycle
memory fetch.

The concrete cache contents differ from the paper's letters A-Z (those
were hand-picked); the structure — tree shape, counts, timeline — is
the reproduction target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import Cache, ZCacheArray
from repro.core.timeline import ReplacementTimeline, schedule_replacement, walk_cycles
from repro.replacement import LRU

WAYS = 3
LINES = 8
LEVELS = 3


@dataclass
class Fig1Result:
    candidates_per_level: dict
    total_candidates: int
    victim_level: int
    relocations: int
    walk_cycles: int
    timeline: ReplacementTimeline

    def rows(self) -> list[str]:
        """Formatted report lines, timeline included."""
        out = [
            f"Fig.1: replacement in a {WAYS}-way, {LINES}-lines/way zcache "
            f"({LEVELS}-level walk)",
            f"candidates per level: {self.candidates_per_level} "
            f"(paper: {{0: 3, 1: 6, 2: 12}})",
            f"total candidates: {self.total_candidates} (paper: 21)",
            f"victim at level {self.victim_level} -> "
            f"{self.relocations} relocation(s)",
            f"walk latency: {self.walk_cycles} cycles (paper: 12, T_tag=4)",
            f"process done at {self.timeline.process_done} cycles; miss "
            f"served at {self.timeline.miss_served} "
            f"({'hidden' if self.timeline.hidden else 'EXPOSED'})",
            "",
        ]
        out += self.timeline.render()
        return out


def run(seed: int = 4) -> Fig1Result:
    """Fill the example cache, trigger one miss, dissect the process."""
    arr = ZCacheArray(WAYS, LINES, levels=LEVELS, hash_seed=seed)
    cache = Cache(arr, LRU())
    rng = random.Random(seed)
    # Fill completely so the walk sees no free slots (as in Fig. 1a).
    attempts = 0
    while arr.occupancy < 1.0:
        cache.access(rng.randrange(10_000))
        attempts += 1
        if attempts > 100_000:  # pragma: no cover - seed safety net
            raise RuntimeError("failed to fill the example cache")
    # One more unique address is the Fig. 1 miss for 'Y'.
    incoming = 999_999
    repl = arr.build_replacement(incoming)
    per_level: dict[int, int] = {}
    for cand in repl.candidates:
        per_level[cand.level] = per_level.get(cand.level, 0) + 1
    victim = cache._choose_victim(repl)
    commit = arr.commit_replacement(repl, victim)
    timeline = schedule_replacement(WAYS, LEVELS, commit.relocations)
    return Fig1Result(
        candidates_per_level=per_level,
        total_candidates=len(repl.candidates),
        victim_level=victim.level,
        relocations=commit.relocations,
        walk_cycles=walk_cycles(WAYS, LEVELS),
        timeline=timeline,
    )


def main() -> None:
    """Print the Fig. 1 walkthrough."""
    for line in run().rows():
        print(line)


if __name__ == "__main__":
    main()
