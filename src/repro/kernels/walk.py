"""The replacement walk as flat array slices.

A miss's candidate tree is consumed in exactly three ways: first-empty
selection, victim selection among the resident candidates, and the
relocation chain of the chosen node. None of that needs per-candidate
Python objects — a walk is four parallel arrays (slot, resident address,
level, parent index) plus scalar totals.

Candidate *order* is load-bearing: the reference controller's
first-empty and first-wins-victim scans both resolve ties by position in
the list, so :class:`ZWalk` emits candidates in the reference BFS order
— level by level, frontier nodes in discovery order, child ways
ascending — and the engine's argmin/argmax-based scans inherit the same
tie-breaking. Ancestor-path validity (a relocation path must not revisit
a position) is the vectorized equivalent of the reference's inline
ancestor scan; walk repeats are counted as notes whose position was
already seen, i.e. ``candidates - distinct positions``.

Only the configurations the turbo engine supports appear here: BFS
strategy, no repeat filter, no candidate limit (``try_build_turbo``
falls back to the reference engine otherwise), which also means walks
are never truncated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.base import HashFunction
from repro.kernels.h3 import VectorHash, vector_hashes


class WalkResult:
    """One miss's candidates as parallel array views (do not retain)."""

    __slots__ = ("slots", "addrs", "levels", "parents", "valid", "tag_reads", "repeats")

    slots: np.ndarray
    addrs: np.ndarray
    levels: np.ndarray
    parents: np.ndarray
    valid: np.ndarray
    tag_reads: int
    repeats: int

    def __init__(
        self,
        slots: np.ndarray,
        addrs: np.ndarray,
        levels: np.ndarray,
        parents: np.ndarray,
        valid: np.ndarray,
        tag_reads: int,
        repeats: int,
    ) -> None:
        self.slots = slots
        self.addrs = addrs
        self.levels = levels
        self.parents = parents
        self.valid = valid
        self.tag_reads = tag_reads
        self.repeats = repeats


class SetWalk:
    """Set-associative candidates: the W slots of the indexed set."""

    def __init__(self, num_ways: int, lines_per_way: int, index_hash: HashFunction) -> None:
        self._hash = index_hash
        self._way_base = np.arange(num_ways, dtype=np.int64) * lines_per_way
        self._levels = np.zeros(num_ways, dtype=np.int64)
        self._parents = np.full(num_ways, -1, dtype=np.int64)
        self._valid = np.ones(num_ways, dtype=bool)
        self._num_ways = num_ways

    def collect(self, address: int, tags: np.ndarray) -> WalkResult:
        """The indexed set's candidates for one miss."""
        slots = self._way_base + self._hash(address)
        return WalkResult(
            slots=slots,
            addrs=tags[slots],
            levels=self._levels,
            parents=self._parents,
            valid=self._valid,
            tag_reads=self._num_ways,
            repeats=0,
        )


class ZWalk:
    """Breadth-first zcache walk over the dense tag mirror."""

    def __init__(
        self,
        num_ways: int,
        lines_per_way: int,
        levels: int,
        hashes: Sequence[HashFunction],
    ) -> None:
        self.num_ways = num_ways
        self.lines_per_way = lines_per_way
        self.levels = levels
        self.hashes = list(hashes)
        self.vhashes: list[VectorHash] = vector_hashes(hashes)
        self._ways = np.arange(num_ways, dtype=np.int64)
        self._way_base = self._ways * lines_per_way
        # Worst-case candidate count: R = W * sum (W-1)^l (no repeats
        # pruned — repeated positions stay in the reference list too).
        r_max = num_ways * sum((num_ways - 1) ** l for l in range(levels))
        self._slots = np.empty(r_max, dtype=np.int64)
        self._addrs = np.empty(r_max, dtype=np.int64)
        self._levels_buf = np.empty(r_max, dtype=np.int64)
        self._parents = np.empty(r_max, dtype=np.int64)
        self._valid = np.empty(r_max, dtype=bool)

    def collect(self, address: int, tags: np.ndarray) -> WalkResult:
        """All R candidates of one miss, in reference BFS order."""
        ways = self.num_ways
        slots, addrs = self._slots, self._addrs
        level_buf, parents, valid = self._levels_buf, self._parents, self._valid

        # Level 0: one home position per way (ways differ, so no repeats).
        idx0 = np.fromiter(
            (h(address) for h in self.hashes), dtype=np.int64, count=ways
        )
        slots[:ways] = self._way_base + idx0
        addrs[:ways] = tags[slots[:ways]]
        level_buf[:ways] = 0
        parents[:ways] = -1
        valid[:ways] = True
        count = ways

        occupied = addrs[:ways] >= 0
        f_addrs = addrs[:ways][occupied]
        f_ways = self._ways[occupied]
        f_idx = np.nonzero(occupied)[0].astype(np.int64)

        for level in range(1, self.levels):
            if len(f_addrs) == 0:
                break
            f = len(f_addrs)
            # Index of every frontier address under every way's hash,
            # then drop each node's own way: children come out node-major
            # with ways ascending — the reference expansion order.
            idx_matrix = np.stack(
                [vh.indices(f_addrs) for vh in self.vhashes], axis=1
            )
            keep = np.ones((f, ways), dtype=bool)
            keep[np.arange(f), f_ways] = False
            child_way = np.broadcast_to(self._ways, (f, ways))[keep]
            child_idx = idx_matrix[keep]
            child_parent = np.repeat(f_idx, ways - 1)
            child_slots = child_way * self.lines_per_way + child_idx
            child_addrs = tags[child_slots]

            # A valid relocation path never revisits a position: compare
            # each child's slot against its whole ancestor chain.
            child_valid = np.ones(len(child_slots), dtype=bool)
            anc = child_parent.copy()
            while True:
                live = anc >= 0
                if not live.any():
                    break
                child_valid[live] &= child_slots[live] != slots[anc[live]]
                anc[live] = parents[anc[live]]

            n = len(child_slots)
            slots[count:count + n] = child_slots
            addrs[count:count + n] = child_addrs
            level_buf[count:count + n] = level
            parents[count:count + n] = child_parent
            valid[count:count + n] = child_valid

            expandable = child_valid & (child_addrs >= 0)
            f_addrs = child_addrs[expandable]
            f_ways = child_way[expandable]
            f_idx = (count + np.nonzero(expandable)[0]).astype(np.int64)
            count += n

        distinct = len(np.unique(slots[:count]))
        return WalkResult(
            slots=slots[:count],
            addrs=addrs[:count],
            levels=level_buf[:count],
            parents=parents[:count],
            valid=valid[:count],
            tag_reads=count,
            repeats=count - distinct,
        )
