"""ZTurbo: vectorized hot-path kernels for the simulator.

The reference simulator (``repro.core``) is object-per-candidate pure
Python: every miss allocates ``Candidate`` dataclasses, walks dicts and
sorted multisets, and draws from ``random.Random`` one value at a time.
This package re-expresses the hot path as numpy array math while keeping
a hard determinism contract: **a turbo cache produces bit-identical
eviction sequences, statistics and eviction-priority streams to the
reference engine** (enforced by ``tests/kernels`` and
``scripts/diff_engines.py``).

Modules
-------
``rng``
    :class:`~repro.kernels.rng.MTStream`: a numpy ``MT19937`` bit-synced
    to a ``random.Random``, reproducing CPython's ``getrandbits`` /
    ``randrange`` / ``random`` draw-for-draw in bulk.
``h3``
    Vectorized H3 index hashing over address batches, plus generic
    vector adapters for the other hash kinds.
``walk``
    The breadth-first replacement walk as flat array slices — all
    ``R = W * sum (W-1)^l`` candidates of a miss collected without
    building the candidate tree out of Python objects.
``policy``
    Dense slot-indexed victim selection and eviction-priority ranking
    for the LRU / FIFO (coarse-timestamp) / random policies.
``engine``
    :class:`~repro.kernels.engine.TurboCore`, the drop-in access engine
    a :class:`~repro.core.controller.Cache` constructed with
    ``engine="turbo"`` delegates to.
``replay``
    Batched drivers: bulk address generation for the Fig. 2 loop and
    chunked hash pre-priming for ``CapturedTrace`` replays.

Engine selection is deliberately conservative: ``try_build_turbo``
returns ``None`` (and the cache stays on the reference path, recorded in
its metrics) for any array/policy combination the kernels cannot
reproduce exactly. See ``docs/kernels.md``.
"""

from repro.kernels.engine import TurboCore, try_build_turbo
from repro.kernels.h3 import VectorH3, vector_hashes
from repro.kernels.rng import MTStream

__all__ = [
    "MTStream",
    "TurboCore",
    "VectorH3",
    "try_build_turbo",
    "vector_hashes",
]
