"""Dense, slot-indexed replacement-policy kernels.

The reference policies keep per-address dicts (and, under
:class:`~repro.assoc.measurement.TrackedPolicy`, a sorted multiset whose
O(n) list inserts dominate the hot loop). The turbo engine stores the
same information as dense arrays indexed by *global slot id*
(``way * lines_per_way + index``): victim selection over a miss's
candidates is a gather plus an argmin/argmax, and the eviction-priority
rank is one vectorized comparison over the whole array.

Determinism contract (asserted by the differential suite):

- victim choice equals ``policy.select_victim`` over the in-order
  deduplicated candidate list — numpy's first-of-equals argmin/argmax
  matches the reference scan's first-wins strictly-greater update;
- :meth:`rank` equals ``SortedMultiset.rank`` of the victim's
  ``(score, address)`` entry: the count of resident entries comparing
  strictly less, with the address as tie-break;
- :class:`RandomKernel` consumes its ``random.Random`` draw-for-draw
  through an :class:`~repro.kernels.rng.MTStream` (one ``random()`` per
  insert, in insert order).
"""

from __future__ import annotations

import random

import numpy as np

from repro.kernels.rng import MTStream


class StampKernel:
    """LRU / FIFO: a global counter stamped into the touched slot.

    ``bump_on_hit`` distinguishes LRU (every touch re-stamps) from FIFO
    (insertion only). Scores are negated stamps, so the victim is the
    minimum stamp; stamps are unique, so ties never arise. Slot 0 stamps
    start at 1 and empty slots hold 0, keeping rank comparisons free of
    an explicit residency mask.
    """

    def __init__(self, num_blocks: int, counter: int, bump_on_hit: bool) -> None:
        self.stamp = np.zeros(num_blocks, dtype=np.int64)
        self.counter = counter
        self._bump_on_hit = bump_on_hit

    def on_hit(self, slot: int) -> None:
        """LRU re-stamps on every touch; FIFO ignores hits."""
        if self._bump_on_hit:
            self.counter += 1
            self.stamp[slot] = self.counter

    def on_insert(self, slot: int) -> None:
        """Stamp a newly installed block's slot."""
        self.counter += 1
        self.stamp[slot] = self.counter

    def on_clear(self, slot: int) -> None:
        """Mark a slot empty (eviction or invalidation)."""
        self.stamp[slot] = 0

    def move(self, src_slot: int, dst_slot: int) -> None:
        """A relocation carries the block's recency with it."""
        self.stamp[dst_slot] = self.stamp[src_slot]
        self.stamp[src_slot] = 0

    def pick_victim(self, slots: np.ndarray) -> int:
        """Local index (into ``slots``) of the policy's victim."""
        return int(np.argmin(self.stamp[slots]))

    def rank(self, victim_slot: int, victim_addr: int, tags: np.ndarray) -> int:
        """Resident entries strictly below the victim's (score, address).

        Scores are ``-stamp`` and unique, so the rank is the number of
        resident blocks with a *larger* stamp; the address tie-break can
        never fire.
        """
        return int(np.count_nonzero(self.stamp > self.stamp[victim_slot]))


class RandomKernel:
    """Stable per-residency random priorities, drawn in insert order."""

    def __init__(self, num_blocks: int, rng: random.Random) -> None:
        self.prio = np.full(num_blocks, np.nan)
        self._stream = MTStream(rng)
        self._buf = np.empty(0)
        self._at = 0

    def _draw(self) -> float:
        if self._at >= len(self._buf):
            self._buf = self._stream.uniform(4096)
            self._at = 0
        value = float(self._buf[self._at])
        self._at += 1
        return value

    def on_hit(self, slot: int) -> None:
        """Hits never change a random priority."""
        pass

    def on_insert(self, slot: int) -> None:
        """Draw the block's stable priority (one random() draw)."""
        self.prio[slot] = self._draw()

    def on_clear(self, slot: int) -> None:
        """Mark a slot empty (eviction or invalidation)."""
        self.prio[slot] = np.nan

    def move(self, src_slot: int, dst_slot: int) -> None:
        """A relocation carries the block's priority with it."""
        self.prio[dst_slot] = self.prio[src_slot]
        self.prio[src_slot] = np.nan

    def pick_victim(self, slots: np.ndarray) -> int:
        """Local index (into ``slots``) of the highest-priority slot."""
        return int(np.argmax(self.prio[slots]))

    def rank(self, victim_slot: int, victim_addr: int, tags: np.ndarray) -> int:
        """Strictly-less count by (priority, address); NaN = empty slot.

        NaN compares False everywhere, so empty slots fall out of both
        terms without an explicit mask. Equal float priorities are
        astronomically rare but the multiset orders them by address, so
        the tie-break term is computed rather than assumed away.
        """
        v = self.prio[victim_slot]
        below = np.count_nonzero(self.prio < v)
        ties = np.count_nonzero((self.prio == v) & (tags < victim_addr))
        return int(below + ties)
