"""The turbo engine: the reference access protocol over dense arrays.

:func:`try_build_turbo` inspects a freshly built
:class:`~repro.core.controller.Cache` and, when the (array, policy,
observability) combination is one the kernels cover, returns a
:class:`TurboCore` that the controller delegates ``access`` and
``invalidate`` to. Anything else returns ``None`` and the controller
runs the reference path — requesting ``engine="turbo"`` is always safe.

The core executes the *same* protocol as the reference controller —
identical counter increments, identical victim choices, identical
eviction-priority values, identical final array contents — it just
stores the hot state densely:

- a ``tags`` int64 mirror of the array (−1 = empty), indexed by global
  slot id ``way * lines_per_way + index``, gathered by the walk kernels;
- a policy kernel (:mod:`repro.kernels.policy`) holding per-slot scores,
  so victim selection is an argmin/argmax and the eviction-priority rank
  one vectorized comparison instead of a sorted-multiset update per
  access;
- pre-synced RNG streams (:mod:`repro.kernels.rng`) reproducing the
  reference ``random.Random`` draws bit for bit.

The array's authoritative structures (``_lines``, ``_pos``, and the
random-candidates free list) are written through on every mutation, so
queries, invariant checks and post-run inspection see exactly the state
the reference engine would have left. What is *not* maintained while the
core runs is the replacement policy's own per-address dicts and a
:class:`~repro.assoc.measurement.TrackedPolicy`'s sorted mirror — their
information lives in the policy kernel instead (the tracked
``priorities`` list, which experiments consume, *is* kept exact). A
cache must therefore stay on one engine for its whole life; the
constructor-time switch enforces that.

Supported configurations (everything else falls back):

========================  =====================================================
array                     ``RandomCandidatesArray``, ``SetAssociativeArray``,
                          ``ZCacheArray``/``SkewAssociativeArray`` with BFS
                          strategy, no repeat filter, no candidate limit
policy                    ``LRU``, ``FIFO``, ``RandomPolicy`` — bare or wrapped
                          in exactly ``TrackedPolicy``
controller                plain ``Cache`` (not ``TwoPhaseZCache``), tracing
                          disabled, nothing pinned, array and policy empty
========================  =====================================================
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.assoc.measurement import TrackedPolicy
from repro.core.base import Position
from repro.core.controller import AccessResult
from repro.core.randomcand import RandomCandidatesArray
from repro.core.setassoc import SetAssociativeArray
from repro.core.skew import SkewAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.kernels.policy import RandomKernel, StampKernel
from repro.kernels.rng import MTStream, RandrangePool
from repro.kernels.walk import SetWalk, ZWalk
from repro.replacement.lru import FIFO, LRU
from repro.replacement.random_policy import RandomPolicy

if TYPE_CHECKING:
    from repro.core.controller import Cache

PolicyKernel = Union[StampKernel, RandomKernel]


def _build_policy_kernel(cache: "Cache") -> Optional[tuple[PolicyKernel, Optional[TrackedPolicy]]]:
    """Policy kernel + optional tracker for the cache's policy, or None."""
    policy = cache.policy
    tracked: Optional[TrackedPolicy] = None
    if type(policy) is TrackedPolicy:
        tracked = policy
        if tracked._mirror:
            return None
        policy = policy.inner
    num_blocks = cache.array.num_blocks
    if type(policy) is LRU or type(policy) is FIFO:
        if policy._stamp:
            return None
        kernel: PolicyKernel = StampKernel(
            num_blocks, counter=policy._counter, bump_on_hit=type(policy) is LRU
        )
        return kernel, tracked
    if type(policy) is RandomPolicy:
        if policy._priority:
            return None
        return RandomKernel(num_blocks, policy._rng), tracked
    return None


class TurboFallbackWarning(RuntimeWarning):
    """A requested turbo engine fell back to the reference path."""


#: fallback reasons already warned about (one warning per reason)
_warned_reasons: set[str] = set()


def warn_turbo_fallback(reason: str) -> None:
    """One-shot :class:`TurboFallbackWarning` per distinct reason.

    ``engine="turbo"`` is a performance request, not a behaviour
    change — both engines are bit-identical — so an unsupported
    configuration degrades silently in results but loudly in intent:
    the first cache to fall back for each reason emits a warning
    naming the unsupported piece, and repeats stay quiet (a sweep
    building thousands of identical caches must not warn thousands of
    times).
    """
    if reason in _warned_reasons:
        return
    _warned_reasons.add(reason)
    warnings.warn(
        f"turbo engine unavailable: {reason}; running the reference "
        "engine (bit-identical, slower)",
        TurboFallbackWarning,
        stacklevel=3,
    )


def try_build_turbo_explain(
    cache: "Cache",
) -> tuple[Optional["TurboCore"], str]:
    """A :class:`TurboCore` for ``cache``, or ``(None, reason)``.

    Exact-type checks throughout: a subclass may override any of the
    behaviours the kernels replicate, and silently diverging from it
    would defeat the bit-identity contract. The reason string names
    the unsupported piece (cache type, array type, policy, state) and
    is empty when a core was built.
    """
    from repro.core.controller import Cache

    if type(cache) is not Cache:
        return None, f"unsupported cache type {type(cache).__name__}"
    if cache._trace is not None:
        return None, "event tracing enabled"
    if cache._pinned:
        return None, "pinned blocks present"
    array = cache.array
    if array._pos:
        return None, "array not empty"
    built = _build_policy_kernel(cache)
    if built is None:
        policy = cache.policy
        inner = policy.inner if type(policy) is TrackedPolicy else policy
        return None, f"unsupported policy {type(inner).__name__}"
    kernel, tracked = built
    if type(array) is RandomCandidatesArray:
        return TurboCore(cache, kernel, tracked, pool=RandrangePool(
            MTStream(array._rng), array.lines_per_way
        )), ""
    if type(array) is SetAssociativeArray:
        walk: Union[SetWalk, ZWalk] = SetWalk(
            array.num_ways, array.lines_per_way, array.index_hash
        )
        return TurboCore(cache, kernel, tracked, walk=walk), ""
    if type(array) in (ZCacheArray, SkewAssociativeArray):
        if array.strategy != "bfs":
            return None, f"unsupported walk strategy {array.strategy!r}"
        if array.repeat_filter is not None:
            return None, "repeat filter installed"
        if array.candidate_limit is not None:
            return None, "candidate limit installed"
        walk = ZWalk(array.num_ways, array.lines_per_way, array.levels, array.hashes)
        return TurboCore(cache, kernel, tracked, walk=walk), ""
    return None, f"unsupported array type {type(array).__name__}"


def try_build_turbo(cache: "Cache") -> Optional["TurboCore"]:
    """A :class:`TurboCore` for ``cache``, or None if unsupported."""
    return try_build_turbo_explain(cache)[0]


class TurboCore:
    """Dense-state executor for one cache's access/invalidate protocol."""

    def __init__(
        self,
        cache: "Cache",
        policy_kernel: PolicyKernel,
        tracked: Optional[TrackedPolicy],
        walk: Optional[Union[SetWalk, ZWalk]] = None,
        pool: Optional[RandrangePool] = None,
    ) -> None:
        self.cache = cache
        self.array = cache.array
        self.pk = policy_kernel
        self.tracked = tracked
        self.walk = walk
        self.pool = pool
        self.tags = np.full(self.array.num_blocks, -1, dtype=np.int64)
        self._lines = self.array._lines
        self._pos = self.array._pos
        self._lpw = self.array.lines_per_way
        self._dirty = cache._dirty
        self._num_cand = (
            self.array.num_candidates
            if isinstance(self.array, RandomCandidatesArray)
            else 0
        )
        zc = self.array if isinstance(self.array, ZCacheArray) else None
        self._zc = zc
        self._batch_hook: Optional[Callable[[int], None]] = None
        self._batch_every = 0
        self._batch_count = 0
        self._bind_counters()
        cache.add_stats_listener(self._bind_counters)

    def set_batch_hook(
        self, hook: Optional[Callable[[int], None]], every: int
    ) -> None:
        """Install (or remove, with ``None``) the batch-boundary hook.

        ZTrace instrumentation point: the hook fires with the batch
        index after every ``every``-th access, letting
        :meth:`~repro.obs.SpanTracker.turbo_batches` roll one span per
        batch without touching the hot path when no hook is set (one
        ``is None`` test per access). Never installed by default —
        engine bit-identity and the kernel_guard floor are unaffected.
        """
        if hook is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._batch_hook = hook
        self._batch_every = every if hook is not None else 0
        self._batch_count = 0

    def _bind_counters(self) -> None:
        """(Re)cache counter refs; fired when the controller's stats swap."""
        cache = self.cache
        self._sc = cache._sc
        self._c_accesses = cache._c_accesses
        self._c_reads = cache._c_reads
        self._c_writes = cache._c_writes
        self._c_hits = cache._c_hits
        self._c_misses = cache._c_misses
        self._c_tag_reads = cache._c_tag_reads
        self._c_data_reads = cache._c_data_reads
        self._c_data_writes = cache._c_data_writes

    # -- slot/array mirroring ------------------------------------------------
    def _install(self, slot: int, address: int) -> None:
        self.tags[slot] = address
        way, index = divmod(slot, self._lpw)
        self._lines[way][index] = address
        self._pos[address] = Position(way, index)

    def _clear(self, slot: int, address: int) -> None:
        self.tags[slot] = -1
        way, index = divmod(slot, self._lpw)
        self._lines[way][index] = None
        del self._pos[address]

    # -- tracked-priority bookkeeping ----------------------------------------
    def _record_eviction(self, victim_slot: int, victim_addr: int) -> None:
        """What ``TrackedPolicy.on_evict`` records, from dense state.

        Must run *before* the victim leaves the array: the rank is taken
        among all currently resident blocks, and the normalisation uses
        the resident count including the victim.
        """
        tracked = self.tracked
        if tracked is None:
            return
        resident = len(self._pos)
        rank = self.pk.rank(victim_slot, victim_addr, self.tags)
        tracked.priorities.append(
            rank / (resident - 1) if resident > 1 else 1.0
        )

    # -- the access protocol -------------------------------------------------
    def access(self, address: int, is_write: bool) -> AccessResult:
        """One read/write access — :meth:`Cache.access`, vectorized."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if self._batch_hook is not None:
            self._batch_count += 1
            if self._batch_count >= self._batch_every:
                self._batch_count = 0
                self._batch_hook(
                    (self._c_accesses.value + 1) // self._batch_every
                )
        self._c_accesses.value += 1
        if is_write:
            self._c_writes.value += 1
        else:
            self._c_reads.value += 1

        pos = self._pos.get(address)
        if pos is not None:
            self._c_hits.value += 1
            self._c_tag_reads.value += self.array.num_ways
            if is_write:
                self._c_data_writes.value += 1
                self._dirty.add(address)
            else:
                self._c_data_reads.value += 1
            self.pk.on_hit(pos.way * self._lpw + pos.index)
            return AccessResult(address=address, hit=True)

        self._c_misses.value += 1
        result = self._fill(address)
        if is_write:
            self._dirty.add(address)
        return result

    def _fill(self, address: int) -> AccessResult:
        if self.pool is not None:
            return self._fill_random_candidates(address)
        assert self.walk is not None
        wr = self.walk.collect(address, self.tags)
        sc = self._sc
        sc["walk_tag_reads"].value += wr.tag_reads
        self._c_tag_reads.value += wr.tag_reads
        zc = self._zc
        if zc is not None:
            zc._c_walks.value += 1
            zc._c_tag_reads.value += wr.tag_reads
            zc._c_candidates.value += len(wr.slots)
            zc._c_repeats.value += wr.repeats

        empty = wr.valid & (wr.addrs < 0)
        evicted: Optional[int] = None
        writeback = False
        if empty.any():
            # BFS order is level-nondecreasing, so the first valid empty
            # candidate is the shallowest — Replacement.first_empty().
            ci = int(np.argmax(empty))
            sc["fills_empty"].value += 1
        else:
            usable = wr.valid & (wr.addrs >= 0)
            cand = np.nonzero(usable)[0]
            if len(cand) == 0:
                raise RuntimeError(
                    f"no usable replacement candidates for {address:#x}"
                )
            # Repeated positions gather equal scores; first-of-equals
            # matches the reference first-occurrence dedup + first-wins
            # victim scan.
            ci = int(cand[self.pk.pick_victim(wr.slots[cand])])
            victim_slot = int(wr.slots[ci])
            evicted = int(wr.addrs[ci])
            self._record_eviction(victim_slot, evicted)
            self.pk.on_clear(victim_slot)
            sc["evictions"].value += 1
            if evicted in self._dirty:
                self._dirty.remove(evicted)
                sc["writebacks"].value += 1
                writeback = True
            self._clear(victim_slot, evicted)

        # Relocation chain: each parent's block moves down into its
        # child's (now free) slot; the root receives the incoming block.
        relocations = 0
        node = ci
        parent = int(wr.parents[node])
        while parent >= 0:
            moving_addr = int(wr.addrs[parent])
            src = int(wr.slots[parent])
            dst = int(wr.slots[node])
            self._clear(src, moving_addr)
            self._install(dst, moving_addr)
            self.pk.move(src, dst)
            relocations += 1
            node = parent
            parent = int(wr.parents[node])
        root_slot = int(wr.slots[node])
        self._install(root_slot, address)
        self.pk.on_insert(root_slot)

        sc["relocations"].value += relocations
        sc["tag_writes"].value += relocations + 1
        self._c_data_reads.value += relocations
        self._c_data_writes.value += relocations + 1
        if zc is not None:
            zc._c_relocations.value += relocations
            zc.stats.record_commit_level(int(wr.levels[ci]))
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted,
            writeback=writeback,
            relocations=relocations,
            filled_empty=evicted is None,
        )

    def _fill_random_candidates(self, address: int) -> AccessResult:
        array = self.array
        assert isinstance(array, RandomCandidatesArray)
        assert self.pool is not None
        sc = self._sc
        free = array._free
        if free:
            slot = min(free)
            sc["walk_tag_reads"].value += 1
            self._c_tag_reads.value += 1
            sc["fills_empty"].value += 1
            free.discard(slot)
            evicted: Optional[int] = None
            writeback = False
        else:
            draws = self.pool.take(self._num_cand)
            n = len(draws)
            sc["walk_tag_reads"].value += n
            self._c_tag_reads.value += n
            # Duplicate draws share a slot and therefore a score, so the
            # kernel's first-of-equals pick lands on the first
            # occurrence — the one the reference dedup keeps.
            slot = int(draws[self.pk.pick_victim(draws)])
            evicted = int(self.tags[slot])
            self._record_eviction(slot, evicted)
            self.pk.on_clear(slot)
            sc["evictions"].value += 1
            writeback = False
            if evicted in self._dirty:
                self._dirty.remove(evicted)
                sc["writebacks"].value += 1
                writeback = True
            self._clear(slot, evicted)
            # Reference eviction adds the slot to the free list and the
            # commit takes it right back out; the net is no change.
        self._install(slot, address)
        self.pk.on_insert(slot)
        sc["tag_writes"].value += 1
        self._c_data_writes.value += 1
        return AccessResult(
            address=address,
            hit=False,
            evicted=evicted,
            writeback=writeback,
            relocations=0,
            filled_empty=evicted is None,
        )

    # -- invalidation --------------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Remove a block — :meth:`Cache.invalidate` under dense state.

        Returns True when the removed block was dirty.
        """
        pos = self._pos.get(address)
        if pos is None:
            return False
        slot = pos.way * self._lpw + pos.index
        # Reference order: the array drops the block, then the policy's
        # on_evict records the tracked priority. The rank is identical
        # either way (the victim's own entry is never counted), but the
        # resident count must still include the victim — so record first.
        self._record_eviction(slot, address)
        self._clear(slot, address)
        if isinstance(self.array, RandomCandidatesArray):
            self.array._free.add(pos.index)
        self.pk.on_clear(slot)
        self.cache._pinned.discard(address)
        self._sc["invalidations"].value += 1
        if address in self._dirty:
            self._dirty.remove(address)
            self._sc["writebacks"].value += 1
            return True
        return False
