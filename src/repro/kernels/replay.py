"""Batched trace-replay helpers for the turbo engine.

Two pre-passes that pay for themselves before the first access:

- :func:`fig2_addresses` draws a whole synthetic access stream in one
  vectorized pass from an :class:`~repro.kernels.rng.MTStream` that is
  bit-synced to the experiment's ``random.Random``, replacing the
  per-access ``rng.randrange(footprint)`` calls with a list walk.
- :func:`prime_trace_hashes` hashes a captured trace's entire per-bank
  address roster through the vectorized H3 path and deposits the results
  in the scalar hashes' memos, so the replay loop (reference *or* turbo)
  only ever takes dict hits on its index computations.

Both are exact: the drawn stream equals the reference draw-for-draw, and
primed memo entries equal what the scalar hash would have computed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.setassoc import SetAssociativeArray
from repro.core.zcache import ZCacheArray
from repro.hashing.h3 import H3Hash
from repro.kernels.h3 import prime_h3
from repro.kernels.rng import MTStream

if TYPE_CHECKING:
    from repro.sim.cmp import CapturedTrace
    from repro.sim.l2 import BankedL2


def fig2_addresses(source: random.Random, footprint: int, count: int) -> list[int]:
    """The next ``count`` results of ``source.randrange(footprint)``.

    Drawn in bulk through a bit-synced MT19937 stream; ``source`` itself
    is not advanced, so the caller must not draw from it afterwards.
    """
    stream = MTStream(source)
    return [int(a) for a in stream.randrange(footprint, count)]


def trace_addresses(captured: "CapturedTrace") -> np.ndarray:
    """Distinct L2-visible block addresses of a captured trace, sorted."""
    if not captured.events:
        return np.empty(0, dtype=np.int64)
    addrs = np.fromiter(
        (event[2] for event in captured.events),
        dtype=np.int64,
        count=len(captured.events),
    )
    return np.unique(addrs)


def _prime_array_hashes(array: object, addresses: np.ndarray) -> int:
    """Prime every H3 hash of one cache array; returns hashes primed."""
    primed = 0
    hashes: Iterable[object]
    if isinstance(array, ZCacheArray):
        hashes = array.hashes
    elif isinstance(array, SetAssociativeArray):
        hashes = (array.index_hash,)
    else:
        return 0
    for h in hashes:
        if isinstance(h, H3Hash):
            prime_h3(h, addresses)
            primed += 1
    return primed


def prime_trace_hashes(l2: "BankedL2", captured: "CapturedTrace") -> int:
    """Batch-hash a captured trace's addresses into ``l2``'s bank memos.

    Every event address is routed to its bank (the same modulo mapping
    ``BankedL2`` uses) and pushed through each H3 hash of that bank's
    array in one vectorized pass. Returns the number of hash functions
    primed (0 when no bank uses H3 — e.g. bit-selected set-associative
    designs — making the call a cheap no-op there).
    """
    addresses = trace_addresses(captured)
    if len(addresses) == 0:
        return 0
    num_banks = len(l2.banks)
    bank_of = addresses % num_banks
    primed = 0
    for bank_id, bank in enumerate(l2.banks):
        bank_addrs = addresses[bank_of == bank_id]
        if len(bank_addrs) == 0:
            continue
        primed += _prime_array_hashes(bank.array, bank_addrs)
    return primed
