"""Bulk reproduction of CPython ``random.Random`` draws with numpy.

CPython's ``random.Random`` is a Mersenne Twister (MT19937) whose state
is exposed by ``getstate()`` as 624 32-bit key words plus a position.
numpy ships the same generator, and accepts exactly that state — so a
:class:`MTStream` built from a live ``random.Random`` produces, via
``random_raw``, the *identical* stream of 32-bit words the Python object
would produce through ``getrandbits(32)``.

On top of the raw word stream this module re-implements the two draw
shapes the simulator uses, matching CPython 3.x semantics bit for bit:

``randrange(n)``
    ``_randbelow_with_getrandbits``: ``k = n.bit_length()`` bits per
    attempt (note: for a power of two this is one bit *more* than
    log2(n)), rejecting values ``>= n``. For a run of draws, rejected
    words simply vanish from the accepted subsequence, so vectorizing is
    a mask: ``vals = words >> (32 - k); accepted = vals[vals < n]``.

``random()``
    Two words ``a, b``: ``((a >> 5) * 2**26 + (b >> 6)) / 2**53``.

The stream is *decoupled* from the source ``random.Random``: building an
MTStream snapshots the state and does not advance the Python object.
Callers therefore must route **all** subsequent draws of that logical
stream through the MTStream (the turbo engine owns its RNGs outright).
"""

from __future__ import annotations

import random

import numpy as np

#: raw words fetched per refill; large enough to amortize, small enough
#: not to overshoot short runs
_CHUNK = 1 << 14


class MTStream:
    """A numpy MT19937 word stream bit-synced to a ``random.Random``.

    Parameters
    ----------
    source:
        The Python RNG whose future output this stream reproduces. Its
        state is copied; the object itself is left untouched.
    """

    def __init__(self, source: random.Random) -> None:
        version, internal, gauss = source.getstate()
        if version != 3:  # pragma: no cover - never on supported CPython
            raise RuntimeError(f"unsupported random.Random state version {version}")
        # ``internal`` is 625 ints: the 624-word key plus the position.
        key, pos = internal[:624], internal[624]
        bg = np.random.MT19937(0)
        bg.state = {
            "bit_generator": "MT19937",
            "state": {"key": np.array(key, dtype=np.uint32), "pos": pos},
        }
        self._bg = bg
        # Leftover raw words from the last refill, not yet consumed.
        self._raw = np.empty(0, dtype=np.uint32)

    # -- raw words -----------------------------------------------------------
    def words(self, count: int) -> np.ndarray:
        """The next ``count`` 32-bit words (== ``getrandbits(32)`` calls)."""
        if count <= len(self._raw):
            out, self._raw = self._raw[:count], self._raw[count:]
            return out
        need = count - len(self._raw)
        fresh = self._bg.random_raw(max(need, _CHUNK)).astype(np.uint32)
        out = np.concatenate([self._raw, fresh[:need]])
        self._raw = fresh[need:]
        return out

    # -- CPython draw shapes -------------------------------------------------
    def randrange(self, n: int, count: int) -> np.ndarray:
        """The next ``count`` results of ``source.randrange(n)``, vectorized.

        Reproduces ``_randbelow_with_getrandbits``: each attempt takes
        ``n.bit_length()`` bits from one 32-bit word (top bits first) and
        rejected attempts consume their word without producing a draw.
        """
        if n < 1:
            raise ValueError(f"randrange bound must be >= 1, got {n}")
        k = n.bit_length()
        if k > 32:  # pragma: no cover - simulator ranges are small
            raise ValueError(f"randrange bound {n} needs >32 bits")
        shift = np.uint32(32 - k)
        parts = []
        have = 0
        while have < count:
            # Expect ~n / 2**k of fetched words accepted; over-fetch a bit.
            need = count - have
            guess = max(int(need * (1 << k) / n) + 16, 64)
            raw = self.words(guess)
            vals = raw >> shift
            ok = vals < n
            accepted = vals[ok]
            if len(accepted) > need:
                # Find the word that yields the last draw we need and
                # push the untouched raw words after it back unconsumed.
                cut = int(np.nonzero(np.cumsum(ok) == need)[0][0]) + 1
                self._raw = np.concatenate([raw[cut:], self._raw])
                accepted = accepted[:need]
            parts.append(accepted)
            have += len(accepted)
        return np.concatenate(parts) if len(parts) != 1 else parts[0]

    def uniform(self, count: int) -> np.ndarray:
        """The next ``count`` results of ``source.random()``, vectorized."""
        w = self.words(2 * count).astype(np.uint64)
        a = w[0::2] >> np.uint64(5)
        b = w[1::2] >> np.uint64(6)
        return (a * np.uint64(1 << 26) + b) * (1.0 / (1 << 53))


class RandrangePool:
    """A lazily-refilled pool of ``randrange(n)`` draws from one stream.

    The walk kernels consume candidate draws a handful at a time; the
    pool amortizes the vectorized rejection sampling across thousands of
    draws while preserving stream order exactly.
    """

    def __init__(self, stream: MTStream, n: int, batch: int = 1 << 13) -> None:
        self._stream = stream
        self._n = n
        self._batch = batch
        self._pool = np.empty(0, dtype=np.uint32)
        self._at = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` draws, in stream order."""
        end = self._at + count
        if end > len(self._pool):
            left = self._pool[self._at:]
            fresh = self._stream.randrange(self._n, max(self._batch, count))
            self._pool = np.concatenate([left, fresh])
            self._at = 0
            end = count
        out = self._pool[self._at:end]
        self._at = end
        return out
