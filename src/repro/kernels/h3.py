"""Vectorized index hashing over address batches.

An H3 function is an ``index_bits x 48`` binary matrix; output bit ``j``
is the parity of ``address AND row_j``. Over a batch of ``N`` addresses
that is one broadcasted AND plus a popcount-parity — a few numpy ops for
the whole batch instead of ``N * index_bits`` Python-int operations.

:func:`vector_hashes` wraps each member of a scalar hash family in a
vector adapter. H3 and bit-selection get true array paths; anything else
falls back to calling the scalar hash per element (still correct, still
memoized by the underlying instance). The determinism contract is that a
vector adapter equals its scalar hash on every address — asserted by
``tests/kernels``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.base import HashFunction
from repro.hashing.bitsel import BitSelectHash
from repro.hashing.h3 import H3Hash

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _parity64(masked: np.ndarray) -> np.ndarray:
    """Bitwise parity of each uint64 element (1 if odd popcount)."""
    if _HAS_BITWISE_COUNT:
        return (np.bitwise_count(masked) & 1).astype(np.uint64)
    x = masked.copy()
    for s in (32, 16, 8, 4, 2, 1):
        x ^= x >> np.uint64(s)
    return x & np.uint64(1)


class VectorHash:
    """Base vector adapter: scalar hash applied per element.

    Subclasses override :meth:`indices` with a real array path; this
    default keeps unsupported hash kinds correct (the scalar instances
    memoize, so repeated addresses stay cheap).
    """

    def __init__(self, scalar: HashFunction) -> None:
        self.scalar = scalar

    def indices(self, addresses: np.ndarray) -> np.ndarray:
        """Index of each address, as int64."""
        h = self.scalar
        return np.fromiter(
            (h(int(a)) for a in addresses), dtype=np.int64, count=len(addresses)
        )


class VectorH3(VectorHash):
    """Batched H3: parity of ``addresses & row`` per output bit."""

    def __init__(self, scalar: H3Hash) -> None:
        super().__init__(scalar)
        rows = scalar.matrix()
        self._rows = np.array(rows, dtype=np.uint64)
        self._weights = (np.uint64(1) << np.arange(len(rows), dtype=np.uint64))

    def indices(self, addresses: np.ndarray) -> np.ndarray:
        a = addresses.astype(np.uint64, copy=False)
        bits = _parity64(a[:, None] & self._rows[None, :])
        return (bits * self._weights).sum(axis=1).astype(np.int64)


class VectorBitSelect(VectorHash):
    """Batched bit selection: mask the low-order index bits."""

    def __init__(self, scalar: BitSelectHash) -> None:
        super().__init__(scalar)
        self._mask = np.int64(scalar.num_lines - 1)

    def indices(self, addresses: np.ndarray) -> np.ndarray:
        return addresses.astype(np.int64, copy=False) & self._mask


def vector_hash(scalar: HashFunction) -> VectorHash:
    """The best vector adapter for one scalar hash function."""
    if isinstance(scalar, H3Hash):
        return VectorH3(scalar)
    if isinstance(scalar, BitSelectHash):
        return VectorBitSelect(scalar)
    return VectorHash(scalar)


def vector_hashes(family: Sequence[HashFunction]) -> list[VectorHash]:
    """Vector adapters for a whole per-way hash family."""
    return [vector_hash(h) for h in family]


def prime_h3(scalar: H3Hash, addresses: np.ndarray) -> None:
    """Batch-fill an H3 instance's memo for ``addresses``.

    The scalar hash computes parity bit by bit on first sight of an
    address; replay drivers know the full address roster up front, so
    one vectorized pass saves the per-address Python loop for both the
    priming engine *and* every later scalar call.
    """
    idx = VectorH3(scalar).indices(addresses)
    scalar.prime(
        (int(a) for a in addresses), (int(i) for i in idx)
    )
