"""ZScope: the observability layer (metrics, tracing, profiling).

The simulator's results are *distributions* — eviction-priority CDFs,
walk depths, bank tag-load — but before this layer the repo only
surfaced end-of-run aggregates. ZScope adds three always-available,
low-overhead facilities:

- **Metrics** (:mod:`repro.obs.metrics`): a dependency-free registry of
  counters/gauges/histograms with hierarchical names
  (``l2.bank3.walk.tag_reads``). Core arrays, the controller, the
  banked L2 and the CMP simulator register into it instead of keeping
  ad-hoc attribute counters.
- **Event tracing** (:mod:`repro.obs.events`): typed access / miss /
  walk / relocation / eviction records to pluggable sinks (null, ring
  buffer, JSONL file), so figures like the Fig. 2 CDF can be rebuilt
  offline from a trace.
- **Profiling** (:mod:`repro.obs.profiling`): phase timers with
  wall-time attribution and a single-file heartbeat for long sweeps.
- **Span tracing** (:mod:`repro.obs.spans` + :mod:`repro.obs.timeline`,
  ZTrace): hierarchical spans with deterministic seed-derived ids,
  cross-process propagation through the parallel sweep engine, Chrome
  trace-event/Perfetto export and critical-path attribution. Off by
  default (``NULL_SPANS``); enabled per run by the ``timeline`` CLI or
  by handing the context an enabled :class:`SpanTracker`.

:class:`ObsContext` bundles the three and is what components accept:
everything takes an optional ``obs`` argument and, when given one,
registers its metrics under the context's scope and emits trace events
through its bus. With no context (the default) components fall back to
private registries and a disabled bus — behaviour and performance are
unchanged, which is what keeps observability safe to wire in
everywhere. CLI surfaces: ``zcache-repro stats`` and ``zcache-repro
trace`` (see :mod:`repro.obs.cli`).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    AccessEvent,
    EvictionEvent,
    JsonlSink,
    MissEvent,
    NullSink,
    RelocationEvent,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    TraceSink,
    WalkEvent,
    collect_eviction_priorities,
    count_by_kind,
    event_from_dict,
    event_to_dict,
    read_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    IntHistogram,
    MetricsRegistry,
    RegistryStats,
    ReservoirHistogram,
    sanitize_component,
)
from repro.obs.profiling import (
    NULL_HEARTBEAT,
    NULL_PHASE_TIMER,
    PROGRESS_LOG_ENV,
    Heartbeat,
    PhaseTimer,
)
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanContext,
    SpanSink,
    SpanTracker,
    read_span_export,
)

__all__ = [
    "ObsContext",
    "MetricsRegistry",
    "RegistryStats",
    "Counter",
    "Gauge",
    "Histogram",
    "IntHistogram",
    "ReservoirHistogram",
    "sanitize_component",
    "TraceBus",
    "TraceSink",
    "TraceEvent",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "AccessEvent",
    "MissEvent",
    "WalkEvent",
    "RelocationEvent",
    "EvictionEvent",
    "read_jsonl",
    "event_to_dict",
    "event_from_dict",
    "collect_eviction_priorities",
    "count_by_kind",
    "PhaseTimer",
    "Heartbeat",
    "NULL_PHASE_TIMER",
    "NULL_HEARTBEAT",
    "PROGRESS_LOG_ENV",
    "Span",
    "SpanContext",
    "SpanSink",
    "SpanTracker",
    "NULL_SPANS",
    "read_span_export",
]


class ObsContext:
    """The bundle instrumented components accept: metrics + trace + profiling.

    A context carries a :class:`MetricsRegistry` view, a
    :class:`TraceBus`, a :class:`PhaseTimer`, a :class:`Heartbeat` and
    a :class:`SpanTracker`. :meth:`scoped` derives a child context
    whose registry is prefixed (``obs.scoped("l2").scoped("bank3")``)
    while the trace bus, timer, heartbeat and spans stay shared —
    scoping is a naming concern, event ordering is global.

    Spans default to the disabled :data:`NULL_SPANS` tracker: unlike
    metrics/trace/profiler, span tracing reads the host clock per
    span, so it is opt-in per run (the ``timeline`` CLI, or any caller
    passing an enabled tracker).
    """

    __slots__ = ("metrics", "trace", "profiler", "heartbeat", "spans")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceBus] = None,
        profiler: Optional[PhaseTimer] = None,
        heartbeat: Optional[Heartbeat] = None,
        spans: Optional[SpanTracker] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceBus()
        self.profiler = profiler if profiler is not None else PhaseTimer()
        self.heartbeat = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        self.spans = spans if spans is not None else NULL_SPANS

    @property
    def label(self) -> str:
        """The metrics scope prefix — used to label trace events."""
        return self.metrics.prefix

    def scoped(self, prefix: str) -> "ObsContext":
        """A child context under ``prefix`` (shared bus/timer/heartbeat)."""
        return ObsContext(
            metrics=self.metrics.scoped(prefix),
            trace=self.trace,
            profiler=self.profiler,
            heartbeat=self.heartbeat,
            spans=self.spans,
        )

    def close(self) -> None:
        """Close the trace and span sinks (flushes JSONL files)."""
        self.trace.close()
        if self.spans is not NULL_SPANS:
            self.spans.close()

    def __enter__(self) -> "ObsContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
