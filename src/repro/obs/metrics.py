"""ZScope metrics: counters, gauges, and streaming histograms.

A dependency-free metrics registry with hierarchical dot-separated
names (``l2.bank3.walk.tag_reads``). Components *register* their
counters instead of keeping ad-hoc integer attributes, so any run can
be snapshotted, rendered, or exported as JSON without per-experiment
plumbing.

Design constraints, in order:

1. **Hot-path cost.** A counter increment must cost what the old
   ``self.stats.hits += 1`` attribute bump cost. :class:`Counter`
   therefore exposes a public ``value`` attribute — call sites cache
   the counter object once and do ``counter.value += 1``; there is no
   method call or dict lookup per event.
2. **Zero dependencies.** Standard library only.
3. **Hierarchy without copies.** :meth:`MetricsRegistry.scoped` returns
   a prefixed *view* over the same store, so ``registry.scoped("l2")``
   and the root registry always agree.

:class:`RegistryStats` adapts the registry to the repo's established
``cache.stats.hits`` surface: subclasses declare their counter fields
and keep working as plain attribute bags while every field is backed
by a registered :class:`Counter`.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_left
from typing import Any, ClassVar, Iterator, Optional, Sequence, Union


def sanitize_component(text: str) -> str:
    """Make an arbitrary label safe as a metric-name component.

    Replaces every character outside ``[A-Za-z0-9_-]`` (notably ``.``,
    ``/`` and spaces, which appear in design labels like ``Z4/16``)
    with ``_`` so hierarchical names stay unambiguous.
    """
    return "".join(
        ch if (ch.isalnum() or ch in "_-") else "_" for ch in text
    )


class Counter:
    """A monotonic (by convention) integer/float counter.

    ``value`` is deliberately a public attribute: hot paths cache the
    counter and increment ``counter.value`` directly, matching the cost
    of the attribute counters this class replaces.
    """

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Union[int, float] = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (convenience; hot paths touch ``value``)."""
        self.value += amount

    def snapshot_value(self) -> Union[int, float]:
        """Current value (the snapshot representation of a counter)."""
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A point-in-time value (occupancy, configured geometry, ...)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Union[int, float] = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: Union[int, float]) -> None:
        """Record the new current value."""
        self.value = value

    def snapshot_value(self) -> Union[int, float]:
        """Current value (the snapshot representation of a gauge)."""
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """Fixed-bucket streaming histogram.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    above the last edge. Count, sum, min and max are tracked exactly,
    so means are exact even though the distribution is bucketed.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        edges = list(bounds)
        if edges != sorted(edges):
            raise ValueError(f"bucket bounds must be sorted, got {edges}")
        self.name = name
        self.bounds: list[float] = edges
        self.counts: list[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, x: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, x)] += 1
        self.count += 1
        self.total += x
        if self.min is None or x < self.min:
            self.min = x
        if self.max is None or x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        """Exact mean of every observed sample (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cdf(self) -> list[tuple[float, float]]:
        """``(upper_edge, cumulative_fraction)`` per bucket (no overflow)."""
        if not self.count:
            return [(b, 0.0) for b in self.bounds]
        out = []
        running = 0
        for edge, c in zip(self.bounds, self.counts):
            running += c
            out.append((edge, running / self.count))
        return out

    def snapshot_value(self) -> dict[str, Any]:
        """Summary dict: count/sum/min/max/mean plus the bucket counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": edge, "count": c}
                for edge, c in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class IntHistogram:
    """Dense histogram over small non-negative integers (walk levels).

    The counts list grows on demand; index ``i`` is the number of
    observations equal to ``i``. This is the registry-backed form of
    the old ``WalkStats.level_hist`` list.
    """

    kind = "int_histogram"
    __slots__ = ("name", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: list[int] = []

    def observe(self, value: int) -> None:
        """Record one sample (``value >= 0``)."""
        if value < 0:
            raise ValueError(f"IntHistogram takes values >= 0, got {value}")
        while len(self.counts) <= value:
            self.counts.append(0)
        self.counts[value] += 1

    def add_counts(self, counts: Sequence[int]) -> None:
        """Merge another dense counts list into this one."""
        while len(self.counts) < len(counts):
            self.counts.append(0)
        for i, c in enumerate(counts):
            self.counts[i] += c

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def snapshot_value(self) -> dict[str, Any]:
        """Summary dict: total count plus the dense per-value counts."""
        return {"count": self.count, "counts": list(self.counts)}

    def __repr__(self) -> str:
        return f"IntHistogram({self.name!r}, counts={self.counts})"


class ReservoirHistogram:
    """Uniform reservoir sample of a stream (algorithm R, seeded).

    Keeps at most ``capacity`` samples, each stream element equally
    likely to be retained, so quantiles of long runs stay estimable at
    bounded memory. The RNG is seeded — ZScope must never perturb the
    repo's determinism contract.

    Reservoirs also *merge*: :meth:`merge_samples` queues another
    reservoir's retained samples (with the stream count they stand
    for), and the queue resolves lazily into a weighted subsample of
    the union — so a parallel sweep's parent reports true quantiles of
    the combined stream, not just the combined count. Resolution is
    deterministic and independent of merge arrival order: pending
    contributions are canonically sorted before the seeded
    Efraimidis–Spirakis draw.
    """

    kind = "reservoir"
    __slots__ = ("name", "capacity", "_count", "_samples", "_rng", "_pending")

    def __init__(self, name: str, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._count = 0
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self._pending: list[tuple[int, list[float]]] = []

    @property
    def count(self) -> int:
        """Stream length (resolves any pending merges first)."""
        if self._pending:
            self._resolve()
        return self._count

    @count.setter
    def count(self, value: int) -> None:
        self._count = value

    @property
    def samples(self) -> list[float]:
        """Retained samples (resolves any pending merges first)."""
        if self._pending:
            self._resolve()
        return self._samples

    def observe(self, x: float) -> None:
        """Record one sample (retained with probability capacity/count)."""
        if self._pending:
            self._resolve()
        self._count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(x)
            return
        slot = self._rng.randrange(self._count)
        if slot < self.capacity:
            self._samples[slot] = x

    def merge_samples(self, count: int, samples: Sequence[float]) -> None:
        """Queue another reservoir's snapshot for a weighted merge.

        ``samples`` must be a uniform sample of a stream of ``count``
        elements (a peer's retained reservoir). The merge is lazy: the
        contribution sits in a pending queue until the next read or
        observation, so merging A-then-B and B-then-A resolve over the
        same canonically-ordered union and yield identical reservoirs.
        """
        if count < 0:
            raise ValueError(f"stream count must be >= 0, got {count}")
        if not samples:
            self._count += count
            return
        self._pending.append((int(count), [float(x) for x in samples]))

    def _resolve(self) -> None:
        """Fold pending contributions into a weighted subsample."""
        contributions = self._pending
        self._pending = []
        if self._samples:
            contributions.append((self._count, self._samples))
        # Canonical order: the result must not depend on merge order.
        contributions.sort(key=lambda c: (c[0], c[1]))
        total = sum(c for c, _ in contributions)
        pool: list[tuple[float, float]] = []  # (weight, value)
        for count, retained in contributions:
            weight = count / len(retained) if count else 1.0
            pool.extend((weight, x) for x in retained)
        if len(pool) <= self.capacity:
            self._samples = [x for _, x in pool]
        else:
            # Efraimidis–Spirakis: key u^(1/w) makes each stream
            # element (not each retained sample) equally likely to
            # survive. Seeded by the merged total so the draw is
            # deterministic yet independent of arrival order.
            rng = random.Random((total * 0x9E3779B1) ^ self.capacity)
            keyed = [
                (rng.random() ** (1.0 / weight), i)
                for i, (weight, _) in enumerate(pool)
            ]
            keyed.sort(reverse=True)
            keep = sorted(i for _, i in keyed[: self.capacity])
            self._samples = [pool[i][1] for i in keep]
        self._count = total

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the stream (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._pending:
            self._resolve()
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def snapshot_value(self) -> dict[str, Any]:
        """Summary dict: count, quantile estimates, retained samples.

        The ``samples`` list is what makes worker snapshots mergeable
        into true parent-side quantiles (see :meth:`merge_samples`).
        """
        if self._pending:
            self._resolve()
        return {
            "count": self.count,
            "retained": len(self.samples),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "samples": list(self.samples),
        }

    def __repr__(self) -> str:
        return f"ReservoirHistogram({self.name!r}, count={self.count})"


#: every metric type the registry can hold
Metric = Union[Counter, Gauge, Histogram, IntHistogram, ReservoirHistogram]


class MetricsRegistry:
    """Hierarchical metric store with prefixed views.

    The root registry owns a flat ``name -> metric`` dict;
    :meth:`scoped` returns a view sharing that dict under a name
    prefix, so a component can be handed ``registry.scoped("l2.bank3")``
    and register ``walk.tag_reads`` without knowing where it lives.
    Registration is idempotent: asking for an existing name returns the
    existing metric (and raises if the kind differs).
    """

    __slots__ = ("_store", "_prefix")

    def __init__(
        self,
        _store: Optional[dict[str, Metric]] = None,
        _prefix: str = "",
    ) -> None:
        self._store: dict[str, Metric] = _store if _store is not None else {}
        self._prefix = _prefix

    # -- naming ------------------------------------------------------------
    @property
    def prefix(self) -> str:
        """This view's name prefix ("" for the root registry)."""
        return self._prefix

    def _full(self, name: str) -> str:
        if not name:
            raise ValueError("metric name must be non-empty")
        return f"{self._prefix}.{name}" if self._prefix else name

    def scoped(self, prefix: str) -> "MetricsRegistry":
        """A view over the same store under ``<self.prefix>.<prefix>``."""
        return MetricsRegistry(self._store, self._full(prefix))

    # -- registration ------------------------------------------------------
    def _register(self, name: str, metric: Metric) -> Metric:
        full = metric.name
        existing = self._store.get(full)
        if existing is not None:
            if type(existing) is not type(metric):
                raise TypeError(
                    f"metric {full!r} already registered as "
                    f"{type(existing).__name__}, not {type(metric).__name__}"
                )
            return existing
        self._store[full] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``<prefix>.<name>``."""
        metric = self._register(name, Counter(self._full(name)))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``<prefix>.<name>``."""
        metric = self._register(name, Gauge(self._full(name)))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Get or create a fixed-bucket histogram ``<prefix>.<name>``."""
        metric = self._register(name, Histogram(self._full(name), bounds))
        assert isinstance(metric, Histogram)
        return metric

    def int_histogram(self, name: str) -> IntHistogram:
        """Get or create a dense small-int histogram ``<prefix>.<name>``."""
        metric = self._register(name, IntHistogram(self._full(name)))
        assert isinstance(metric, IntHistogram)
        return metric

    def reservoir(
        self, name: str, capacity: int = 1024, seed: int = 0
    ) -> ReservoirHistogram:
        """Get or create a seeded reservoir sampler ``<prefix>.<name>``."""
        metric = self._register(
            name, ReservoirHistogram(self._full(name), capacity, seed)
        )
        assert isinstance(metric, ReservoirHistogram)
        return metric

    # -- queries -----------------------------------------------------------
    def _in_scope(self, full_name: str) -> bool:
        if not self._prefix:
            return True
        return full_name.startswith(self._prefix + ".")

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered as ``<prefix>.<name>``, or None."""
        return self._store.get(self._full(name))

    def names(self) -> list[str]:
        """Sorted full names of every metric under this view's prefix."""
        return sorted(n for n in self._store if self._in_scope(n))

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._store[name]

    def __len__(self) -> int:
        return len(self.names())

    def sum_counters(self, suffix: str) -> Union[int, float]:
        """Sum every in-scope counter whose name ends with ``.suffix``.

        The aggregation behind thin views like ``BankedL2.hits``:
        ``l2_scope.sum_counters("hits")`` adds ``l2.bank0.hits``,
        ``l2.bank1.hits``, ... without the banks knowing about it.
        """
        tail = "." + suffix
        return sum(
            m.value
            for m in self
            if isinstance(m, Counter) and m.name.endswith(tail)
        )

    # -- merging -----------------------------------------------------------
    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Merge a :meth:`snapshot` dict into this view, additively.

        The deterministic-merge half of the parallel sweep engine: each
        worker process runs under a private registry, snapshots it, and
        the parent folds the snapshots back in. Names are re-rooted
        under this view's prefix. Merge semantics per metric kind:

        - scalar values add into a :class:`Counter` (unless the name is
          already registered as a :class:`Gauge`, which is *set* — a
          gauge is a point-in-time reading, not a total);
        - fixed-bucket histogram summaries add bucket counts, count and
          sum, and fold min/max (bucket bounds must match);
        - dense int-histogram summaries add their counts lists;
        - reservoir summaries fold their retained ``samples`` (a
          uniform sample of the worker's stream) into the parent
          reservoir via a deterministic seeded weighted subsample
          (:meth:`ReservoirHistogram.merge_samples`), so parent
          quantiles estimate the *combined* stream; a legacy snapshot
          without ``samples`` degrades to a count-only merge.

        Merging is order-independent: counters and histograms add,
        and pending reservoir contributions are canonically sorted
        before resolution — which is what makes the parallel sweep's
        metrics reproducible regardless of worker scheduling.
        """
        for name, value in snapshot.items():
            existing = self._store.get(self._full(name))
            if isinstance(value, bool):
                raise ValueError(f"unmergeable snapshot entry {name!r}: {value!r}")
            if isinstance(value, (int, float)):
                if isinstance(existing, Gauge):
                    existing.value = value
                else:
                    self.counter(name).value += value
            elif isinstance(value, dict) and "buckets" in value:
                bounds = [
                    b["le"] for b in value["buckets"] if b["le"] is not None
                ]
                hist = self.histogram(name, bounds)
                if hist.bounds != bounds:
                    raise ValueError(
                        f"histogram {self._full(name)!r} bucket bounds "
                        f"{hist.bounds} do not match snapshot's {bounds}"
                    )
                for i, bucket in enumerate(value["buckets"]):
                    hist.counts[i] += bucket["count"]
                hist.count += value["count"]
                hist.total += value["sum"]
                for bound_attr, pick in (("min", min), ("max", max)):
                    theirs = value.get(bound_attr)
                    if theirs is None:
                        continue
                    mine = getattr(hist, bound_attr)
                    setattr(
                        hist,
                        bound_attr,
                        theirs if mine is None else pick(mine, theirs),
                    )
            elif isinstance(value, dict) and "counts" in value:
                self.int_histogram(name).add_counts(value["counts"])
            elif isinstance(value, dict) and "retained" in value:
                res = self.reservoir(name)
                samples = value.get("samples")
                if samples is None:
                    res.count += value["count"]
                else:
                    res.merge_samples(value["count"], samples)
            else:
                raise ValueError(
                    f"unmergeable snapshot entry {name!r}: {value!r}"
                )

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Flat ``full-name -> snapshot value`` dict, sorted by name."""
        return {
            name: self._store[name].snapshot_value() for name in self.names()
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Aligned human-readable snapshot, one metric per line."""
        lines = []
        names = self.names()
        width = max((len(n) for n in names), default=0)
        for name in names:
            metric = self._store[name]
            value = metric.snapshot_value()
            if isinstance(value, dict):
                body = "  ".join(
                    f"{k}={v}"
                    for k, v in value.items()
                    if k not in ("buckets", "counts", "samples")
                )
                extra = value.get("counts")
                if extra is not None:
                    body += f"  counts={extra}"
            else:
                body = str(value)
            lines.append(f"{name:<{width}}  {body}")
        return "\n".join(lines)


class RegistryStats:
    """Attribute-style stats facade over registered counters.

    Subclasses declare ``_COUNTER_FIELDS``; each field becomes a
    :class:`Counter` in the backing registry while reads and writes of
    ``stats.<field>`` keep working exactly as they did when these were
    dataclass ints — existing tests and the energy model don't change.
    Hot paths should not go through the facade: grab the underlying
    counter objects once via :meth:`counters` and bump ``.value``.
    """

    _COUNTER_FIELDS: ClassVar[tuple[str, ...]] = ()

    registry: MetricsRegistry

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        object.__setattr__(
            self,
            "_c",
            {f: self.registry.counter(f) for f in self._COUNTER_FIELDS},
        )

    def counters(self) -> dict[str, Counter]:
        """field name -> backing counter (cache these on hot paths)."""
        c: dict[str, Counter] = self.__dict__["_c"]
        return c

    def as_dict(self) -> dict[str, Union[int, float]]:
        """Current counter values keyed by field name."""
        return {name: c.value for name, c in self.counters().items()}

    def merge_counters(self, other: "RegistryStats") -> None:
        """Add ``other``'s counter values into this facade's counters."""
        mine = self.counters()
        for name, c in other.counters().items():
            mine[name].value += c.value

    def __getattr__(self, name: str) -> Union[int, float]:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            counter: Counter = self.__dict__["_c"][name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no counter {name!r}"
            ) from None
        return counter.value

    def __setattr__(self, name: str, value: Any) -> None:
        c = self.__dict__.get("_c")
        if c is not None and name in c:
            c[name].value = value
        else:
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"
