"""ZScope profiling: phase timers and sweep heartbeats.

Two small tools for answering "where did the wall-clock go?" and "is
the sweep still alive?" during long experiment runs:

- :class:`PhaseTimer` attributes wall time to named phases
  (``capture``, ``replay.Z4_16.lru``, ...) via a context manager, and
  renders a per-component breakdown.
- :class:`Heartbeat` appends one progress line per beat to a single
  configurable log file — replacing the ad-hoc ``results/progress*.log``
  sprawl. It is disabled unless constructed with a path (or the
  ``ZCACHE_PROGRESS_LOG`` environment variable names one), so tests
  and library use never write files implicitly.

Host-clock reads are deliberate and legitimate here: these measure the
*simulator process*, never simulated time. The obs package is exempt
from the ZS005 no-host-clock rule for exactly this reason, mirroring
the analysis package's exemption.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Optional, Union

#: environment variable naming the default heartbeat log path
PROGRESS_LOG_ENV = "ZCACHE_PROGRESS_LOG"


class PhaseTimer:
    """Accumulate wall time per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("capture"):
            runner.capture()
        print(timer.render())

    Phases can repeat (times accumulate) and nest (each phase records
    its own wall span; nested spans are counted in both). A disabled
    timer (``enabled=False``) makes :meth:`phase` a no-op so call sites
    need no conditionals.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Attribute an externally measured span to ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated wall time for ``name`` (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def report(self) -> dict[str, float]:
        """phase name -> accumulated seconds (sorted descending)."""
        return dict(
            sorted(self._seconds.items(), key=lambda kv: -kv[1])
        )

    def render(self) -> str:
        """Aligned per-phase breakdown with percentage attribution."""
        report = self.report()
        if not report:
            return "(no phases recorded)"
        total = sum(report.values())
        width = max(len(n) for n in report)
        lines = [f"{'phase':<{width}}  {'seconds':>9}  {'share':>6}  calls"]
        for name, seconds in report.items():
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{name:<{width}}  {seconds:>9.3f}  {share:>5.1%}  "
                f"{self._counts.get(name, 0)}"
            )
        lines.append(f"{'total':<{width}}  {total:>9.3f}")
        return "\n".join(lines)


#: shared no-op timer for call sites running without an ObsContext
NULL_PHASE_TIMER = PhaseTimer(enabled=False)


class Heartbeat:
    """Periodic progress lines to one configurable log file.

    Each :meth:`beat` appends ``[+<elapsed>s] message (done/total)`` to
    the configured path (or stream). ``min_interval`` rate-limits
    beats so per-item call sites can beat unconditionally. Disabled
    instances (no path, no stream) do nothing — the default for
    library code, so only explicit opt-in (CLI flag or the
    ``ZCACHE_PROGRESS_LOG`` environment variable) ever writes a file.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.0,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.stream = stream
        self.min_interval = min_interval
        self.enabled = self.path is not None or self.stream is not None
        if self.path is not None:
            # Fail fast on an unwritable location (matching the JSONL
            # sink, which mkdirs in its constructor) rather than
            # surfacing it at the first rate-limit-passing beat deep
            # into a sweep. ``beat`` keeps its own mkdir: the directory
            # can be removed between construction and use.
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.beats = 0
        self._start = time.perf_counter() if self.enabled else 0.0
        self._last = -float("inf")

    @classmethod
    def from_env(cls, min_interval: float = 0.0) -> "Heartbeat":
        """A heartbeat honouring ``ZCACHE_PROGRESS_LOG`` (else disabled)."""
        path = os.environ.get(PROGRESS_LOG_ENV)
        return cls(path=path or None, min_interval=min_interval)

    def beat(
        self,
        message: str,
        done: Optional[int] = None,
        total: Optional[int] = None,
    ) -> None:
        """Append one progress line (rate-limited by ``min_interval``)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        if now - self._last < self.min_interval:
            return
        self._last = now
        line = f"[+{now - self._start:8.1f}s] {message}"
        if done is not None and total is not None:
            line += f" ({done}/{total})"
        self.beats += 1
        if self.stream is not None:
            self.stream.write(line + "\n")
            self.stream.flush()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(line + "\n")


#: shared disabled heartbeat for call sites running without one
NULL_HEARTBEAT = Heartbeat()
