"""ZTrace timeline: Perfetto export and critical-path analysis.

The consumers of a stitched span tree (:mod:`repro.obs.spans`):

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — export to the
  Chrome trace-event JSON format (the ``{"traceEvents": [...]}`` object
  form), loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``. Each distinct process label becomes one pid
  row; each (process, thread) pair one tid track — so a parallel sweep
  renders as the parent timeline over one lane per worker.
- :func:`validate_chrome_trace` — a self-contained schema check used by
  the CI timeline smoke step (no jsonschema dependency).
- :func:`critical_path` — the chain of spans that determined the
  root's end time: descend from the root into whichever child finished
  last, attributing to each node on the chain the tail segment no
  child covers. The sum of the attributed segments equals the root
  duration, which is what makes the report an *attribution*, not a
  listing.
- :func:`phase_stats` / :func:`worker_utilization` / :func:`coverage` —
  straggler and imbalance statistics: p50/p95/max per phase name,
  busy-fraction per worker process, and how much of the root's wall
  time its children account for.

Everything here is pure post-processing over finished
:class:`~repro.obs.spans.Span` records — no clocks, no simulator state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from repro.obs.spans import Span

# ---------------------------------------------------------------------------
# Tree structure
# ---------------------------------------------------------------------------


def children_index(spans: Sequence[Span]) -> dict[int, list[Span]]:
    """Map span id -> children sorted by start time."""
    known = {s.span_id for s in spans}
    index: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in known:
            index.setdefault(span.parent_id, []).append(span)
    for kids in index.values():
        kids.sort(key=lambda s: (s.start, s.span_id))
    return index


def root_spans(spans: Sequence[Span]) -> list[Span]:
    """Spans with no parent present in the set, sorted by start."""
    known = {s.span_id for s in spans}
    roots = [
        s for s in spans if s.parent_id is None or s.parent_id not in known
    ]
    roots.sort(key=lambda s: (s.start, s.span_id))
    return roots


def _union_seconds(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    ordered = sorted(i for i in intervals if i[1] > i[0])
    total = 0.0
    cur_lo = cur_hi = None
    for lo, hi in ordered:
        if cur_hi is None or lo > cur_hi:
            if cur_hi is not None and cur_lo is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    if cur_hi is not None and cur_lo is not None:
        total += cur_hi - cur_lo
    return total


def coverage(spans: Sequence[Span], root: Span) -> float:
    """Fraction of ``root``'s duration its direct children account for.

    The acceptance metric for cross-process stitching: if workers'
    span trees really landed under the parent sweep span, the union of
    the root's child intervals (clipped to the root) covers nearly all
    of the parent's measured wall time — scheduling gaps and
    submit/join bookkeeping are the only uncovered slack.
    """
    if root.duration <= 0.0:
        return 1.0
    kids = children_index(spans).get(root.span_id, [])
    clipped = [
        (max(k.start, root.start), min(k.end, root.end)) for k in kids
    ]
    return _union_seconds(clipped) / root.duration


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class PathStep:
    """One attributed segment on the critical path.

    A span can contribute several steps (a parent re-appears between
    its children's intervals); the ``attributed`` seconds across all
    steps sum to the root's duration.
    """

    span: Span
    attributed: float
    depth: int


def critical_path(spans: Sequence[Span], root: Span) -> list[PathStep]:
    """The chain of work that determined ``root``'s end time.

    Backward walk from the root's end: whatever was running at each
    instant owns that segment. At a node, the child that finished last
    (before the current cutoff) owns the interval up to its end — the
    walk descends into it, and on return resumes in the parent from
    that child's start, picking up the next-latest child, until the
    node's own start. The attributed segments partition the root's
    duration exactly, which is what makes the report an attribution of
    the sweep's wall time to its true bottlenecks. With overlapping
    children (parallel jobs), only the straggler chain is descended —
    siblings hidden under an already-attributed interval are skipped.
    Returned in chronological order.
    """
    index = children_index(spans)
    segments: list[PathStep] = []

    def visit(span: Span, cutoff: float, depth: int) -> None:
        t = max(min(cutoff, span.end), span.start)
        kids = [
            k
            for k in index.get(span.span_id, [])
            if k.end > span.start
        ]
        kids.sort(key=lambda s: (s.end, s.start, s.span_id), reverse=True)
        for kid in kids:
            if kid.end > t:
                continue  # hidden under an already-attributed interval
            if t - kid.end > 0.0:
                segments.append(PathStep(span, t - kid.end, depth))
            visit(kid, kid.end, depth + 1)
            t = max(kid.start, span.start)
        if t - span.start > 0.0 or not segments:
            segments.append(PathStep(span, max(t - span.start, 0.0), depth))

    visit(root, root.end, 0)
    segments.reverse()
    return segments


def render_critical_path(steps: Sequence[PathStep]) -> list[str]:
    """Human-readable critical-path report lines (chronological)."""
    total = sum(s.attributed for s in steps)
    lines = [f"critical path ({total * 1e3:.3f} ms attributed):"]
    for step in steps:
        pct = 100.0 * step.attributed / total if total > 0 else 0.0
        indent = "  " * step.depth
        lines.append(
            f"  {step.attributed * 1e3:10.3f} ms {pct:5.1f}%  "
            f"{indent}{step.span.name} "
            f"[{step.span.process}/{step.span.thread}]"
        )
    return lines


# ---------------------------------------------------------------------------
# Straggler / imbalance statistics
# ---------------------------------------------------------------------------


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def phase_name(name: str) -> str:
    """Collapse rolling-batch suffixes: ``fig2.batch17`` -> ``fig2.batch``."""
    head, dot, tail = name.rpartition(".")
    if dot and tail.startswith("batch") and tail[len("batch"):].isdigit():
        return f"{head}.batch"
    return name


def phase_stats(spans: Sequence[Span]) -> dict[str, dict[str, float]]:
    """p50/p95/max/total duration per collapsed phase name."""
    groups: dict[str, list[float]] = {}
    for span in spans:
        groups.setdefault(phase_name(span.name), []).append(
            max(span.duration, 0.0)
        )
    out: dict[str, dict[str, float]] = {}
    for name in sorted(groups):
        durations = sorted(groups[name])
        out[name] = {
            "count": float(len(durations)),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "max": durations[-1],
            "total": sum(durations),
        }
    return out


def worker_utilization(
    spans: Sequence[Span], root: Span
) -> dict[str, dict[str, float]]:
    """Busy time and busy fraction of the root window, per process.

    Busy time is the union of a process's span intervals clipped to
    the root window (union, so nesting doesn't double-count). A low
    utilization on one worker next to high ones is the imbalance
    signal the straggler report exists for.
    """
    by_process: dict[str, list[tuple[float, float]]] = {}
    for span in spans:
        if span.span_id == root.span_id:
            continue
        lo = max(span.start, root.start)
        hi = min(span.end, root.end)
        if hi > lo:
            by_process.setdefault(span.process, []).append((lo, hi))
    out: dict[str, dict[str, float]] = {}
    for process in sorted(by_process):
        busy = _union_seconds(by_process[process])
        out[process] = {
            "busy": busy,
            "utilization": busy / root.duration if root.duration > 0 else 0.0,
        }
    return out


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def _micros(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_chrome_trace(spans: Sequence[Span]) -> dict[str, Any]:
    """Export spans as a Chrome trace-event JSON object.

    Produces the object form (``{"traceEvents": [...]}``) with one
    ``ph: "X"`` complete event per span (``ts``/``dur`` in
    microseconds) plus ``ph: "M"`` metadata naming each process row and
    thread track. Pids are assigned in first-seen order with the
    parent (``main``) pinned to pid 1; tids are per (process, thread)
    pair, so sweep shards land on separate tracks.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    for span in ordered:
        if span.process == "main" and "main" not in pids:
            pids["main"] = 1
    for span in ordered:
        pids.setdefault(span.process, len(pids) + 1)
        tids.setdefault((span.process, span.thread), len(tids) + 1)

    events: list[dict[str, Any]] = []
    for process, pid in pids.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (process, thread), tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pids[process],
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span in ordered:
        args: dict[str, Any] = {
            "span_id": f"{span.span_id:016x}",
            "trace_id": f"{span.trace_id:016x}",
        }
        if span.parent_id is not None:
            args["parent_id"] = f"{span.parent_id:016x}"
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "ztrace",
                "ts": _micros(span.start),
                "dur": _micros(max(span.duration, 0.0)),
                "pid": pids[span.process],
                "tid": tids[(span.process, span.thread)],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Span]
) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_chrome_trace(spans), f, sort_keys=True)
        f.write("\n")
    return path


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check a payload against the Chrome trace-event schema.

    Returns a list of error strings (empty when valid). Covers the
    subset the exporter emits — object form with a ``traceEvents``
    list, ``X`` complete events with numeric non-negative ``ts``/
    ``dur`` and integer ``pid``/``tid``, ``M`` metadata events naming
    processes and threads — which is also the subset Perfetto needs to
    load the file. Used by the CI timeline smoke step.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    named_pids: set[int] = set()
    used_pids: set[int] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing span name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                errors.append(f"{where}: unknown metadata {ev['name']!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                errors.append(f"{where}: metadata needs args.name")
            elif ev["name"] == "process_name":
                named_pids.add(ev["pid"])
        else:
            for field_name in ("ts", "dur"):
                value = ev.get(field_name)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"{where}: {field_name} must be a non-negative number"
                    )
            used_pids.add(ev["pid"])
    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    return errors


# ---------------------------------------------------------------------------
# Report assembly (shared by the CLI and the CI smoke step)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TimelineReport:
    """Everything the ``timeline`` CLI prints for one stitched tree."""

    root: Span
    coverage: float
    steps: list[PathStep]
    phases: dict[str, dict[str, float]]
    utilization: dict[str, dict[str, float]]


def analyze(spans: Sequence[Span], root: Optional[Span] = None) -> TimelineReport:
    """Build the full timeline report for a span set."""
    if root is None:
        roots = root_spans(spans)
        if not roots:
            raise ValueError("no spans to analyze")
        root = max(roots, key=lambda s: max(s.duration, 0.0))
    return TimelineReport(
        root=root,
        coverage=coverage(spans, root),
        steps=critical_path(spans, root),
        phases=phase_stats(spans),
        utilization=worker_utilization(spans, root),
    )


def render_report(report: TimelineReport) -> list[str]:
    """Human-readable timeline summary lines."""
    root = report.root
    lines = [
        f"root span '{root.name}': {root.duration * 1e3:.3f} ms wall, "
        f"child coverage {report.coverage * 100:.1f}%",
    ]
    lines.extend(render_critical_path(report.steps))
    lines.append("per-phase durations (p50/p95/max ms):")
    for name, stats in report.phases.items():
        lines.append(
            f"  {name:32s} n={int(stats['count']):4d}  "
            f"{stats['p50'] * 1e3:9.3f} {stats['p95'] * 1e3:9.3f} "
            f"{stats['max'] * 1e3:9.3f}"
        )
    if report.utilization:
        lines.append("worker utilization:")
        for process, stats in report.utilization.items():
            lines.append(
                f"  {process:24s} busy {stats['busy'] * 1e3:9.3f} ms  "
                f"({stats['utilization'] * 100:5.1f}%)"
            )
    return lines
