"""ZScope event tracing: typed records, pluggable sinks, the bus.

The simulator's distributional claims (eviction-priority CDFs, walk
shapes, bank contention) need *streams*, not end-of-run aggregates.
The trace bus emits one typed, slotted record per interesting event:

==============  ==========================================================
kind            fields
==============  ==========================================================
``access``      cache, address, write, hit
``miss``        cache, address, write
``walk``        cache, address, tag_reads, candidates, truncated,
                level_counts (candidates discovered per walk level)
``relocation``  cache, address, src/dst positions, level
``eviction``    cache, address, priority (normalised eviction priority
                ``e`` when a tracker is attached, else None), level,
                dirty
==============  ==========================================================

Sinks are pluggable: :class:`NullSink` (the default — emission is
skipped entirely because call sites cache ``None`` for a disabled bus),
:class:`RingBufferSink` (last-N in memory, for tests and debugging) and
:class:`JsonlSink` (one JSON object per line, for offline analysis).
Records carry a bus-local monotonic ``seq`` instead of any wall-clock
timestamp: traces stay byte-identical across hosts, preserving the
repo's determinism contract (and the ZS005 no-host-clock rule).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, IO, Iterable, Iterator, Optional, Union


@dataclass(slots=True, frozen=True)
class AccessEvent:
    """One cache access (hit or miss)."""

    kind = "access"
    seq: int
    cache: str
    address: int
    write: bool
    hit: bool


@dataclass(slots=True, frozen=True)
class MissEvent:
    """A demand access that missed."""

    kind = "miss"
    seq: int
    cache: str
    address: int
    write: bool


@dataclass(slots=True, frozen=True)
class WalkEvent:
    """One replacement-candidate collection (the zcache walk)."""

    kind = "walk"
    seq: int
    cache: str
    address: int
    tag_reads: int
    candidates: int
    truncated: bool
    #: number of candidates discovered at each walk level
    level_counts: tuple[int, ...]


@dataclass(slots=True, frozen=True)
class RelocationEvent:
    """One block moved along a walk path during a commit."""

    kind = "relocation"
    seq: int
    cache: str
    address: int
    src_way: int
    src_index: int
    dst_way: int
    dst_index: int
    #: walk level of the slot the block moved into
    level: int


@dataclass(slots=True, frozen=True)
class EvictionEvent:
    """One block evicted by replacement (not invalidation)."""

    kind = "eviction"
    seq: int
    cache: str
    address: int
    #: normalised eviction priority e in [0, 1] when an attached
    #: TrackedPolicy measured it, else None
    priority: Optional[float]
    #: walk level of the victim (relocations its commit cost)
    level: int
    dirty: bool


TraceEvent = Union[
    AccessEvent, MissEvent, WalkEvent, RelocationEvent, EvictionEvent
]

#: kind string -> event class, for parsing serialized traces
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (AccessEvent, MissEvent, WalkEvent, RelocationEvent, EvictionEvent)
}


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """Serializable dict form: the fields plus an ``ev`` kind tag."""
    d = asdict(event)
    d["ev"] = event.kind
    return d


def event_from_dict(d: dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from :func:`event_to_dict` output."""
    payload = dict(d)
    kind = payload.pop("ev")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    if "level_counts" in payload:
        payload["level_counts"] = tuple(payload["level_counts"])
    return cls(**payload)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TraceSink:
    """Where emitted events go. Subclasses override :meth:`write`.

    ``enabled`` is the bus's fast-path signal: when False (the null
    sink) instrumented components cache ``None`` instead of the bus and
    skip event construction entirely.
    """

    enabled = True

    def write(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discard everything; marks the bus disabled (the default)."""

    enabled = False

    def write(self, event: TraceEvent) -> None:
        """Drop the event."""


class RingBufferSink(TraceSink):
    """Keep the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: list[TraceEvent] = []
        self._next = 0
        self.written = 0

    def write(self, event: TraceEvent) -> None:
        """Append, overwriting the oldest event once full."""
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._next] = event
            self._next = (self._next + 1) % self.capacity
        self.written += 1

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return self._buf[self._next :] + self._buf[: self._next]


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open a JSONL file for text I/O, gzip-compressed by ``.gz`` suffix."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def segment_path(path: Union[str, Path], index: int) -> Path:
    """The ``index``-th rotation segment of a JSONL path.

    Segment 0 is the path itself; later segments insert the index
    before the extension chain so the ``.gz`` suffix (and therefore
    transparent compression on read) is preserved::

        trace.jsonl     -> trace.1.jsonl
        trace.jsonl.gz  -> trace.1.jsonl.gz
    """
    path = Path(path)
    if index == 0:
        return path
    name = path.name
    gz = ""
    if name.endswith(".gz"):
        name, gz = name[: -len(".gz")], ".gz"
    stem, dot, ext = name.rpartition(".")
    if dot:
        return path.with_name(f"{stem}.{index}.{ext}{gz}")
    return path.with_name(f"{name}.{index}{gz}")


class JsonlWriter:
    """Line-oriented JSON writer: gzip by suffix, size-based rotation.

    The shared back-end of :class:`JsonlSink` (trace events) and the
    span sinks. A ``.gz`` path writes through :mod:`gzip`; full-scale
    turbo sweeps emit multi-GB traces, and JSON lines compress ~10x.
    With ``max_bytes`` set, the writer rolls to numbered segment files
    (:func:`segment_path`) once a segment's *uncompressed* payload
    would exceed the limit — the threshold is pre-compression so
    rotation points are deterministic across gzip levels.
    """

    def __init__(
        self, path: Union[str, Path], max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.written = 0
        self._segment = 0
        self._segment_bytes = 0
        self.paths: list[Path] = [self.path]
        self._file: IO[str] = _open_text(self.path, "w")

    def _rotate(self) -> None:
        self._file.close()
        self._segment += 1
        self._segment_bytes = 0
        nxt = segment_path(self.path, self._segment)
        self.paths.append(nxt)
        self._file = _open_text(nxt, "w")

    def write_line(self, line: str) -> None:
        """Append one pre-serialized JSON line (no trailing newline)."""
        size = len(line) + 1
        if (
            self.max_bytes is not None
            and self._segment_bytes > 0
            and self._segment_bytes + size > self.max_bytes
        ):
            self._rotate()
        self._file.write(line)
        self._file.write("\n")
        self._segment_bytes += size
        self.written += 1

    def write_obj(self, obj: dict[str, Any]) -> None:
        """Serialize and append one JSON object line."""
        self.write_line(json.dumps(obj, sort_keys=True))

    def close(self) -> None:
        """Flush and close the current segment (idempotent)."""
        if not self._file.closed:
            self._file.close()


class JsonlSink(TraceSink):
    """Write one JSON object per event to a file (JSON Lines).

    A ``.gz`` path is gzip-compressed; ``max_bytes`` enables size-based
    rotation into numbered segments (see :class:`JsonlWriter`).
    :func:`read_jsonl` reads both transparently.
    """

    def __init__(
        self, path: Union[str, Path], max_bytes: Optional[int] = None
    ) -> None:
        self._writer = JsonlWriter(path, max_bytes=max_bytes)
        self.path = self._writer.path

    @property
    def written(self) -> int:
        """Number of events written across all segments."""
        return self._writer.written

    @property
    def paths(self) -> list[Path]:
        """Segment files written so far, in order."""
        return list(self._writer.paths)

    def write(self, event: TraceEvent) -> None:
        """Serialize and append one event line."""
        self._writer.write_obj(event_to_dict(event))

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        self._writer.close()


def iter_jsonl_objects(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
    """Yield the JSON objects of one JSONL file (gzip by ``.gz`` suffix)."""
    with _open_text(Path(path), "r") as f:
        for line in f:
            line = line.strip()
            if line:
                obj = json.loads(line)
                assert isinstance(obj, dict)
                yield obj


def iter_jsonl_series(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
    """Yield objects from a JSONL file plus its rotation segments, in order."""
    index = 0
    while True:
        seg = segment_path(path, index)
        if index > 0 and not seg.exists():
            return
        yield from iter_jsonl_objects(seg)
        index += 1


def read_jsonl(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Parse a :class:`JsonlSink` output back into typed events.

    Transparently handles gzip-compressed files (``.gz`` suffix) and
    size-rotated segment series.
    """
    for obj in iter_jsonl_series(path):
        yield event_from_dict(obj)


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------


class TraceBus:
    """Sequencing front-end over a sink.

    Instrumented components receive the bus and check ``enabled`` once
    (caching ``None`` when disabled), so the null configuration costs
    one attribute test at attach time, not per event. Emission methods
    construct the typed record, stamp the monotonic ``seq``, and hand
    it to the sink.
    """

    __slots__ = ("sink", "enabled", "seq")

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.enabled = self.sink.enabled
        self.seq = 0

    def access(self, cache: str, address: int, write: bool, hit: bool) -> None:
        """Emit an ``access`` record."""
        self.seq += 1
        self.sink.write(AccessEvent(self.seq, cache, address, write, hit))

    def miss(self, cache: str, address: int, write: bool) -> None:
        """Emit a ``miss`` record."""
        self.seq += 1
        self.sink.write(MissEvent(self.seq, cache, address, write))

    def walk(
        self,
        cache: str,
        address: int,
        tag_reads: int,
        candidates: int,
        truncated: bool,
        level_counts: tuple[int, ...],
    ) -> None:
        """Emit a ``walk`` record."""
        self.seq += 1
        self.sink.write(
            WalkEvent(
                self.seq, cache, address, tag_reads, candidates,
                truncated, level_counts,
            )
        )

    def relocation(
        self,
        cache: str,
        address: int,
        src: tuple[int, int],
        dst: tuple[int, int],
        level: int,
    ) -> None:
        """Emit a ``relocation`` record."""
        self.seq += 1
        self.sink.write(
            RelocationEvent(
                self.seq, cache, address, src[0], src[1], dst[0], dst[1], level
            )
        )

    def eviction(
        self,
        cache: str,
        address: int,
        priority: Optional[float],
        level: int,
        dirty: bool,
    ) -> None:
        """Emit an ``eviction`` record."""
        self.seq += 1
        self.sink.write(
            EvictionEvent(self.seq, cache, address, priority, level, dirty)
        )

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()


# ---------------------------------------------------------------------------
# Offline reconstruction helpers
# ---------------------------------------------------------------------------


def collect_eviction_priorities(
    events: Iterable[TraceEvent],
) -> dict[str, list[float]]:
    """Per-cache eviction-priority streams from a trace.

    The offline half of the Fig. 2 pipeline: feeding the returned lists
    to :class:`~repro.assoc.distribution.AssociativityDistribution`
    reconstructs the associativity CDF a run measured in-process.
    Evictions without a recorded priority (no tracker attached) are
    skipped.
    """
    out: dict[str, list[float]] = {}
    for event in events:
        if isinstance(event, EvictionEvent) and event.priority is not None:
            out.setdefault(event.cache, []).append(event.priority)
    return out


def count_by_kind(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Event counts keyed by kind (trace summaries)."""
    out: dict[str, int] = {}
    for event in events:
        out[event.kind] = out.get(event.kind, 0) + 1
    return out
