"""ZTrace spans: hierarchical, cross-process span tracing.

The flat :class:`~repro.obs.profiling.PhaseTimer` answers "how much
wall time did phase X accumulate"; it cannot answer "which chain of
work determined the sweep's end-to-end latency" or "which worker was
the straggler". Spans add the missing structure:

- a :class:`Span` is one timed interval with a name, attributes, a
  deterministic 64-bit id, and a parent — so spans form trees;
- a :class:`SpanTracker` owns a monotonic clock origin, an ambient
  (thread-local) current-span stack, and the finished-span list. The
  public way to open a span is the context manager :meth:`SpanTracker.span`,
  which guarantees the span closes on exceptions (rule ZS109 enforces
  this discipline in ``core/``, ``kernels/`` and ``experiments/``);
- a :class:`SpanContext` is the serializable capsule the parallel
  sweep engine ships to worker processes: the worker's tracker derives
  its ids from the *job seed*, parents its roots under the parent-side
  job span, and records into a per-worker JSONL sink
  (:class:`SpanSink`); the parent stitches the worker trees back into
  one tree keyed by job fingerprint (:meth:`SpanTracker.adopt`).

Span *ids* are deterministic — ``splitmix64`` chains seeded by the
tracker seed (the sweep seed in the parent, the derived job seed in a
worker) — so retried jobs, resumed sweeps and diffed traces line up.
Durations are wall-clock (``time.perf_counter``): spans measure the
simulator *process*, never simulated time, which is why this module
lives in the ZS005-exempt obs package. Cross-process stitching relies
on ``perf_counter`` being a shared monotonic clock across processes on
one host (CLOCK_MONOTONIC on Linux); :meth:`adopt` clamps pathological
skew into the parent window.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from threading import local
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.hashing.mixers import splitmix64

if TYPE_CHECKING:
    from repro.kernels.engine import TurboCore

_MASK64 = (1 << 64) - 1

#: domain-separation salt so a tracker's trace id never collides with
#: the span-id chain of a tracker seeded with a nearby integer
_TRACE_SALT = 0x5A54524143453A31  # "ZTRACE:1"


def derive_trace_id(seed: int) -> int:
    """Deterministic 64-bit trace id for a tracker seed."""
    return splitmix64((seed ^ _TRACE_SALT) & _MASK64)


def derive_span_id(trace_id: int, index: int) -> int:
    """Deterministic id of the ``index``-th span of a trace."""
    return splitmix64((trace_id + index) & _MASK64)


@dataclass(slots=True)
class Span:
    """One finished (or still-open) timed interval in a span tree.

    ``start`` is seconds since the owning tracker's clock origin;
    ``duration`` is −1.0 while the span is open. Attributes are free
    form but must be JSON-serializable (they travel through the
    per-worker JSONL sinks and into the Chrome trace export).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    process: str
    thread: str
    start: float
    duration: float = -1.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Span end offset (start while still open)."""
        return self.start + max(self.duration, 0.0)

    def set_attr(self, **attrs: Any) -> None:
        """Attach attributes to this span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (the JSONL sink line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "process": self.process,
            "thread": self.thread,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            span_id=d["span_id"],
            parent_id=d["parent_id"],
            trace_id=d["trace_id"],
            process=d["process"],
            thread=d["thread"],
            start=d["start"],
            duration=d["duration"],
            attrs=dict(d.get("attrs", {})),
        )


@dataclass(slots=True, frozen=True)
class SpanContext:
    """The cross-process propagation capsule.

    The parent serializes one of these into each parallel job: the
    worker's tracker seeds its id chain from ``seed`` (the derived job
    seed, so ids are stable across retries), labels its spans with
    ``process``/``thread``, parents its root spans under
    ``parent_span_id`` (the parent-side job span), and — when
    ``sink_path`` is set — streams records to that per-worker JSONL
    file for the parent to stitch after the join.
    """

    seed: int
    parent_span_id: Optional[int]
    process: str = "worker"
    thread: str = "main"
    sink_path: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        """Serializable form (crosses the process boundary as a dict)."""
        return {
            "seed": self.seed,
            "parent_span_id": self.parent_span_id,
            "process": self.process,
            "thread": self.thread,
            "sink_path": self.sink_path,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SpanContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(
            seed=d["seed"],
            parent_span_id=d.get("parent_span_id"),
            process=d.get("process", "worker"),
            thread=d.get("thread", "main"),
            sink_path=d.get("sink_path"),
        )


class SpanSink:
    """Per-worker JSONL sink for span records (gzip by ``.gz`` suffix).

    The first line is a header object (``{"hdr": {...}}``) carrying the
    tracker's absolute clock origin, process label and trace id — the
    stitcher needs the origin to re-base worker offsets onto the parent
    timeline. Every subsequent line is one :meth:`Span.to_dict` object.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        from repro.obs.events import JsonlWriter

        self._writer = JsonlWriter(path)
        self.path = self._writer.path

    def write_header(self, header: dict[str, Any]) -> None:
        """Write the tracker header line."""
        self._writer.write_obj({"hdr": header})

    def write(self, span: Span) -> None:
        """Append one finished span."""
        self._writer.write_obj(span.to_dict())

    def close(self) -> None:
        """Flush and close (idempotent)."""
        self._writer.close()


def read_span_export(path: Union[str, Path]) -> dict[str, Any]:
    """Parse a :class:`SpanSink` file back into an export dict.

    Returns the same shape as :meth:`SpanTracker.export`:
    ``{"origin", "process", "trace_id", "spans": [Span, ...]}``.
    """
    from repro.obs.events import iter_jsonl_objects

    header: dict[str, Any] = {}
    spans: list[Span] = []
    for obj in iter_jsonl_objects(path):
        if "hdr" in obj:
            header = obj["hdr"]
        else:
            spans.append(Span.from_dict(obj))
    return {
        "origin": float(header.get("origin", 0.0)),
        "process": str(header.get("process", "worker")),
        "trace_id": int(header.get("trace_id", 0)),
        "spans": spans,
    }


class SpanTracker:
    """Owner of one process's span tree: clock, ambient stack, records.

    A tracker is either enabled (records spans, reads the monotonic
    clock) or the shared :data:`NULL_SPANS` no-op. The ambient stack is
    thread-local: a span opened on a thread parents subsequent spans on
    that thread only. Ids are deterministic (seed-derived); timings are
    wall-clock.
    """

    def __init__(
        self,
        seed: int = 0,
        process: str = "main",
        thread: str = "main",
        enabled: bool = True,
        sink: Optional[SpanSink] = None,
        root_parent_id: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.seed = seed
        self.process = process
        self.thread = thread
        self.trace_id = derive_trace_id(seed)
        self.origin = time.perf_counter() if enabled else 0.0
        self.sink = sink
        self.root_parent_id = root_parent_id
        self._spans: list[Span] = []
        self._count = 0
        self._tls = local()
        if sink is not None:
            sink.write_header(self.header())

    @classmethod
    def from_context(
        cls, ctx: SpanContext, process: Optional[str] = None
    ) -> "SpanTracker":
        """A worker-side tracker honouring a parent's :class:`SpanContext`.

        ``process`` overrides the context's process label — the parent
        cannot know which pool process will pick a job up, so workers
        stamp their own (``worker-<os pid>``) at construction.
        """
        sink = SpanSink(ctx.sink_path) if ctx.sink_path else None
        return cls(
            seed=ctx.seed,
            process=process if process is not None else ctx.process,
            thread=ctx.thread,
            sink=sink,
            root_parent_id=ctx.parent_span_id,
        )

    def header(self) -> dict[str, Any]:
        """The sink/export header: clock origin + identity."""
        return {
            "origin": self.origin,
            "process": self.process,
            "trace_id": self.trace_id,
        }

    # -- the ambient stack -------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_id(self) -> Optional[int]:
        """The innermost open span's id (``root_parent_id`` outside spans)."""
        span = self.current()
        return span.span_id if span is not None else self.root_parent_id

    def set_attr(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        span = self.current()
        if span is not None:
            span.set_attr(**attrs)

    # -- span lifecycle ----------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracker's clock origin."""
        return time.perf_counter() - self.origin

    def _next_id(self) -> int:
        self._count += 1
        return derive_span_id(self.trace_id, self._count)

    def _start(
        self,
        name: str,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span and push it on the ambient stack (internal).

        Callers outside the obs package must use :meth:`span` (or a
        tracker-managed helper such as :meth:`turbo_batches`) so the
        span is guaranteed to close — see lint rule ZS109.
        """
        span = Span(
            name=name,
            span_id=span_id if span_id is not None else self._next_id(),
            parent_id=parent_id if parent_id is not None else self.current_id(),
            trace_id=self.trace_id,
            process=self.process,
            thread=self.thread,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._stack().append(span)
        return span

    def _finish(self, span: Span) -> None:
        """Close an open span and record it (internal)."""
        span.duration = self.now() - span.start
        stack = self._stack()
        if span in stack:
            # Close any children left open (exception unwinding).
            while stack and stack[-1] is not span:
                dangling = stack.pop()
                dangling.duration = span.start + span.duration - dangling.start
                self._record(dangling)
            stack.pop()
        self._record(span)

    def _record(self, span: Span) -> None:
        self._spans.append(span)
        if self.sink is not None:
            self.sink.write(span)

    @contextmanager
    def span(
        self,
        name: str,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[Optional[Span]]:
        """Open a span for the enclosed block (the sanctioned way).

        Yields the open :class:`Span` (None on a disabled tracker) so
        the body can :meth:`Span.set_attr` as it learns outcomes. The
        span always closes — including on exceptions — which is the
        discipline rule ZS109 enforces at call sites in ``core/``,
        ``kernels/`` and ``experiments/``.
        """
        if not self.enabled:
            yield None
            return
        span = self._start(name, span_id=span_id, parent_id=parent_id, **attrs)
        try:
            yield span
        finally:
            self._finish(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Record an already-measured interval (never left open).

        For after-the-fact attribution — e.g. the parent's per-job
        submit→join windows, whose boundaries interleave across jobs and
        therefore cannot nest as context managers. ``start``/``end`` are
        tracker-relative offsets (:meth:`now` values).
        """
        if not self.enabled:
            return None
        span = Span(
            name=name,
            span_id=span_id if span_id is not None else self._next_id(),
            parent_id=parent_id if parent_id is not None else self.current_id(),
            trace_id=self.trace_id,
            process=self.process,
            thread=self.thread,
            start=start,
            duration=max(end - start, 0.0),
            attrs=dict(attrs),
        )
        self._record(span)
        return span

    @contextmanager
    def turbo_batches(
        self,
        core: Optional["TurboCore"],
        name: str,
        every: int = 8192,
    ) -> Iterator[None]:
        """Roll a span per ``every`` turbo accesses via the core's hook.

        Tracker-managed (the ZS109 "with-equivalent"): entering installs
        a batch hook on the :class:`~repro.kernels.engine.TurboCore`
        that closes the running ``<name>.batch<k>`` span and opens the
        next at each boundary; exiting closes the open span and removes
        the hook — so batch spans can never leak past the access loop,
        even on exceptions. A ``None`` core or a disabled tracker makes
        this a no-op.
        """
        if core is None or not self.enabled:
            yield
            return
        state: dict[str, Any] = {"open": self._start(f"{name}.batch0", index=0)}

        def boundary(index: int) -> None:
            self._finish(state["open"])
            state["open"] = self._start(f"{name}.batch{index}", index=index)

        core.set_batch_hook(boundary, every)
        try:
            yield
        finally:
            core.set_batch_hook(None, 0)
            self._finish(state["open"])

    # -- export / stitching ------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        return list(self._spans)

    def export(self) -> dict[str, Any]:
        """Header + finished spans (the in-memory stitch payload)."""
        payload = self.header()
        payload["spans"] = self.spans()
        return payload

    def adopt(
        self,
        export: dict[str, Any],
        window: Optional[tuple[float, float]] = None,
    ) -> int:
        """Stitch another tracker's export into this tracker's timeline.

        Worker span offsets are re-based by the difference of absolute
        clock origins (``perf_counter`` is machine-wide monotonic on
        Linux). When a ``window`` (tracker-relative ``(lo, hi)``, e.g.
        the parent-side job span) is given, adopted spans are clamped
        into it — a guard against cross-platform clock skew, so the
        stitched tree can never extend outside the parent's measured
        wall time. Returns the number of spans adopted.
        """
        if not self.enabled:
            return 0
        offset = float(export.get("origin", self.origin)) - self.origin
        adopted = 0
        for span in export.get("spans", ()):
            start = span.start + offset
            duration = max(span.duration, 0.0)
            if window is not None:
                lo, hi = window
                start = min(max(start, lo), hi)
                duration = min(duration, hi - start)
            self._record(
                Span(
                    name=span.name,
                    span_id=span.span_id,
                    parent_id=(
                        span.parent_id
                        if span.parent_id is not None
                        else self.root_parent_id
                    ),
                    trace_id=span.trace_id,
                    process=span.process,
                    thread=span.thread,
                    start=start,
                    duration=duration,
                    attrs=dict(span.attrs),
                )
            )
            adopted += 1
        return adopted

    def close(self) -> None:
        """Close any spans left open, then close the sink (idempotent)."""
        stack = self._stack()
        while stack:
            self._finish(stack[-1])
        if self.sink is not None:
            self.sink.close()


#: shared disabled tracker for call sites running without spans
NULL_SPANS = SpanTracker(enabled=False)
