"""CLI backends for ``zcache-repro stats`` and ``zcache-repro trace``.

Kept in the obs package (rather than ``repro.cli``) for the same
reason the analysis CLI lives in its package: these surfaces print
wall-clock profiles, which belongs outside the ZS005 no-host-clock
scope covering simulation code.

- ``stats`` runs an experiment under an :class:`~repro.obs.ObsContext`
  and prints the metrics-registry snapshot (text or JSON) plus the
  phase timer's wall-time attribution.
- ``trace`` runs an experiment with a JSONL sink, then *re-reads the
  file* and summarizes it — for ``fig2`` it additionally rebuilds the
  eviction-priority CDF offline and checks it against the in-process
  result, which is the acceptance test for trace completeness.
- ``timeline`` runs an experiment under an enabled
  :class:`~repro.obs.SpanTracker` (ZTrace), exports the stitched span
  tree as a Perfetto-loadable Chrome trace-event JSON file, and prints
  the critical-path / straggler report. ``--jobs N`` exercises the
  cross-process propagation path; ``--check`` turns the schema and
  coverage assertions into the exit code (the CI smoke step).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import (
    Heartbeat,
    JsonlSink,
    ObsContext,
    TraceBus,
    collect_eviction_priorities,
    count_by_kind,
    read_jsonl,
)

#: experiments the obs subcommands can drive
EXPERIMENTS = ("fig2", "sweep")

#: reconstruction must match in-process values to float round-trip
CDF_TOLERANCE = 1e-9


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment-selection flags shared by ``stats`` and ``trace``."""
    parser.add_argument(
        "experiment", choices=EXPERIMENTS,
        help="what to run under the observability context",
    )
    parser.add_argument(
        "--instructions", type=int, default=2_000,
        help="fig2: accesses per candidate count; sweep: instructions "
        "per core (default 2000)",
    )
    parser.add_argument(
        "--blocks", type=int, default=256,
        help="fig2 only: cache size in blocks (default 256, small "
        "enough that evictions dominate at short runs)",
    )
    parser.add_argument(
        "--workload", type=str, default="canneal",
        help="sweep only: workload to capture and replay",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--progress-log", type=str, default=None, metavar="PATH",
        help="append heartbeat progress lines to PATH",
    )


def _run_experiment(
    args: argparse.Namespace, obs: ObsContext, jobs: int = 1
) -> Any:
    """Run the selected experiment under ``obs``; returns its result."""
    if args.experiment == "fig2":
        from repro.experiments import fig2

        return fig2.run(
            cache_blocks=args.blocks,
            accesses=args.instructions,
            seed=args.seed,
            obs=obs,
            engine=getattr(args, "engine", "reference"),
        )
    from repro.experiments.runner import (
        ExperimentScale,
        baseline_design,
        run_design_sweep,
    )
    from repro.sim import L2DesignConfig

    scale = ExperimentScale(
        instructions_per_core=args.instructions,
        workloads=(args.workload,),
        seed=args.seed or 1,
    )
    designs = (
        baseline_design(),
        L2DesignConfig(kind="z", ways=4, levels=2),
    )
    return run_design_sweep(
        args.workload, designs, scale=scale, obs=obs, jobs=jobs
    )


def run_stats(argv: list[str]) -> int:
    """``zcache-repro stats <experiment>`` — metrics snapshot + profile."""
    parser = argparse.ArgumentParser(
        prog="zcache-repro stats",
        description="Run an experiment under the ZScope metrics registry "
        "and print the hierarchical metrics snapshot plus per-phase "
        "wall-time attribution.",
    )
    _add_run_arguments(parser)
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    obs = ObsContext(heartbeat=Heartbeat(path=args.progress_log))
    with obs.profiler.phase(args.experiment):
        _run_experiment(args, obs)
    obs.close()

    if args.format == "json":
        payload = {
            "experiment": args.experiment,
            "metrics": obs.metrics.snapshot(),
            "phases": obs.profiler.report(),
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(obs.metrics.render_text())
    print()
    print("wall-time attribution:")
    print(obs.profiler.render())
    return 0


def _check_fig2_reconstruction(
    result: Any, priorities: dict[str, list[float]]
) -> tuple[list[str], bool]:
    """Rebuild each n's eviction CDF from the trace and diff it.

    Returns the report lines and whether every candidate count's
    offline CDF matched the in-process one within :data:`CDF_TOLERANCE`.
    """
    from repro.assoc import AssociativityDistribution

    lines = ["reconstruction (trace CDF vs in-process):"]
    ok = True
    for n in sorted(result.simulated):
        samples = priorities.get(f"n{n}", [])
        if not samples:
            lines.append(f"  n={n}: no traced evictions  FAIL")
            ok = False
            continue
        rebuilt = AssociativityDistribution(samples).cdf(result.xs)
        delta = float(np.max(np.abs(rebuilt - result.simulated[n][0])))
        good = delta <= CDF_TOLERANCE
        ok = ok and good
        lines.append(
            f"  n={n}: {len(samples)} evictions, max CDF deviation "
            f"{delta:.2e}  {'OK' if good else 'FAIL'}"
        )
    return lines, ok


def run_trace(argv: list[str]) -> int:
    """``zcache-repro trace <experiment>`` — JSONL trace + offline summary.

    Exits non-zero when the fig2 eviction-priority CDF rebuilt from the
    trace file disagrees with the in-process result.
    """
    parser = argparse.ArgumentParser(
        prog="zcache-repro trace",
        description="Run an experiment with a JSONL trace sink, then "
        "re-read the file and summarize it (event counts; for fig2, "
        "an offline rebuild of the eviction-priority CDF checked "
        "against the in-process result).",
    )
    _add_run_arguments(parser)
    parser.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="trace file path (default: results/trace_<experiment>.jsonl)",
    )
    args = parser.parse_args(argv)

    out = Path(args.out or f"results/trace_{args.experiment}.jsonl")
    sink = JsonlSink(out)
    obs = ObsContext(
        trace=TraceBus(sink),
        heartbeat=Heartbeat(path=args.progress_log),
    )
    try:
        result = _run_experiment(args, obs)
    finally:
        obs.close()

    events = list(read_jsonl(out))
    counts = count_by_kind(events)
    print(f"trace: {len(events)} events written to {out}")
    for kind in sorted(counts):
        print(f"  {kind:<10} {counts[kind]}")

    if args.experiment != "fig2":
        return 0
    priorities = collect_eviction_priorities(events)
    lines, ok = _check_fig2_reconstruction(result, priorities)
    for line in lines:
        print(line)
    return 0 if ok else 1


#: --check threshold: the stitched tree's children must cover this
#: fraction of the root span, and the root this fraction of the
#: CLI-measured wall time
COVERAGE_FLOOR = 0.90


def run_timeline(argv: list[str]) -> int:
    """``zcache-repro timeline <experiment>`` — ZTrace span timeline.

    Runs the experiment under an enabled span tracker (``--jobs N``
    fans a sweep across worker processes, exercising cross-process span
    propagation and stitching), writes the tree as a Chrome
    trace-event JSON file (drag into https://ui.perfetto.dev), and
    prints the coverage / phase / utilization report plus, with
    ``--critical-path``, the longest dependency chain. ``--check``
    additionally validates the exported JSON against the trace-event
    schema and requires span coverage of at least 90% of measured wall
    time, returning a non-zero exit code on violation.
    """
    from repro.obs import timeline as tl
    from repro.obs.spans import SpanTracker

    parser = argparse.ArgumentParser(
        prog="zcache-repro timeline",
        description="Run an experiment with ZTrace span tracing, export "
        "a Perfetto-loadable Chrome trace-event JSON timeline, and "
        "print critical-path and straggler statistics.",
    )
    _add_run_arguments(parser)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="sweep only: worker processes (cross-process span "
        "stitching; default 1 = in-process)",
    )
    parser.add_argument(
        "--engine", choices=("reference", "turbo"), default="reference",
        help="fig2 only: 'turbo' adds per-batch spans via the TurboCore "
        "batch hook",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="trace-event JSON path "
        "(default: results/timeline_<experiment>.json)",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="print the longest dependency chain through the span tree",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the exported JSON against the Chrome trace-event "
        "schema and require >=90%% span coverage of measured wall time "
        "(non-zero exit on violation)",
    )
    args = parser.parse_args(argv)

    # Warm the lazy experiment imports up front: the coverage check
    # compares the root span to measured wall time, and first-import
    # cost is not part of the run being attributed.
    import repro.experiments.fig2  # noqa: F401
    import repro.experiments.parallel  # noqa: F401
    import repro.kernels.replay  # noqa: F401

    spans = SpanTracker(seed=args.seed, process="main")
    obs = ObsContext(
        spans=spans, heartbeat=Heartbeat(path=args.progress_log)
    )
    started = spans.now()
    try:
        _run_experiment(args, obs, jobs=args.jobs)
    finally:
        wall = spans.now() - started
        obs.close()

    records = spans.spans()
    report = tl.analyze(records)
    out = tl.write_chrome_trace(
        Path(args.out or f"results/timeline_{args.experiment}.json"), records
    )
    root = report.root
    print(f"timeline: {len(records)} spans -> {out}")
    print(
        f"root span '{root.name}': {root.duration * 1e3:.3f} ms of "
        f"{wall * 1e3:.3f} ms measured wall, child coverage "
        f"{report.coverage * 100:.1f}%"
    )
    if args.critical_path:
        for line in tl.render_critical_path(report.steps):
            print(line)
    print("per-phase durations (p50/p95/max ms):")
    for name, stats in report.phases.items():
        print(
            f"  {name:32s} n={int(stats['count']):4d}  "
            f"{stats['p50'] * 1e3:9.3f} {stats['p95'] * 1e3:9.3f} "
            f"{stats['max'] * 1e3:9.3f}"
        )
    if report.utilization:
        print("worker utilization:")
        for process, stats in report.utilization.items():
            print(
                f"  {process:24s} busy {stats['busy'] * 1e3:9.3f} ms  "
                f"({stats['utilization'] * 100:5.1f}%)"
            )

    if not args.check:
        return 0
    failures: list[str] = []
    with open(out, encoding="utf-8") as f:
        payload = json.load(f)
    failures.extend(tl.validate_chrome_trace(payload))
    if report.coverage < COVERAGE_FLOOR:
        failures.append(
            f"stitched children cover {report.coverage * 100:.1f}% of the "
            f"root span (< {COVERAGE_FLOOR * 100:.0f}%)"
        )
    if wall > 0 and root.duration / wall < COVERAGE_FLOOR:
        failures.append(
            f"root span covers {root.duration / wall * 100:.1f}% of "
            f"measured wall time (< {COVERAGE_FLOOR * 100:.0f}%)"
        )
    attributed = sum(s.attributed for s in report.steps)
    if root.duration > 0 and not (
        0.999 <= attributed / root.duration <= 1.001
    ):
        failures.append(
            "critical-path attribution does not partition the root span "
            f"({attributed:.6f}s vs {root.duration:.6f}s)"
        )
    for failure in failures:
        print(f"CHECK FAIL: {failure}")
    if not failures:
        print("timeline checks passed (schema, coverage, attribution)")
    return 1 if failures else 0
