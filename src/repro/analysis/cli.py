"""CLI backends for ``zcache-repro lint`` and ``zcache-repro check``.

Kept in the analysis package (rather than ``repro.cli``) so the
tooling — which legitimately measures wall-clock overhead — stays
outside the ZS005 no-host-clock scope that covers simulation code.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from repro.analysis.lint import LintEngine, default_rules
from repro.analysis.sanitizer import InvariantViolation, SanitizedArray


def run_lint(argv: list[str]) -> int:
    """``zcache-repro lint [paths...]`` — run ZSan; exit 1 on findings."""
    parser = argparse.ArgumentParser(
        prog="zcache-repro lint",
        description="Run the ZSan AST lint rules (ZS001-ZS006) over "
        "Python sources. Exits non-zero when any finding is reported.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=str, default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", type=str, default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    try:
        engine = LintEngine(
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
        )
    except ValueError as exc:
        print(f"zsan: error: {exc}", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"zsan: error: no such file or directory: {p}", file=sys.stderr)
        return 2
    report = engine.lint_paths(args.paths)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code


def _sanitized_zcache_smoke(
    seed: int, accesses: int, deep_interval: int
) -> tuple[int, int]:
    """Random streams through sanitized zcaches across walk configs.

    Returns ``(checks_run, deep_scans)`` summed over the configurations;
    any invariant violation propagates as :class:`InvariantViolation`.
    """
    from repro.core import Cache, ZCacheArray
    from repro.replacement import LRU

    checks = scans = 0
    configs = [
        dict(num_ways=4, lines_per_way=128, levels=2),
        dict(num_ways=4, lines_per_way=128, levels=3, repeat_filter="exact"),
        dict(num_ways=2, lines_per_way=256, levels=4, strategy="dfs"),
    ]
    for i, cfg in enumerate(configs):
        array = SanitizedArray(
            ZCacheArray(hash_seed=seed + i, seed=seed + i, **cfg),
            seed=seed,
            deep_check_interval=deep_interval,
        )
        cache = Cache(array, LRU())
        rng = random.Random(seed + i)
        footprint = 4 * array.num_blocks
        for _ in range(accesses):
            cache.access(rng.randrange(footprint))
        array.final_check()
        checks += array.checks_run
        scans += array.deep_scans
    return checks, scans


def run_check(argv: list[str]) -> int:
    """``zcache-repro check [--sanitize]`` — invariant smoke validation.

    Always runs the Fig. 2 experiment (the paper's uniformity
    validation) as the workload. With ``--sanitize``, every array is
    wrapped in :class:`SanitizedArray`, a sanitized zcache smoke runs
    first, and the report includes the sanitizer overhead relative to
    an unsanitized baseline run.
    """
    parser = argparse.ArgumentParser(
        prog="zcache-repro check",
        description="Run the invariant-sanitizer validation suite.",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="wrap arrays in SanitizedArray and verify invariants",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--accesses", type=int, default=20_000,
        help="accesses per configuration in the zcache smoke "
        "(default 20000)",
    )
    parser.add_argument(
        "--fig2-accesses", type=int, default=60_000,
        help="accesses per candidate count in the Fig. 2 run "
        "(default 60000, the experiment's own default)",
    )
    parser.add_argument(
        "--deep-interval", type=int, default=64,
        help="full-state scan cadence, in commits (default 64)",
    )
    args = parser.parse_args(argv)

    from repro.experiments import fig2

    try:
        if args.sanitize:
            checks, scans = _sanitized_zcache_smoke(
                args.seed, args.accesses, args.deep_interval
            )
            print(
                f"zcache smoke: ok ({checks} checks, {scans} deep scans, "
                "0 violations)"
            )

        t0 = time.perf_counter()
        fig2.run(accesses=args.fig2_accesses, seed=args.seed)
        baseline = time.perf_counter() - t0

        if not args.sanitize:
            print(f"fig2 baseline: ok in {baseline:.2f}s (no sanitizer)")
            return 0

        sanitizers: list[SanitizedArray] = []

        def wrap(array):
            wrapped = SanitizedArray(
                array, seed=args.seed, deep_check_interval=args.deep_interval
            )
            sanitizers.append(wrapped)
            return wrapped

        t0 = time.perf_counter()
        fig2.run(accesses=args.fig2_accesses, seed=args.seed, wrap_array=wrap)
        sanitized = time.perf_counter() - t0
        for s in sanitizers:
            s.final_check()
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION\n{exc}")
        return 1

    checks = sum(s.checks_run for s in sanitizers)
    scans = sum(s.deep_scans for s in sanitizers)
    slowdown = sanitized / baseline if baseline > 0 else float("inf")
    print(
        f"fig2 sanitized: ok ({checks} checks, {scans} deep scans, "
        f"0 violations)"
    )
    print(
        f"overhead: baseline {baseline:.2f}s, sanitized {sanitized:.2f}s "
        f"({slowdown:.2f}x)"
    )
    return 0
