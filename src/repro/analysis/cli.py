"""CLI backends for ``zcache-repro lint`` and ``zcache-repro check``.

Kept in the analysis package (rather than ``repro.cli``) so the
tooling — which legitimately measures wall-clock overhead — stays
outside the ZS005 no-host-clock scope that covers simulation code.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from repro.analysis.lint import (
    RULE_REGISTRY,
    LintEngine,
    LintReport,
    default_rules,
    fix_paths,
)
from repro.analysis.sanitizer import InvariantViolation, SanitizedArray


def _split_codes(
    raw: str | None, deep_codes: set[str]
) -> tuple[list[str] | None, list[str] | None, list[str]]:
    """Split a ``--select``/``--ignore`` list into shallow/deep/unknown."""
    if raw is None:
        return None, None, []
    shallow: list[str] = []
    deep: list[str] = []
    unknown: list[str] = []
    for code in (c.strip().upper() for c in raw.split(",") if c.strip()):
        if code in RULE_REGISTRY:
            shallow.append(code)
        elif code in deep_codes:
            deep.append(code)
        else:
            unknown.append(code)
    return shallow, deep, unknown


def run_lint(argv: list[str]) -> int:
    """``zcache-repro lint [paths...]`` — run ZSan; exit 1 on findings.

    ``--deep`` adds the ZProve whole-program rules (ZS101–ZS113) on
    top of the per-file rules; selecting a deep code enables the deep
    pass implicitly. ``--fix`` applies the mechanical repairs first
    (ZS004 ``slots=True`` insertion, ZS001 ``from random import``
    rewrite) and then reports what remains.
    """
    from repro.analysis.semantic import default_deep_rules, run_deep

    parser = argparse.ArgumentParser(
        prog="zcache-repro lint",
        description="Run the ZSan AST lint rules (ZS001-ZS006) and, "
        "with --deep, the ZProve whole-program rules (ZS101-ZS113) "
        "over Python sources. Exits non-zero when any finding is "
        "reported.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=str, default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", type=str, default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the registered rules (per-file and deep) and exit",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program semantic rules (ZS101-ZS113)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply automatic fixes (ZS004 slots, ZS001 import rewrite) "
        "before linting",
    )
    parser.add_argument(
        "--cache", type=str, default=".zsan-cache.json", metavar="PATH",
        help="incremental deep-analysis cache file "
        "(default: .zsan-cache.json)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the deep-analysis cache for this run",
    )
    args = parser.parse_args(argv)

    deep_rules = default_deep_rules()
    deep_codes = {r.code for r in deep_rules}

    if args.rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        for deep_rule in deep_rules:
            print(
                f"{deep_rule.code}  {deep_rule.name} [deep]: "
                f"{deep_rule.summary}"
            )
        return 0

    select_shallow, select_deep, unknown = _split_codes(
        args.select, deep_codes
    )
    ignore_shallow, ignore_deep, unknown_ignored = _split_codes(
        args.ignore, deep_codes
    )
    if unknown or unknown_ignored:
        bad = sorted(set(unknown) | set(unknown_ignored))
        print(f"zsan: error: unknown rule code(s): {bad}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"zsan: error: no such file or directory: {p}", file=sys.stderr)
        return 2

    if args.fix:
        for result in fix_paths(args.paths):
            codes = ",".join(sorted(result.codes))
            print(
                f"zsan: fixed {result.fixes} issue(s) [{codes}] in "
                f"{result.path}",
                file=sys.stderr,
            )

    # --deep runs the whole-program pass (unless --select names only
    # per-file codes); naming a deep code in --select implies --deep.
    run_deep_pass = bool(select_deep) or (
        args.deep and (args.select is None or bool(select_deep))
    )
    findings = []
    files_checked = 0
    if select_shallow is None or select_shallow or not run_deep_pass:
        engine = LintEngine(select=select_shallow, ignore=ignore_shallow)
        shallow_report = engine.lint_paths(args.paths)
        findings.extend(shallow_report.findings)
        files_checked = shallow_report.files_checked

    if run_deep_pass:
        deep_report, stats = run_deep(
            args.paths,
            select=select_deep or None,
            ignore=ignore_deep or None,
            cache_path=None if args.no_cache else args.cache,
        )
        print(stats.render(), file=sys.stderr)
        seen = {(f.code, f.path, f.line, f.column, f.message) for f in findings}
        for f in deep_report.findings:
            if (f.code, f.path, f.line, f.column, f.message) not in seen:
                findings.append(f)
        files_checked = max(files_checked, deep_report.files_checked)

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    report = LintReport(findings=findings, files_checked=files_checked)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code


def _sanitized_zcache_smoke(
    seed: int, accesses: int, deep_interval: int
) -> tuple[int, int]:
    """Random streams through sanitized zcaches across walk configs.

    Returns ``(checks_run, deep_scans)`` summed over the configurations;
    any invariant violation propagates as :class:`InvariantViolation`.
    """
    from repro.core import Cache, ZCacheArray
    from repro.replacement import LRU

    checks = scans = 0
    configs = [
        dict(num_ways=4, lines_per_way=128, levels=2),
        dict(num_ways=4, lines_per_way=128, levels=3, repeat_filter="exact"),
        dict(num_ways=2, lines_per_way=256, levels=4, strategy="dfs"),
    ]
    for i, cfg in enumerate(configs):
        array = SanitizedArray(
            ZCacheArray(hash_seed=seed + i, seed=seed + i, **cfg),
            seed=seed,
            deep_check_interval=deep_interval,
        )
        cache = Cache(array, LRU())
        rng = random.Random(seed + i)
        footprint = 4 * array.num_blocks
        for _ in range(accesses):
            cache.access(rng.randrange(footprint))
        array.final_check()
        checks += array.checks_run
        scans += array.deep_scans
    return checks, scans


def run_check(argv: list[str]) -> int:
    """``zcache-repro check [--sanitize]`` — invariant smoke validation.

    Always runs the Fig. 2 experiment (the paper's uniformity
    validation) as the workload. With ``--sanitize``, every array is
    wrapped in :class:`SanitizedArray`, a sanitized zcache smoke runs
    first, and the report includes the sanitizer overhead relative to
    an unsanitized baseline run. With ``--model``, the exhaustive
    bounded model checker runs *instead*: every access sequence to
    ``--model-depth`` over the tiny default geometries, checking all
    registry invariants plus reference↔turbo bit-identity. With
    ``--lockset``, the dynamic lockset sanitizer runs *instead*:
    threaded serve traffic through an instrumented shard (must come
    back clean), then a planted unlocked shard (must be flagged).
    """
    parser = argparse.ArgumentParser(
        prog="zcache-repro check",
        description="Run the invariant-sanitizer validation suite.",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="wrap arrays in SanitizedArray and verify invariants",
    )
    parser.add_argument(
        "--model", action="store_true",
        help="run the exhaustive bounded model checker over the tiny "
        "default geometries instead of the workload suite",
    )
    parser.add_argument(
        "--model-depth", type=int, default=6, metavar="N",
        help="access-sequence depth for --model (default 6)",
    )
    parser.add_argument(
        "--lockset", action="store_true",
        help="run the dynamic lockset race checker over threaded serve "
        "traffic instead of the workload suite",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--accesses", type=int, default=20_000,
        help="accesses per configuration in the zcache smoke "
        "(default 20000)",
    )
    parser.add_argument(
        "--fig2-accesses", type=int, default=60_000,
        help="accesses per candidate count in the Fig. 2 run "
        "(default 60000, the experiment's own default)",
    )
    parser.add_argument(
        "--deep-interval", type=int, default=64,
        help="full-state scan cadence, in commits (default 64)",
    )
    args = parser.parse_args(argv)

    if args.model:
        from repro.analysis.modelcheck import run_model_check

        t0 = time.perf_counter()
        result = run_model_check(depth=args.model_depth)
        print(result.render())
        print(f"model check: {time.perf_counter() - t0:.1f}s")
        return 0 if result.ok else 1

    if args.lockset:
        from repro.analysis.lockset import (
            instrumented_replay,
            planted_unlocked_replay,
        )

        t0 = time.perf_counter()
        san = instrumented_replay(seed=args.seed)
        print(san.summary())
        if san.reports:
            for report in san.reports:
                print(f"  {report.invariant}: {report.detail}")
            return 1
        planted = planted_unlocked_replay(seed=args.seed)
        if not planted.reports:
            print("planted unlocked shard was NOT flagged")
            return 1
        print(
            "planted unlocked shard flagged: "
            f"{planted.reports[0].detail}"
        )
        print(f"lockset check: {time.perf_counter() - t0:.1f}s")
        return 0

    from repro.experiments import fig2

    try:
        if args.sanitize:
            checks, scans = _sanitized_zcache_smoke(
                args.seed, args.accesses, args.deep_interval
            )
            print(
                f"zcache smoke: ok ({checks} checks, {scans} deep scans, "
                "0 violations)"
            )

        t0 = time.perf_counter()
        fig2.run(accesses=args.fig2_accesses, seed=args.seed)
        baseline = time.perf_counter() - t0

        if not args.sanitize:
            print(f"fig2 baseline: ok in {baseline:.2f}s (no sanitizer)")
            return 0

        sanitizers: list[SanitizedArray] = []

        def wrap(array):
            wrapped = SanitizedArray(
                array, seed=args.seed, deep_check_interval=args.deep_interval
            )
            sanitizers.append(wrapped)
            return wrapped

        t0 = time.perf_counter()
        fig2.run(accesses=args.fig2_accesses, seed=args.seed, wrap_array=wrap)
        sanitized = time.perf_counter() - t0
        for s in sanitizers:
            s.final_check()
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION\n{exc}")
        return 1

    checks = sum(s.checks_run for s in sanitizers)
    scans = sum(s.deep_scans for s in sanitizers)
    slowdown = sanitized / baseline if baseline > 0 else float("inf")
    print(
        f"fig2 sanitized: ok ({checks} checks, {scans} deep scans, "
        f"0 violations)"
    )
    print(
        f"overhead: baseline {baseline:.2f}s, sanitized {sanitized:.2f}s "
        f"({slowdown:.2f}x)"
    )
    return 0
