"""Runtime invariant sanitizer for cache arrays.

:class:`SanitizedArray` wraps any :class:`~repro.core.base.CacheArray`
and re-verifies, from the outside, the invariants the zcache's
correctness rests on:

- **Walk well-formedness** after every ``build_replacement`` /
  ``build_reinsertion``: ancestor paths are acyclic, levels increase by
  exactly one along parent links, a valid candidate's path never
  revisits a position (the ``Candidate.valid`` contract — a repeat
  "would corrupt relocation"), recorded addresses match the array, and
  for hashed arrays every candidate sits at the hash of the relevant
  address.
- **State consistency** after every mutation: the address→position map
  and the dense per-way line arrays agree exactly, no tag appears
  twice, and for hashed arrays every resident block sits at its way's
  hash of its address.
- **Conservation** across ``commit_replacement``: the resident set
  afterwards is exactly the resident set before, minus the evicted
  block, plus the incoming one — relocations move blocks, they never
  create or destroy them.

Violations raise :class:`InvariantViolation`, a structured error
carrying the violated invariant's ``kind``, the experiment ``seed``,
and the tail of the access trace, so a failure can be replayed
deterministically.

Cost model: per-operation checks are O(walk) — proportional to work the
array already did — while the O(cache) deep scan runs every
``deep_check_interval`` commits (default 64) and on :meth:`final_check`.
This keeps the sanitized Fig. 2 validation within the < 3x slowdown
budget while still bounding how long a corruption can stay latent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Position,
    Replacement,
)

#: The invariant classes a :class:`SanitizedArray` distinguishes.
VIOLATION_KINDS = (
    "walk-cycle",
    "walk-level",
    "walk-parent",
    "walk-repeat",
    "walk-stale",
    "walk-bounds",
    "walk-hash",
    "map-desync",
    "duplicate-tag",
    "hash-placement",
    "conservation",
)


class InvariantViolation(RuntimeError):
    """A cache-array invariant failed at runtime.

    Attributes
    ----------
    kind:
        One of :data:`VIOLATION_KINDS` — the invariant class that
        failed (mutation tests key on this).
    detail:
        Human-readable specifics.
    seed:
        The experiment seed supplied to the wrapper, for replay.
    trace:
        The most recent ``(operation, address)`` events, oldest first.
    """

    def __init__(
        self,
        kind: str,
        detail: str,
        *,
        seed: Optional[int] = None,
        trace: tuple = (),
    ) -> None:
        if kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind: {kind!r}")
        self.kind = kind
        self.detail = detail
        self.seed = seed
        self.trace = tuple(trace)
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [f"[{self.kind}] {self.detail}"]
        if self.seed is not None:
            lines.append(f"replay: seed={self.seed}")
        if self.trace:
            tail = ", ".join(
                f"{op}({addr:#x})" if isinstance(addr, int) else f"{op}({addr})"
                for op, addr in self.trace[-8:]
            )
            lines.append(f"trace tail ({len(self.trace)} events): {tail}")
        return "\n".join(lines)


def _iter_path(cand: Candidate, limit: int) -> Iterator[Candidate]:
    """Walk parent links from ``cand`` to the root, yielding each node.

    Stops after ``limit`` nodes so a corrupted cyclic tree cannot hang
    the checker; callers detect the truncation as a cycle.
    """
    node: Optional[Candidate] = cand
    for _ in range(limit):
        if node is None:
            return
        yield node
        node = node.parent


class SanitizedArray:
    """Invariant-checking proxy around a :class:`CacheArray`.

    Drop-in at the controller boundary: wrap the array before handing
    it to :class:`~repro.core.controller.Cache` and every access runs
    sanitized. Attribute reads and writes not intercepted here are
    forwarded to the inner array, so array-specific surface
    (``stats``, ``hashes``, ``candidate_limit`` …) keeps working.

    Parameters
    ----------
    array:
        The array to guard.
    seed:
        Experiment seed embedded in violations for replay.
    trace_limit:
        How many recent operations to retain for violation reports.
    deep_check_interval:
        Run the O(cache) full-state scan every N mutations
        (``0`` disables periodic deep scans; per-operation local checks
        still run, and :meth:`final_check` always scans).
    """

    _OWN = frozenset(
        {
            "_inner", "seed", "_trace", "_trace_limit",
            "_deep_interval", "_mutations", "checks_run", "deep_scans",
        }
    )

    def __init__(
        self,
        array: CacheArray,
        *,
        seed: Optional[int] = None,
        trace_limit: int = 256,
        deep_check_interval: int = 64,
    ) -> None:
        object.__setattr__(self, "_inner", array)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "_trace", [])
        object.__setattr__(self, "_trace_limit", max(1, trace_limit))
        object.__setattr__(self, "_deep_interval", deep_check_interval)
        object.__setattr__(self, "_mutations", 0)
        object.__setattr__(self, "checks_run", 0)
        object.__setattr__(self, "deep_scans", 0)

    # -- delegation ----------------------------------------------------------
    @property
    def array(self) -> CacheArray:
        """The wrapped array (for direct inspection)."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        """Forward anything not intercepted to the inner array."""
        return getattr(self._inner, name)

    def __setattr__(self, name: str, value: Any) -> None:
        """Route attribute writes to the inner array when it owns them.

        Controllers tune the array through attributes (e.g.
        ``AdaptiveZCache`` writes ``candidate_limit``); without this,
        such writes would land on the wrapper and silently detach the
        guarded array from its controller.
        """
        if name in self._OWN or not hasattr(self._inner, name):
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def __contains__(self, address: int) -> bool:
        """Residency test, forwarded."""
        return address in self._inner

    def __len__(self) -> int:
        """Resident block count, forwarded."""
        return len(self._inner)

    # -- trace ----------------------------------------------------------------
    def _note(self, op: str, address: int) -> None:
        self._trace.append((op, address))
        if len(self._trace) > self._trace_limit:
            del self._trace[: -self._trace_limit]

    def _fail(self, kind: str, detail: str) -> None:
        raise InvariantViolation(
            kind, detail, seed=self.seed, trace=tuple(self._trace)
        )

    # -- intercepted operations ----------------------------------------------
    def build_replacement(self, address: int) -> Replacement:
        """Run the walk, then verify the candidate tree (see module doc)."""
        self._note("build", address)
        repl = self._inner.build_replacement(address)
        self.check_walk(repl)
        return repl

    def build_reinsertion(self, address: int) -> Replacement:
        """Run a reinsertion walk (two-phase arrays), then verify it."""
        self._note("reinsert", address)
        repl = self._inner.build_reinsertion(address)
        self.check_walk(repl)
        return repl

    def commit_replacement(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Commit, then verify conservation and relocation-path state."""
        self._note("commit", repl.incoming)
        before = len(self._inner)
        was_resident = repl.incoming in self._inner
        result = self._inner.commit_replacement(repl, chosen)
        self._check_commit(repl, chosen, result, before, was_resident)
        self._after_mutation()
        return result

    def commit_reinsertion(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Commit a reinsertion move, then run the state checks."""
        self._note("commit-reinsert", repl.incoming)
        result = self._inner.commit_reinsertion(repl, chosen)
        self._after_mutation()
        return result

    def evict_address(self, address: int) -> None:
        """Forcibly evict, then verify the block is fully gone."""
        self._note("evict", address)
        self._inner.evict_address(address)
        if self._inner.lookup(address) is not None:
            self._fail(
                "map-desync",
                f"evicted block {address:#x} still resolves in the map",
            )
        self._after_mutation()

    # -- checks ----------------------------------------------------------------
    def _after_mutation(self) -> None:
        self._mutations += 1
        if self._deep_interval and self._mutations % self._deep_interval == 0:
            self.deep_check()

    def check_walk(self, repl: Replacement) -> None:
        """Verify a candidate tree is well-formed against current state.

        Public so tests can feed hand-corrupted trees directly.
        """
        self.checks_run += 1
        cap = len(repl.candidates) + self._inner.num_ways + 1
        hashes = getattr(self._inner, "hashes", None)
        for cand in repl.candidates:
            self._check_candidate(repl, cand, cap, hashes)

    def _check_candidate(
        self,
        repl: Replacement,
        cand: Candidate,
        cap: int,
        hashes: Optional[list],
    ) -> None:
        pos = cand.position
        if not (
            0 <= pos.way < self._inner.num_ways
            and 0 <= pos.index < self._inner.lines_per_way
        ):
            self._fail("walk-bounds", f"candidate position {pos} out of bounds")
        # Parent-link structure: acyclic, levels decreasing by one.
        seen: set[int] = set()
        path = []
        for node in _iter_path(cand, cap):
            if id(node) in seen:
                self._fail(
                    "walk-cycle",
                    f"ancestor chain of candidate at {pos} revisits a node "
                    f"(level {node.level})",
                )
            seen.add(id(node))
            path.append(node)
        if path[-1].parent is not None:
            self._fail(
                "walk-cycle",
                f"ancestor chain of candidate at {pos} exceeds "
                f"{cap} nodes without reaching a root",
            )
        for node in path:
            parent = node.parent
            if parent is None:
                if node.level != 0:
                    self._fail(
                        "walk-level",
                        f"root candidate at {node.position} has level "
                        f"{node.level}, expected 0",
                    )
            else:
                if node.level != parent.level + 1:
                    self._fail(
                        "walk-level",
                        f"candidate at {node.position} has level "
                        f"{node.level} but its parent has level "
                        f"{parent.level}",
                    )
                if parent.address is None:
                    self._fail(
                        "walk-parent",
                        f"candidate at {node.position} expands an empty "
                        f"slot at {parent.position}",
                    )
        if cand.valid:
            positions = [node.position for node in path]
            if len(set(positions)) != len(positions):
                self._fail(
                    "walk-repeat",
                    f"valid candidate at {pos} has a relocation path that "
                    "revisits a position (must be flagged invalid)",
                )
        # Recorded contents must match the array (walks do not mutate).
        actual = self._inner._read(pos)
        if actual != cand.address:
            self._fail(
                "walk-stale",
                f"candidate records {cand.address!r} at {pos} but the "
                f"array holds {actual!r}",
            )
        # Hash discipline: each candidate sits at the hash of the
        # address whose relocation would land there.
        if hashes is not None:
            source = cand.parent.address if cand.parent else repl.incoming
            if source is not None:
                expected = hashes[pos.way](source)
                if pos.index != expected:
                    self._fail(
                        "walk-hash",
                        f"candidate at {pos} is not the way-{pos.way} hash "
                        f"of {source:#x} (expected index {expected})",
                    )

    def _check_commit(
        self,
        repl: Replacement,
        chosen: Candidate,
        result: CommitResult,
        len_before: int,
        was_resident: bool,
    ) -> None:
        self.checks_run += 1
        inner = self._inner
        # Conservation: installed +1, evicted -1 (when a block was evicted).
        expected = len_before + (0 if was_resident else 1)
        if result.evicted is not None:
            expected -= 1
        if len(inner) != expected:
            self._fail(
                "conservation",
                f"resident count {len(inner)} after commit, expected "
                f"{expected} (before={len_before}, "
                f"evicted={result.evicted!r})",
            )
        if result.evicted is not None and inner.lookup(result.evicted) is not None:
            self._fail(
                "conservation",
                f"evicted block {result.evicted:#x} is still resident",
            )
        # The incoming block must land at the relocation path's root.
        root = chosen
        for root in _iter_path(chosen, len(repl.candidates) + inner.num_ways + 1):
            pass
        pos = inner.lookup(repl.incoming)
        if pos is None:
            self._fail(
                "conservation",
                f"incoming block {repl.incoming:#x} not resident after commit",
            )
        elif pos != root.position:
            self._fail(
                "map-desync",
                f"incoming block {repl.incoming:#x} at {pos}, expected the "
                f"path root {root.position}",
            )
        # Every relocated block moved exactly one step down the path.
        node = chosen
        while node.parent is not None:
            moved = node.parent.address
            if moved is not None and inner.lookup(moved) != node.position:
                self._fail(
                    "map-desync",
                    f"relocated block {moved:#x} is not at {node.position} "
                    "after commit",
                )
            node = node.parent

    def deep_check(self) -> None:
        """Full O(cache) scan: map↔lines sync, tag uniqueness, hashing."""
        self.deep_scans += 1
        inner = self._inner
        seen: dict[int, Position] = {}
        for way in range(inner.num_ways):
            line = inner._lines[way]
            for index in range(inner.lines_per_way):
                addr = line[index]
                if addr is None:
                    continue
                pos = Position(way, index)
                if addr in seen:
                    self._fail(
                        "duplicate-tag",
                        f"block {addr:#x} stored at both {seen[addr]} "
                        f"and {pos}",
                    )
                seen[addr] = pos
                mapped = inner._pos.get(addr)
                if mapped != pos:
                    self._fail(
                        "map-desync",
                        f"line {pos} holds {addr:#x} but the map says "
                        f"{mapped!r}",
                    )
        stale = set(inner._pos) - set(seen)
        if stale:
            addr = next(iter(stale))
            self._fail(
                "map-desync",
                f"map entry {addr:#x} -> {inner._pos[addr]} points at a "
                "line that does not hold it",
            )
        hashes = getattr(inner, "hashes", None)
        if hashes is not None:
            for addr, pos in inner._pos.items():
                expected = hashes[pos.way](addr)
                if pos.index != expected:
                    self._fail(
                        "hash-placement",
                        f"block {addr:#x} at index {pos.index} of way "
                        f"{pos.way}, but hashes to {expected}",
                    )

    def final_check(self) -> None:
        """Deep scan to run once at end of experiment (always O(cache))."""
        self.deep_check()


def sanitize(
    array: CacheArray, seed: Optional[int] = None, **kwargs: Any
) -> SanitizedArray:
    """Convenience wrapper: ``sanitize(arr, seed)`` == ``SanitizedArray``.

    Usable directly as the ``wrap_array`` hook experiments expose::

        fig2.run(wrap_array=lambda a: sanitize(a, seed=0))
    """
    return SanitizedArray(array, seed=seed, **kwargs)


def make_wrapper(
    seed: Optional[int] = None, **kwargs: Any
) -> Callable[[CacheArray], SanitizedArray]:
    """A ``wrap_array`` callable pre-bound to a seed and options."""

    def wrap(array: CacheArray) -> SanitizedArray:
        """Wrap one array with the captured sanitizer options."""
        return SanitizedArray(array, seed=seed, **kwargs)

    return wrap
