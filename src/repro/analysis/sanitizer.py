"""Runtime invariant sanitizer for cache arrays.

:class:`SanitizedArray` wraps any :class:`~repro.core.base.CacheArray`
and re-verifies, from the outside, the invariants the zcache's
correctness rests on. The invariants themselves live in the declarative
registry (:mod:`repro.analysis.spec`); this module is the thin runtime
driver that builds the scope-appropriate check context around every
intercepted operation and raises on the first violated invariant:

- **walk** scope after every ``build_replacement`` /
  ``build_reinsertion``: ancestor paths are acyclic, levels increase by
  exactly one along parent links, a valid candidate's path never
  revisits a position, recorded addresses match the array, and for
  hashed arrays every candidate sits at the hash of the relevant
  address.
- **commit** scope after every successful ``commit_replacement``:
  block conservation, the incoming block at the path root, relocated
  blocks one step down their path.
- **phase** scope around every commit *attempt* (including
  ``commit_reinsertion``): a commit over a stale path must be rejected,
  and a rejected commit must not corrupt state — the two-phase
  protocol's staleness/atomicity contract.
- **state** scope every ``deep_check_interval`` mutations and on
  :meth:`~SanitizedArray.final_check`: map↔lines sync, tag uniqueness,
  hash placement.

Violations raise :class:`InvariantViolation`, a structured error
carrying the violated invariant's ``kind`` and registry ``name``, the
experiment ``seed``, and the tail of the access trace, so a failure can
be replayed deterministically.

Cost model: per-operation checks are O(walk) — proportional to work the
array already did — while the O(cache) deep scan runs every
``deep_check_interval`` commits (default 64) and on :meth:`final_check`.
This keeps the sanitized Fig. 2 validation within the < 3x slowdown
budget while still bounding how long a corruption can stay latent.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.analysis.spec import (
    SCOPE_COMMIT,
    SCOPE_EVICT,
    SCOPE_PHASE,
    SCOPE_STATE,
    SCOPE_WALK,
    VIOLATION_KINDS,
    CommitCheck,
    EvictCheck,
    PhaseCheck,
    StateCheck,
    WalkCheck,
    invariants_for,
    stale_path_detail,
)
from repro.core.base import (
    CacheArray,
    Candidate,
    CommitResult,
    Replacement,
)

__all__ = [
    "VIOLATION_KINDS",
    "InvariantViolation",
    "SanitizedArray",
    "make_wrapper",
    "sanitize",
]

# Scope slices of the registry, resolved once at import (the registry
# is fully populated by the spec module's own import).
def _bind(scope: str) -> Tuple[Tuple[Callable[..., Optional[str]], str, str], ...]:
    """Pre-bound ``(check, kind, name)`` triples for one scope.

    The walk checks run per candidate per miss; resolving three
    dataclass attributes per invariant per candidate is a measurable
    slice of the sanitized hot loop, so the driver binds them once at
    import.
    """
    return tuple(
        (inv.check, inv.kind, inv.name) for inv in invariants_for(scope)
    )


_WALK = _bind(SCOPE_WALK)
_COMMIT = _bind(SCOPE_COMMIT)
_EVICT = _bind(SCOPE_EVICT)
_STATE = _bind(SCOPE_STATE)
_PHASE = _bind(SCOPE_PHASE)


class InvariantViolation(RuntimeError):
    """A cache-array invariant failed at runtime.

    Attributes
    ----------
    kind:
        One of :data:`~repro.analysis.spec.VIOLATION_KINDS` — the
        invariant class that failed (mutation tests key on this).
    detail:
        Human-readable specifics.
    invariant:
        The registry name of the violated
        :class:`~repro.analysis.spec.Invariant`, when known.
    seed:
        The experiment seed supplied to the wrapper, for replay.
    trace:
        The most recent ``(operation, address)`` events, oldest first.
    """

    def __init__(
        self,
        kind: str,
        detail: str,
        *,
        invariant: Optional[str] = None,
        seed: Optional[int] = None,
        trace: tuple = (),
    ) -> None:
        if kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind: {kind!r}")
        self.kind = kind
        self.detail = detail
        self.invariant = invariant
        self.seed = seed
        self.trace = tuple(trace)
        super().__init__(self._render())

    def _render(self) -> str:
        lines = [f"[{self.kind}] {self.detail}"]
        if self.invariant is not None:
            lines.append(f"invariant: {self.invariant}")
        if self.seed is not None:
            lines.append(f"replay: seed={self.seed}")
        if self.trace:
            tail = ", ".join(
                f"{op}({addr:#x})" if isinstance(addr, int) else f"{op}({addr})"
                for op, addr in self.trace[-8:]
            )
            lines.append(f"trace tail ({len(self.trace)} events): {tail}")
        return "\n".join(lines)


class SanitizedArray:
    """Invariant-checking proxy around a :class:`CacheArray`.

    Drop-in at the controller boundary: wrap the array before handing
    it to :class:`~repro.core.controller.Cache` and every access runs
    sanitized. Attribute reads and writes not intercepted here are
    forwarded to the inner array, so array-specific surface
    (``stats``, ``hashes``, ``candidate_limit`` …) keeps working.

    Parameters
    ----------
    array:
        The array to guard.
    seed:
        Experiment seed embedded in violations for replay.
    trace_limit:
        How many recent operations to retain for violation reports.
    deep_check_interval:
        Run the O(cache) full-state scan every N mutations
        (``0`` disables periodic deep scans; per-operation local checks
        still run, and :meth:`final_check` always scans).
    """

    _OWN = frozenset(
        {
            "_inner", "seed", "_trace", "_trace_limit",
            "_deep_interval", "_mutations", "checks_run", "deep_scans",
        }
    )

    def __init__(
        self,
        array: CacheArray,
        *,
        seed: Optional[int] = None,
        trace_limit: int = 256,
        deep_check_interval: int = 64,
    ) -> None:
        object.__setattr__(self, "_inner", array)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "_trace", [])
        object.__setattr__(self, "_trace_limit", max(1, trace_limit))
        object.__setattr__(self, "_deep_interval", deep_check_interval)
        object.__setattr__(self, "_mutations", 0)
        object.__setattr__(self, "checks_run", 0)
        object.__setattr__(self, "deep_scans", 0)

    # -- delegation ----------------------------------------------------------
    @property
    def array(self) -> CacheArray:
        """The wrapped array (for direct inspection)."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        """Forward anything not intercepted to the inner array.

        The ``__dict__`` lookup (not ``self._inner``) keeps copy/pickle
        reconstruction safe: those protocols probe dunders on a blank
        instance before any state is restored, and recursing into
        ``__getattr__`` for ``_inner`` itself would never terminate.
        """
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def __setattr__(self, name: str, value: Any) -> None:
        """Route attribute writes to the inner array when it owns them.

        Controllers tune the array through attributes (e.g.
        ``AdaptiveZCache`` writes ``candidate_limit``); without this,
        such writes would land on the wrapper and silently detach the
        guarded array from its controller.
        """
        if name in self._OWN or not hasattr(self._inner, name):
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def __contains__(self, address: int) -> bool:
        """Residency test, forwarded."""
        return address in self._inner

    def __len__(self) -> int:
        """Resident block count, forwarded."""
        return len(self._inner)

    # -- trace ----------------------------------------------------------------
    def _note(self, op: str, address: int) -> None:
        self._trace.append((op, address))
        if len(self._trace) > self._trace_limit:
            del self._trace[: -self._trace_limit]

    def _fail(
        self, kind: str, detail: str, *, invariant: Optional[str] = None
    ) -> None:
        raise InvariantViolation(
            kind, detail, invariant=invariant, seed=self.seed,
            trace=tuple(self._trace),
        )

    def _run(
        self,
        invariants: Tuple[Tuple[Callable[..., Optional[str]], str, str], ...],
        ctx: object,
    ) -> None:
        """Evaluate registry invariants, raising on the first violation."""
        for check, kind, name in invariants:
            detail = check(ctx)
            if detail is not None:
                self._fail(kind, detail, invariant=name)

    # -- intercepted operations ----------------------------------------------
    def build_replacement(self, address: int) -> Replacement:
        """Run the walk, then verify the candidate tree (see module doc)."""
        self._note("build", address)
        repl = self._inner.build_replacement(address)
        self.check_walk(repl)
        return repl

    def build_reinsertion(self, address: int) -> Replacement:
        """Run a reinsertion walk (two-phase arrays), then verify it."""
        self._note("reinsert", address)
        repl = self._inner.build_reinsertion(address)
        self.check_walk(repl)
        return repl

    def commit_replacement(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Commit, then verify conservation and relocation-path state."""
        self._note("commit", repl.incoming)
        inner = self._inner
        before = len(inner)
        was_resident = repl.incoming in inner
        stale = stale_path_detail(inner, chosen)
        try:
            result = inner.commit_replacement(repl, chosen)
        except RuntimeError as exc:
            self._check_phase(repl, chosen, stale, exc, before, was_resident)
            raise
        self._check_commit(repl, chosen, result, before, was_resident)
        self._check_phase(repl, chosen, stale, None, before, was_resident)
        self._after_mutation()
        return result

    def commit_reinsertion(
        self, repl: Replacement, chosen: Candidate
    ) -> CommitResult:
        """Commit a reinsertion move, then run the phase/state checks."""
        self._note("commit-reinsert", repl.incoming)
        inner = self._inner
        before = len(inner)
        was_resident = repl.incoming in inner
        stale = stale_path_detail(inner, chosen)
        try:
            result = inner.commit_reinsertion(repl, chosen)
        except RuntimeError as exc:
            self._check_phase(repl, chosen, stale, exc, before, was_resident)
            raise
        self._check_phase(repl, chosen, stale, None, before, was_resident)
        self._after_mutation()
        return result

    def evict_address(self, address: int) -> None:
        """Forcibly evict, then verify the block is fully gone."""
        self._note("evict", address)
        self._inner.evict_address(address)
        self._run(_EVICT, EvictCheck(self._inner, address))
        self._after_mutation()

    # -- checks ----------------------------------------------------------------
    def _after_mutation(self) -> None:
        self._mutations += 1
        if self._deep_interval and self._mutations % self._deep_interval == 0:
            self.deep_check()

    def check_walk(self, repl: Replacement) -> None:
        """Verify a candidate tree is well-formed against current state.

        Public so tests can feed hand-corrupted trees directly.
        """
        self.checks_run += 1
        inner = self._inner
        # Hoist the per-walk constants out of the per-candidate loop:
        # this runs for every candidate of every miss.
        cap = len(repl.candidates) + inner.num_ways + 1
        hashes = getattr(inner, "hashes", None)
        fail = self._fail
        for cand in repl.candidates:
            ctx = WalkCheck(inner, repl, cand, cap, hashes)
            # _run inlined: one call frame per candidate adds up here.
            for check, kind, name in _WALK:
                detail = check(ctx)
                if detail is not None:
                    fail(kind, detail, invariant=name)

    def _check_commit(
        self,
        repl: Replacement,
        chosen: Candidate,
        result: CommitResult,
        len_before: int,
        was_resident: bool,
    ) -> None:
        self.checks_run += 1
        self._run(
            _COMMIT,
            CommitCheck(
                self._inner, repl, chosen, result, len_before, was_resident
            ),
        )

    def _check_phase(
        self,
        repl: Replacement,
        chosen: Candidate,
        stale: Optional[str],
        error: Optional[BaseException],
        len_before: int,
        incoming_before: bool,
    ) -> None:
        """Run the two-phase staleness/atomicity invariants for one attempt.

        A rejected commit (``error`` set) additionally gets a full state
        scan: stale-path rejections are rare (``stale_retries`` counts
        them), and the atomicity contract is precisely that a rejection
        leaves a *consistent* array behind for the retry walk.
        """
        inner = self._inner
        ctx = PhaseCheck(
            inner,
            repl,
            chosen,
            stale_detail=stale,
            error=error,
            len_before=len_before,
            len_after=len(inner),
            incoming_resident_before=incoming_before,
            incoming_resident_after=repl.incoming in inner,
        )
        self._run(_PHASE, ctx)
        if error is not None:
            self.deep_check()

    def deep_check(self) -> None:
        """Full O(cache) scan: map↔lines sync, tag uniqueness, hashing."""
        self.deep_scans += 1
        self._run(_STATE, StateCheck(self._inner))

    def final_check(self) -> None:
        """Deep scan to run once at end of experiment (always O(cache))."""
        self.deep_check()


def sanitize(
    array: CacheArray, seed: Optional[int] = None, **kwargs: Any
) -> SanitizedArray:
    """Convenience wrapper: ``sanitize(arr, seed)`` == ``SanitizedArray``.

    Usable directly as the ``wrap_array`` hook experiments expose::

        fig2.run(wrap_array=lambda a: sanitize(a, seed=0))
    """
    return SanitizedArray(array, seed=seed, **kwargs)


def make_wrapper(
    seed: Optional[int] = None, **kwargs: Any
) -> Callable[[CacheArray], SanitizedArray]:
    """A ``wrap_array`` callable pre-bound to a seed and options."""

    def wrap(array: CacheArray) -> SanitizedArray:
        """Wrap one array with the captured sanitizer options."""
        return SanitizedArray(array, seed=seed, **kwargs)

    return wrap
