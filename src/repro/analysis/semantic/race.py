"""ZRace: thread-aware lockset analysis and deep rules ZS110–ZS113.

The serve layer (PR 8) runs the zcache under real threads with a prose
concurrency discipline: reads are lock-free GIL-atomic dict lookups,
replacement walks run off-lock through ``prepare_fill``, and every
mutation of shard state happens under the owning shard lock. The
effect rules ZS105–ZS108 reason about purity and state but are
thread-blind; this module makes the discipline checkable.

:class:`RaceAnalysis` extends the call-graph/effect machinery with:

- **guarded classes** — a class whose ``__init__`` binds a
  ``threading.Lock``/``RLock`` to an attribute declares, by that act,
  that its other instance attributes are shared state owned by that
  lock;
- an **attribute-type table** built from constructor calls, annotated
  parameters, and (string) annotations, so calls the name-based call
  graph cannot see (``self.cache.access(...)``) still resolve — with
  subclass widening, so an abstract receiver reaches every analyzed
  implementation;
- **thread roots** — ``threading.Thread(target=...)`` call sites and
  ``socketserver`` request-handler ``handle`` methods — and the code
  reachable from each;
- **locksets** — per function, which ``with <lock>:`` blocks are held
  lexically at each mutation/call site, plus an interprocedural
  *entry lockset*: the intersection, over every resolved in-tree call
  site, of the locks held when the function is entered. Entry locksets
  only ever *excuse* a mutation (a helper called exclusively under the
  shard lock is as locked as its callers), never condemn one.

Four deep rules consume the analysis:

- **ZS110 lock-discipline** — every mutation of a guarded class's
  shared state must hold one of the owning locks. Counter folds
  (``self._c_x.value += 1``) are sanctioned as GIL-atomic, and a
  ``# zrace: atomic`` marker (on the mutation line or the enclosing
  ``def``) whitelists deliberate lock-free writes such as the
  recency-buffer append.
- **ZS111 lock-ordering & hold hygiene** — builds the global
  lock-acquisition graph (lexical nesting plus calls that transitively
  acquire) and flags every edge on a cycle as a potential deadlock;
  also flags blocking calls (socket I/O, ``serve_forever``, digest
  construction) made — directly or transitively — while a lock is
  held, and raw ``.acquire()`` calls outside ``with``.
- **ZS112 off-lock purity** — everything reachable off-lock from a
  ``prepare_fill`` method or a guarded class's ``get`` must be
  mutation-free: no array-state writes, no guarded-field writes.
  Call sites under a lock prune their subtree (that is the commit
  half of the protocol).
- **ZS113 thread-escape** — code reachable from a thread root must
  not mutate module-level state or declare ``global``/``nonlocal``;
  parameters (the loadgen ``results[index] = ...`` idiom) and
  ``self`` are the sanctioned channels, and instance state is ZS110's
  concern.

The analysis scans only modules under ``serve``/``core`` path parts —
the packages the threaded service executes — which keeps the pass
cheap and keeps simulator-only code out of the thread rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.engine import Finding
from repro.analysis.semantic.callgraph import FuncKey, func_key, resolve_call
from repro.analysis.semantic.deeprules import DeepRule, register_deep_rule
from repro.analysis.semantic.effects import (
    _STATE_MUTATORS,
    _attr_parts,
    _fold_name,
    _touches_state,
)
from repro.analysis.semantic.modulegraph import ModuleInfo
from repro.analysis.semantic.symbols import ClassInfo, FunctionInfo, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.semantic.model import SemanticModel

#: packages the thread-aware pass analyzes (path parts)
_RACE_PARTS = frozenset({"serve", "core"})
#: packages where the serve-only rules (ZS110/ZS111/ZS113) anchor
_SERVE_PARTS = frozenset({"serve"})

#: marker sanctioning a deliberate lock-free (GIL-atomic) mutation
_RACE_ATOMIC_MARKER = "# zrace: atomic"

#: constructors whose assignment declares a guarding lock attribute
_LOCK_CTORS = frozenset({"Lock", "RLock"})

#: ``socketserver`` bases whose ``handle`` runs on a server thread
_THREAD_HANDLER_BASES = frozenset(
    {"BaseRequestHandler", "StreamRequestHandler", "DatagramRequestHandler"}
)

#: attribute calls that mutate their receiver: the container mutators
#: the effect analysis knows, plus the cache/policy write entry points
_MUTATING_CALLS = _STATE_MUTATORS | frozenset(
    {
        "access",
        "invalidate",
        "commit_prepared",
        "commit_replacement",
        "commit_reinsertion",
        "evict_address",
        "absorb_writeback",
        "on_insert",
        "on_access",
        "on_evict",
        "drain_evicted",
        "drain_score_updates",
        "move_to_end",
    }
)

#: call tails that block or burn unbounded time: never while a shard
#: lock is held. Digest constructors are included because the serve
#: layer fingerprints whole payloads (large enough to drop the GIL).
_BLOCKING_CALLS = frozenset(
    {
        "serve_forever",
        "accept",
        "connect",
        "create_connection",
        "recv",
        "recv_into",
        "sendall",
        "send",
        "sendto",
        "makefile",
        "readline",
        "flush",
        "sleep",
        "wait",
        "select",
        "blake2b",
        "sha256",
        "md5",
    }
)

#: generic annotation wrappers to look through when typing attributes
_ANNOTATION_WRAPPERS = frozenset({"Optional", "Union", "Final", "ClassVar"})


def _in_parts(path: Path, parts: FrozenSet[str]) -> bool:
    return bool(parts & set(path.parts))


@dataclass(frozen=True)
class GuardedClass:
    """A class whose ``__init__`` binds one or more ``Lock`` attributes."""

    module: str
    name: str
    cls: ClassInfo = field(compare=False)
    #: ``"ClassName.lock_attr"`` tokens, one per lock attribute
    lock_tokens: FrozenSet[str]
    #: instance attributes assigned in ``__init__``/``__post_init__``
    #: (the shared state the locks own), lock attributes excluded
    fields: FrozenSet[str]


@dataclass(frozen=True)
class WriteSite:
    """One mutation of guarded or array state, with its held locks."""

    node: ast.AST = field(compare=False)
    line: int
    #: attribute written through
    attr: str
    #: guarded class owning ``attr``, or ``None`` for array-state writes
    owner: Optional[str]
    desc: str
    held: FrozenSet[str]
    #: counter fold or ``# zrace: atomic`` — exempt everywhere
    sanctioned: bool


@dataclass(frozen=True)
class CallSite:
    """One resolved call, with the lock tokens held lexically at it."""

    node: ast.Call = field(compare=False)
    line: int
    tail: str
    held: FrozenSet[str]
    targets: Tuple[FuncKey, ...]


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    node: ast.AST = field(compare=False)
    line: int
    token: str
    held_before: FrozenSet[str]


@dataclass(frozen=True)
class BlockingSite:
    """One direct blocking call and the locks held lexically at it."""

    node: ast.Call = field(compare=False)
    line: int
    name: str
    held: FrozenSet[str]


@dataclass
class FunctionRaceInfo:
    """Everything the race rules need to know about one function."""

    key: FuncKey
    writes: List[WriteSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    bare_acquires: List[ast.Call] = field(default_factory=list)
    #: lock tokens this function acquires lexically
    lock_tokens: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class ThreadRoot:
    """One inferred thread entry point."""

    key: FuncKey
    label: str
    module: str
    node: ast.AST = field(compare=False)


@dataclass(frozen=True)
class LockEdge:
    """Acquired ``dst`` while holding ``src`` (site in ``module``)."""

    src: str
    dst: str
    module: str
    node: ast.AST = field(compare=False)
    line: int


class RaceAnalysis:
    """Lazy thread/lockset extraction over the serve/core modules."""

    def __init__(self, model: "SemanticModel") -> None:
        self.model = model
        #: every function a scan resolved a call to, by key
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        self._scanned: Dict[FuncKey, FunctionRaceInfo] = {}
        self._guarded: Dict[str, Dict[str, GuardedClass]] = {}
        self._attr_types: Dict[Tuple[str, str], Dict[str, Tuple[str, ...]]] = {}
        self._class_index: Optional[Dict[str, Tuple[str, ClassInfo]]] = None
        self._ancestor_tails: Dict[str, FrozenSet[str]] = {}
        self._source_lines: Dict[str, List[str]] = {}
        self._entry: Optional[Dict[FuncKey, FrozenSet[str]]] = None
        self._edges: Optional[List[LockEdge]] = None
        self._cyclic: Optional[Set[Tuple[str, str]]] = None
        self._roots: Optional[List[ThreadRoot]] = None
        self._trans_acquires: Dict[FuncKey, FrozenSet[str]] = {}
        self._trans_blocking: Dict[FuncKey, FrozenSet[str]] = {}

    # -- module universe ----------------------------------------------------
    def scope_modules(self) -> List[str]:
        """Modules the thread-aware pass analyzes, in stable order."""
        return sorted(
            name
            for name, info in self.model.graph.modules.items()
            if _in_parts(info.path, _RACE_PARTS)
        )

    def _module_info(self, module: str) -> Optional[ModuleInfo]:
        return self.model.graph.modules.get(module)

    def _lines_of(self, module: str) -> List[str]:
        lines = self._source_lines.get(module)
        if lines is None:
            info = self._module_info(module)
            lines = info.text.splitlines() if info is not None else []
            self._source_lines[module] = lines
        return lines

    # -- guarded classes ----------------------------------------------------
    def guarded_in(self, module: str) -> Dict[str, GuardedClass]:
        """Guarded classes defined in ``module`` (memoized)."""
        cached = self._guarded.get(module)
        if cached is not None:
            return cached
        out: Dict[str, GuardedClass] = {}
        symbols = self.model.symbols_of(module)
        if symbols is None:
            self._guarded[module] = out
            return out
        for cname in sorted(symbols.classes):
            cls = symbols.classes[cname]
            lock_attrs: Set[str] = set()
            fields: Set[str] = set()
            for mname in ("__init__", "__post_init__"):
                method = cls.methods.get(mname)
                if method is None:
                    continue
                for node in ast.walk(method.node):
                    if not isinstance(
                        node, (ast.Assign, ast.AnnAssign, ast.AugAssign)
                    ):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = getattr(node, "value", None)
                    for target in targets:
                        parts = _attr_parts(target)
                        if len(parts) < 2 or parts[0] != "self":
                            continue
                        fields.add(parts[1])
                        if isinstance(value, ast.Call):
                            tail = (dotted_name(value.func) or "").rsplit(
                                ".", 1
                            )[-1]
                            if tail in _LOCK_CTORS and len(parts) == 2:
                                lock_attrs.add(parts[1])
            if lock_attrs:
                out[cname] = GuardedClass(
                    module=module,
                    name=cname,
                    cls=cls,
                    lock_tokens=frozenset(
                        f"{cname}.{attr}" for attr in lock_attrs
                    ),
                    fields=frozenset(fields - lock_attrs),
                )
        self._guarded[module] = out
        return out

    # -- class index / attribute types --------------------------------------
    def class_index(self) -> Dict[str, Tuple[str, ClassInfo]]:
        """``name -> (module, ClassInfo)`` over the scope modules."""
        if self._class_index is None:
            index: Dict[str, Tuple[str, ClassInfo]] = {}
            for module in self.scope_modules():
                symbols = self.model.symbols_of(module)
                if symbols is None:
                    continue
                for cname, cls in symbols.classes.items():
                    index.setdefault(cname, (module, cls))
            self._class_index = index
        return self._class_index

    def ancestor_tails(self, cname: str) -> FrozenSet[str]:
        """Transitive base-class tails of an indexed class (plus self)."""
        cached = self._ancestor_tails.get(cname)
        if cached is not None:
            return cached
        self._ancestor_tails[cname] = frozenset({cname})  # cycle guard
        tails: Set[str] = {cname}
        entry = self.class_index().get(cname)
        if entry is not None:
            for base in entry[1].base_tails():
                tails.add(base)
                tails |= self.ancestor_tails(base)
        result = frozenset(tails)
        self._ancestor_tails[cname] = result
        return result

    def _annotation_names(self, node: Optional[ast.expr]) -> Tuple[str, ...]:
        """Class-name candidates an annotation expression denotes."""
        if node is None:
            return ()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return ()
            return self._annotation_names(inner)
        if isinstance(node, ast.Name):
            return (node.id,)
        if isinstance(node, ast.Attribute):
            return (node.attr,)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_names(node.left) + self._annotation_names(
                node.right
            )
        if isinstance(node, ast.Subscript):
            head = _attr_parts(node.value)
            if head and head[-1] in _ANNOTATION_WRAPPERS:
                inner = node.slice
                if isinstance(inner, ast.Tuple):
                    out: Tuple[str, ...] = ()
                    for elt in inner.elts:
                        out += self._annotation_names(elt)
                    return out
                return self._annotation_names(inner)
        return ()

    def _param_types(self, fn: FunctionInfo) -> Dict[str, Tuple[str, ...]]:
        """``param -> candidate class names`` from signature annotations."""
        out: Dict[str, Tuple[str, ...]] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = self._annotation_names(arg.annotation)
            if names:
                out[arg.arg] = names
        return out

    def attr_types(self, module: str, cname: str) -> Dict[str, Tuple[str, ...]]:
        """``self.<attr> -> candidate class names`` for one class.

        Merges base-class tables (subclass assignments win), then folds
        in class-level annotations, ``self.x: T`` annotations, ``self.x
        = ClassName(...)`` constructor calls, and ``self.x = param``
        for annotated parameters.
        """
        memo_key = (module, cname)
        cached = self._attr_types.get(memo_key)
        if cached is not None:
            return cached
        self._attr_types[memo_key] = {}  # cycle guard for odd hierarchies
        out: Dict[str, Tuple[str, ...]] = {}
        entry = self.class_index().get(cname)
        if entry is None:
            return out
        cmodule, cls = entry
        for base in cls.base_tails():
            base_entry = self.class_index().get(base)
            if base_entry is not None:
                out.update(self.attr_types(base_entry[0], base))
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                names = self._annotation_names(stmt.annotation)
                if names:
                    out[stmt.target.id] = names
        for method in cls.methods.values():
            params = self._param_types(method)
            for node in ast.walk(method.node):
                attr: Optional[str] = None
                names = ()
                if isinstance(node, ast.AnnAssign):
                    parts = _attr_parts(node.target)
                    if len(parts) == 2 and parts[0] == "self":
                        attr = parts[1]
                        names = self._annotation_names(node.annotation)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    parts = _attr_parts(node.targets[0])
                    if len(parts) == 2 and parts[0] == "self":
                        attr = parts[1]
                        if isinstance(node.value, ast.Call):
                            tail = (
                                dotted_name(node.value.func) or ""
                            ).rsplit(".", 1)[-1]
                            if tail in self.class_index():
                                names = (tail,)
                        elif isinstance(node.value, ast.Name):
                            names = params.get(node.value.id, ())
                if attr is not None and names:
                    out[attr] = names
        self._attr_types[memo_key] = out
        return out

    def _method_impls(self, tname: str, method: str) -> List[FunctionInfo]:
        """Implementations of ``tname.method``, widened to subclasses."""
        out: List[FunctionInfo] = []
        seen: Set[FuncKey] = set()

        def add(fn: Optional[FunctionInfo]) -> None:
            if fn is None:
                return
            key = func_key(fn)
            if key not in seen:
                seen.add(key)
                self.functions.setdefault(key, fn)
                out.append(fn)

        entry = self.class_index().get(tname)
        if entry is not None:
            add(self._lookup_method(entry[1], method))
        for dname, (_dmod, dcls) in self.class_index().items():
            if dname != tname and tname in self.ancestor_tails(dname):
                add(dcls.methods.get(method))
        return out

    def _lookup_method(
        self, cls: ClassInfo, method: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        if method in cls.methods:
            return cls.methods[method]
        if depth > 8:
            return None
        for base in cls.base_tails():
            entry = self.class_index().get(base)
            if entry is not None and entry[1] is not cls:
                found = self._lookup_method(entry[1], method, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_targets(
        self, module: str, call: ast.Call, enclosing: FunctionInfo
    ) -> Tuple[FuncKey, ...]:
        """Call targets: the call graph's resolution plus attr types."""
        direct = resolve_call(self.model, module, call, enclosing)
        if direct is not None:
            key = func_key(direct)
            self.functions.setdefault(key, direct)
            return (key,)
        func = call.func
        if not isinstance(func, ast.Attribute):
            return ()
        parts = _attr_parts(func)
        type_names: Tuple[str, ...] = ()
        method = ""
        if (
            len(parts) == 3
            and parts[0] in ("self", "cls")
            and enclosing.class_name
        ):
            type_names = self.attr_types(module, enclosing.class_name).get(
                parts[1], ()
            )
            method = parts[2]
        elif len(parts) == 2 and parts[0] not in ("self", "cls"):
            type_names = self._param_types(enclosing).get(parts[0], ())
            method = parts[1]
        targets: List[FuncKey] = []
        for tname in type_names:
            for impl in self._method_impls(tname, method):
                key = func_key(impl)
                if key not in targets:
                    targets.append(key)
        return tuple(targets)

    # -- per-function scan ---------------------------------------------------
    def _lock_token(
        self,
        module: str,
        expr: ast.expr,
        enclosing: FunctionInfo,
        param_types: Dict[str, Tuple[str, ...]],
    ) -> Optional[str]:
        """Lock token a ``with`` item acquires, if it looks like one."""
        if isinstance(expr, ast.Call):
            return None
        parts = _attr_parts(expr)
        if not parts or "lock" not in parts[-1].lower():
            return None
        tail = parts[-1]
        if len(parts) == 1:
            return f"{module}:{tail}"
        root = parts[0]
        if root in ("self", "cls") and enclosing.class_name:
            if len(parts) == 2:
                return f"{enclosing.class_name}.{tail}"
            typed = self.attr_types(module, enclosing.class_name).get(
                parts[1], ()
            )
            owner = typed[0] if typed else ".".join(parts[:-1])
            return f"{owner}.{tail}"
        typed = param_types.get(root, ())
        owner = typed[0] if typed else ".".join(parts[:-1])
        return f"{owner}.{tail}"

    def _sanctioned(self, module: str, fn: FunctionInfo, line: int) -> bool:
        """``# zrace: atomic`` on the mutation line or the ``def`` line."""
        lines = self._lines_of(module)
        for lineno in (line, fn.node.lineno):
            if 1 <= lineno <= len(lines):
                if _RACE_ATOMIC_MARKER in lines[lineno - 1]:
                    return True
        return False

    def function_info(self, fn: FunctionInfo) -> FunctionRaceInfo:
        """Lockset-annotated scan of one function (memoized)."""
        key = func_key(fn)
        cached = self._scanned.get(key)
        if cached is not None:
            return cached
        self.functions.setdefault(key, fn)
        module = fn.module
        param_types = self._param_types(fn)
        guard = self.guarded_in(module).get(fn.class_name or "")
        fri = FunctionRaceInfo(key=key)
        acquired_tokens: Set[str] = set()

        def record_write(
            stmt: ast.AST, target: ast.expr, verb: str, held: FrozenSet[str]
        ) -> None:
            if isinstance(stmt, ast.AugAssign) and _fold_name(stmt.target):
                return  # GIL-atomic counter fold, sanctioned everywhere
            line = getattr(stmt, "lineno", fn.node.lineno)
            sanction = self._sanctioned(module, fn, line)
            parts = _attr_parts(target)
            if (
                guard is not None
                and len(parts) >= 2
                and parts[0] == "self"
                and parts[1] in guard.fields
            ):
                fri.writes.append(
                    WriteSite(
                        node=stmt,
                        line=line,
                        attr=parts[1],
                        owner=guard.name,
                        desc=f"{verb} through 'self.{parts[1]}'",
                        held=held,
                        sanctioned=sanction,
                    )
                )
                return
            attr = _touches_state(target)
            if attr is not None:
                fri.writes.append(
                    WriteSite(
                        node=stmt,
                        line=line,
                        attr=attr,
                        owner=None,
                        desc=f"{verb} through '{attr}'",
                        held=held,
                        sanctioned=sanction,
                    )
                )

        def handle_call(call: ast.Call, held: FrozenSet[str]) -> None:
            func = call.func
            tail = ""
            if isinstance(func, ast.Attribute):
                tail = func.attr
            elif isinstance(func, ast.Name):
                tail = func.id
            if isinstance(func, ast.Attribute) and tail in _MUTATING_CALLS:
                parts = _attr_parts(func.value)
                target_attr: Optional[str] = None
                owner: Optional[str] = None
                if (
                    guard is not None
                    and len(parts) >= 2
                    and parts[0] == "self"
                    and parts[1] in guard.fields
                ):
                    target_attr, owner = parts[1], guard.name
                else:
                    state = _touches_state(func.value)
                    if state is not None:
                        target_attr = state
                if target_attr is not None:
                    fri.writes.append(
                        WriteSite(
                            node=call,
                            line=call.lineno,
                            attr=target_attr,
                            owner=owner,
                            desc=f".{tail}() on '{target_attr}'",
                            held=held,
                            sanctioned=self._sanctioned(
                                module, fn, call.lineno
                            ),
                        )
                    )
            if isinstance(func, ast.Attribute) and tail in (
                "acquire",
                "release",
            ):
                receiver = _attr_parts(func.value)
                if receiver and "lock" in receiver[-1].lower():
                    if tail == "acquire":
                        fri.bare_acquires.append(call)
                    return
            targets = self._resolve_targets(module, call, fn)
            if targets:
                fri.calls.append(
                    CallSite(
                        node=call,
                        line=call.lineno,
                        tail=tail,
                        held=held,
                        targets=targets,
                    )
                )
            elif tail in _BLOCKING_CALLS:
                fri.blocking.append(
                    BlockingSite(
                        node=call, line=call.lineno, name=tail, held=held
                    )
                )

        def scan_exprs(node: ast.AST, held: FrozenSet[str]) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    handle_call(sub, held)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        record_write(sub, target, "write", held)
                elif isinstance(sub, ast.AugAssign):
                    record_write(sub, sub.target, "write", held)
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    record_write(sub, sub.target, "write", held)
                elif isinstance(sub, ast.Delete):
                    for target in sub.targets:
                        record_write(sub, target, "del", held)

        def scan_stmts(
            stmts: Sequence[ast.stmt], held: FrozenSet[str]
        ) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue  # nested defs run later, on their own terms
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = held
                    for item in stmt.items:
                        scan_exprs(item.context_expr, held)
                        token = self._lock_token(
                            module, item.context_expr, fn, param_types
                        )
                        if token is not None:
                            fri.acquisitions.append(
                                Acquisition(
                                    node=stmt,
                                    line=item.context_expr.lineno,
                                    token=token,
                                    held_before=inner,
                                )
                            )
                            acquired_tokens.add(token)
                            inner = inner | {token}
                    scan_stmts(stmt.body, inner)
                elif isinstance(stmt, (ast.If, ast.While)):
                    scan_exprs(stmt.test, held)
                    scan_stmts(stmt.body, held)
                    scan_stmts(stmt.orelse, held)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    scan_exprs(stmt.iter, held)
                    scan_exprs(stmt.target, held)
                    scan_stmts(stmt.body, held)
                    scan_stmts(stmt.orelse, held)
                elif isinstance(stmt, ast.Try):
                    scan_stmts(stmt.body, held)
                    for handler in stmt.handlers:
                        if handler.type is not None:
                            scan_exprs(handler.type, held)
                        scan_stmts(handler.body, held)
                    scan_stmts(stmt.orelse, held)
                    scan_stmts(stmt.finalbody, held)
                elif isinstance(stmt, ast.Match):
                    scan_exprs(stmt.subject, held)
                    for case in stmt.cases:
                        scan_stmts(case.body, held)
                else:
                    scan_exprs(stmt, held)

        scan_stmts(fn.node.body, frozenset())
        fri.lock_tokens = frozenset(acquired_tokens)
        self._scanned[key] = fri
        return fri

    def _all_scanned(self) -> Dict[FuncKey, FunctionRaceInfo]:
        """Scan every function in every scope module."""
        out: Dict[FuncKey, FunctionRaceInfo] = {}
        for module in self.scope_modules():
            symbols = self.model.symbols_of(module)
            if symbols is None:
                continue
            for fn in symbols.all_functions():
                out[func_key(fn)] = self.function_info(fn)
        return out

    # -- entry locksets ------------------------------------------------------
    def entry_locksets(self) -> Dict[FuncKey, FrozenSet[str]]:
        """Locks guaranteed held on entry, per scope function.

        The meet, over every *resolved* in-tree call site, of the locks
        held at that site. Functions with no resolved caller (public
        entry points, functions only called through locals the call
        graph cannot see) get the empty set: nothing is assumed, so an
        entry lockset can only ever excuse a mutation.
        """
        if self._entry is not None:
            return self._entry
        fris = self._all_scanned()
        sites: Dict[FuncKey, List[Tuple[FuncKey, FrozenSet[str]]]] = {}
        for key, fri in fris.items():
            for cs in fri.calls:
                for target in cs.targets:
                    if target in fris:
                        sites.setdefault(target, []).append((key, cs.held))
        # None is the lattice top: "no caller constrained this yet".
        entry: Dict[FuncKey, Optional[FrozenSet[str]]] = {
            key: (None if key in sites else frozenset()) for key in fris
        }
        changed = True
        while changed:
            changed = False
            for callee, callers in sites.items():
                acc: Optional[FrozenSet[str]] = None
                for caller, held in callers:
                    caller_entry = entry.get(caller, frozenset())
                    if caller_entry is None:
                        continue  # caller still unconstrained
                    value = caller_entry | held
                    acc = value if acc is None else acc & value
                if acc is not None and acc != entry[callee]:
                    entry[callee] = acc
                    changed = True
        resolved = {
            key: (value if value is not None else frozenset())
            for key, value in entry.items()
        }
        self._entry = resolved
        return resolved

    # -- transitive closures -------------------------------------------------
    def _closure(
        self,
        key: FuncKey,
        direct: "Dict[FuncKey, FrozenSet[str]]",
        memo: Dict[FuncKey, FrozenSet[str]],
        stack: Set[FuncKey],
    ) -> FrozenSet[str]:
        cached = memo.get(key)
        if cached is not None:
            return cached
        if key in stack:
            return frozenset()
        stack.add(key)
        acc = set(direct.get(key, frozenset()))
        fri = self._scanned.get(key)
        if fri is not None:
            for cs in fri.calls:
                for target in cs.targets:
                    acc |= self._closure(target, direct, memo, stack)
        stack.discard(key)
        result = frozenset(acc)
        memo[key] = result
        return result

    def transitive_acquires(self, targets: Sequence[FuncKey]) -> FrozenSet[str]:
        """Lock tokens (transitively) acquired by any of ``targets``."""
        fris = self._all_scanned()
        direct = {key: fri.lock_tokens for key, fri in fris.items()}
        acc: Set[str] = set()
        for target in targets:
            acc |= self._closure(target, direct, self._trans_acquires, set())
        return frozenset(acc)

    def transitive_blocking(self, targets: Sequence[FuncKey]) -> FrozenSet[str]:
        """Blocking call names (transitively) reached by ``targets``."""
        fris = self._all_scanned()
        direct = {
            key: frozenset(site.name for site in fri.blocking)
            for key, fri in fris.items()
        }
        acc: Set[str] = set()
        for target in targets:
            acc |= self._closure(target, direct, self._trans_blocking, set())
        return frozenset(acc)

    # -- lock-order graph ----------------------------------------------------
    def lock_edges(self) -> List[LockEdge]:
        """Every lock-acquisition edge, lexical and interprocedural."""
        if self._edges is not None:
            return self._edges
        fris = self._all_scanned()
        entry = self.entry_locksets()
        edges: List[LockEdge] = []
        seen: Set[Tuple[str, str, str, int]] = set()

        def add(src: str, dst: str, module: str, node: ast.AST) -> None:
            line = getattr(node, "lineno", 1)
            dedup = (src, dst, module, line)
            if dedup not in seen:
                seen.add(dedup)
                edges.append(
                    LockEdge(
                        src=src, dst=dst, module=module, node=node, line=line
                    )
                )

        for key, fri in fris.items():
            module = key[0]
            fn_entry = entry.get(key, frozenset())
            for acq in fri.acquisitions:
                for held in acq.held_before | fn_entry:
                    add(held, acq.token, module, acq.node)
            for cs in fri.calls:
                held = cs.held | fn_entry
                if not held:
                    continue
                for token in self.transitive_acquires(cs.targets):
                    for src in held:
                        add(src, token, module, cs.node)
        self._edges = edges
        return edges

    def cyclic_edges(self) -> Set[Tuple[str, str]]:
        """``(src, dst)`` pairs participating in an acquisition cycle."""
        if self._cyclic is not None:
            return self._cyclic
        adjacency: Dict[str, Set[str]] = {}
        for edge in self.lock_edges():
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        reach_memo: Dict[str, FrozenSet[str]] = {}

        def reachable(token: str, stack: Set[str]) -> FrozenSet[str]:
            cached = reach_memo.get(token)
            if cached is not None:
                return cached
            if token in stack:
                return frozenset()
            stack.add(token)
            acc: Set[str] = set()
            for succ in adjacency.get(token, ()):
                acc.add(succ)
                acc |= reachable(succ, stack)
            stack.discard(token)
            result = frozenset(acc)
            reach_memo[token] = result
            return result

        cyclic: Set[Tuple[str, str]] = set()
        for edge in self.lock_edges():
            if edge.src == edge.dst or edge.src in reachable(
                edge.dst, set()
            ):
                cyclic.add((edge.src, edge.dst))
        self._cyclic = cyclic
        return cyclic

    # -- thread roots --------------------------------------------------------
    def thread_roots(self) -> List[ThreadRoot]:
        """Every inferred thread entry point in the scope modules."""
        if self._roots is not None:
            return self._roots
        roots: List[ThreadRoot] = []
        seen: Set[FuncKey] = set()

        def add(
            fn: Optional[FunctionInfo],
            label: str,
            module: str,
            node: ast.AST,
        ) -> None:
            if fn is None:
                return
            key = func_key(fn)
            self.functions.setdefault(key, fn)
            if key not in seen:
                seen.add(key)
                roots.append(
                    ThreadRoot(key=key, label=label, module=module, node=node)
                )

        for module in self.scope_modules():
            symbols = self.model.symbols_of(module)
            if symbols is None:
                continue
            for fn in symbols.all_functions():
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    tail = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                    if tail != "Thread":
                        continue
                    for kw in node.keywords:
                        if kw.arg != "target":
                            continue
                        target = kw.value
                        resolved: Optional[FunctionInfo] = None
                        if isinstance(target, ast.Name):
                            resolved = self.model.resolve_callable(
                                module, target.id
                            )
                        elif isinstance(target, ast.Attribute):
                            parts = _attr_parts(target)
                            if (
                                len(parts) == 2
                                and parts[0] in ("self", "cls")
                                and fn.class_name
                            ):
                                resolved = self.model.resolve_method(
                                    module, fn.class_name, parts[1]
                                )
                        if resolved is not None:
                            add(
                                resolved,
                                f"Thread(target={resolved.qualname})",
                                module,
                                node,
                            )
            for cname in sorted(symbols.classes):
                cls = symbols.classes[cname]
                if set(cls.base_tails()) & _THREAD_HANDLER_BASES:
                    handler = cls.methods.get("handle")
                    if handler is not None:
                        add(
                            handler,
                            f"{cname}.handle (request handler)",
                            module,
                            handler.node,
                        )
        self._roots = roots
        return roots

    def reachable_from(self, root: FuncKey) -> List[FuncKey]:
        """Scope functions reachable from ``root`` via resolved calls."""
        fris = self._all_scanned()
        seen: Set[FuncKey] = set()
        order: List[FuncKey] = []
        stack = [root]
        while stack:
            key = stack.pop()
            if key in seen or key not in fris:
                continue
            seen.add(key)
            order.append(key)
            for cs in fris[key].calls:
                stack.extend(cs.targets)
        return order

    # -- off-lock purity -----------------------------------------------------
    def offlock_mutations(
        self, root: FunctionInfo
    ) -> List[Tuple[FunctionInfo, WriteSite]]:
        """Unsanctioned mutations reachable off-lock from ``root``.

        Call sites made under a lock prune their subtree: that is the
        locked (commit) half of the protocol, ZS110's jurisdiction.
        """
        fris = self._all_scanned()
        out: List[Tuple[FunctionInfo, WriteSite]] = []
        seen: Set[FuncKey] = set()
        stack = [func_key(root)]
        self.functions.setdefault(func_key(root), root)
        while stack:
            key = stack.pop()
            if key in seen or key not in fris:
                continue
            seen.add(key)
            fri = fris[key]
            info = self.functions[key]
            for write in fri.writes:
                if write.sanctioned or write.held:
                    continue
                out.append((info, write))
            for cs in fri.calls:
                if cs.held:
                    continue
                stack.extend(cs.targets)
        out.sort(key=lambda pair: (pair[0].module, pair[1].line))
        return out


def _model_races(model: "SemanticModel") -> RaceAnalysis:
    """The per-model memoized :class:`RaceAnalysis` instance."""
    analysis = getattr(model, "_race_analysis", None)
    if analysis is None:
        analysis = RaceAnalysis(model)
        model._race_analysis = analysis  # type: ignore[attr-defined]
    return analysis


def _info_of(model: "SemanticModel", module: str) -> Optional[ModuleInfo]:
    return model.graph.modules.get(module)


# ---------------------------------------------------------------------------
# ZS110: lock discipline
# ---------------------------------------------------------------------------


@register_deep_rule
class LockDisciplineRule(DeepRule):
    """Mutations of lock-guarded instance state must hold the lock."""

    code = "ZS110"
    name = "lock-discipline"
    summary = (
        "every mutation of a lock-guarded class's shared state holds "
        "the owning lock (counter folds and '# zrace: atomic' exempt)"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return _in_parts(path, _SERVE_PARTS)

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = _info_of(model, module)
        if info is None:
            return
        races = _model_races(model)
        guarded = races.guarded_in(module)
        if not guarded:
            return
        entry = races.entry_locksets()
        findings: List[Finding] = []
        for cname in sorted(guarded):
            guard = guarded[cname]
            for mname in sorted(guard.cls.methods):
                if mname in ("__init__", "__post_init__"):
                    continue
                method = guard.cls.methods[mname]
                fri = races.function_info(method)
                fn_entry = entry.get(func_key(method), frozenset())
                for write in fri.writes:
                    if write.owner != guard.name or write.sanctioned:
                        continue
                    if guard.lock_tokens & (write.held | fn_entry):
                        continue
                    lock_names = ", ".join(sorted(guard.lock_tokens))
                    findings.append(
                        self.finding(
                            info,
                            write.node,
                            f"'{method.qualname}' mutates guarded state "
                            f"({write.desc}) without holding {lock_names}; "
                            "take the lock or mark a deliberate GIL-atomic "
                            f"access with '{_RACE_ATOMIC_MARKER}'",
                        )
                    )
        findings.sort(key=lambda f: (f.line, f.column, f.message))
        yield from findings


# ---------------------------------------------------------------------------
# ZS111: lock ordering and hold hygiene
# ---------------------------------------------------------------------------


@register_deep_rule
class LockOrderRule(DeepRule):
    """No acquisition cycles; nothing blocking while a lock is held."""

    code = "ZS111"
    name = "lock-ordering"
    summary = (
        "lock acquisitions are acyclic and never wrap blocking calls "
        "(socket I/O, serve_forever, digest construction) or raw "
        ".acquire()"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return _in_parts(path, _SERVE_PARTS)

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = _info_of(model, module)
        if info is None:
            return
        races = _model_races(model)
        findings: List[Finding] = []
        cyclic = races.cyclic_edges()
        for edge in races.lock_edges():
            if edge.module != module or (edge.src, edge.dst) not in cyclic:
                continue
            what = (
                "re-acquires non-reentrant"
                if edge.src == edge.dst
                else "creates an acquisition cycle: acquires"
            )
            findings.append(
                self.finding(
                    info,
                    edge.node,
                    f"{what} '{edge.dst}' while holding '{edge.src}' — "
                    "potential deadlock; keep a global acquisition order",
                )
            )
        symbols = model.symbols_of(module)
        entry = races.entry_locksets()
        for fn in symbols.all_functions() if symbols is not None else []:
            fri = races.function_info(fn)
            fn_entry = entry.get(func_key(fn), frozenset())
            for site in fri.blocking:
                held = site.held | fn_entry
                if held:
                    findings.append(
                        self.finding(
                            info,
                            site.node,
                            f"blocking call '{site.name}' while holding "
                            f"{', '.join(sorted(held))}; move the slow work "
                            "off-lock",
                        )
                    )
            for cs in fri.calls:
                held = cs.held | fn_entry
                if not held:
                    continue
                blocked = races.transitive_blocking(cs.targets)
                if blocked:
                    findings.append(
                        self.finding(
                            info,
                            cs.node,
                            f"call to '{cs.tail}' reaches blocking "
                            f"{', '.join(sorted(blocked))} while holding "
                            f"{', '.join(sorted(held))}; move the slow work "
                            "off-lock",
                        )
                    )
            for call in fri.bare_acquires:
                findings.append(
                    self.finding(
                        info,
                        call,
                        "raw .acquire() outside 'with' — an exception "
                        "between acquire and release leaks the lock; use "
                        "'with <lock>:'",
                    )
                )
        findings.sort(key=lambda f: (f.line, f.column, f.message))
        yield from findings


# ---------------------------------------------------------------------------
# ZS112: off-lock purity
# ---------------------------------------------------------------------------


@register_deep_rule
class OffLockPurityRule(DeepRule):
    """The off-lock phase (get / prepare_fill) must be mutation-free."""

    code = "ZS112"
    name = "offlock-purity"
    summary = (
        "code reachable off-lock from get/prepare_fill performs no "
        "array-state or guarded-field mutations (locked calls prune)"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return _in_parts(path, _RACE_PARTS)

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        symbols = model.symbols_of(module)
        if symbols is None:
            return
        races = _model_races(model)
        guarded = races.guarded_in(module)
        roots: List[FunctionInfo] = []
        for cname in sorted(symbols.classes):
            cls = symbols.classes[cname]
            if "prepare_fill" in cls.methods:
                roots.append(cls.methods["prepare_fill"])
            if cname in guarded and "get" in cls.methods:
                roots.append(cls.methods["get"])
        findings: List[Finding] = []
        for root in roots:
            for owner, write in races.offlock_mutations(root):
                target = _info_of(model, owner.module)
                if target is None:
                    continue
                findings.append(
                    self.finding(
                        target,
                        write.node,
                        f"'{owner.qualname}' mutates state ({write.desc}) "
                        f"on the off-lock path from '{root.qualname}' — "
                        "the read/walk phase must be pure; mutate under "
                        "the lock in the commit phase",
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.message))
        yield from findings


# ---------------------------------------------------------------------------
# ZS113: thread escape
# ---------------------------------------------------------------------------


@register_deep_rule
class ThreadEscapeRule(DeepRule):
    """Thread-root-reachable code keeps its hands off module state."""

    code = "ZS113"
    name = "thread-escape"
    summary = (
        "code reachable from a thread root mutates no module-level "
        "state and declares no global/nonlocal (parameters and self "
        "are the sanctioned channels)"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return _in_parts(path, _SERVE_PARTS)

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        races = _model_races(model)
        roots = [r for r in races.thread_roots() if r.module == module]
        if not roots:
            return
        findings: List[Finding] = []
        reported: Set[Tuple[str, int, str]] = set()
        for root in roots:
            for key in races.reachable_from(root.key):
                fn = races.functions[key]
                target = _info_of(model, fn.module)
                if target is None:
                    continue
                for node, desc in _module_state_mutations(model, fn):
                    dedup = (fn.module, getattr(node, "lineno", 0), desc)
                    if dedup in reported:
                        continue
                    reported.add(dedup)
                    findings.append(
                        self.finding(
                            target,
                            node,
                            f"'{fn.qualname}', reachable from thread root "
                            f"{root.label}, {desc} — thread-shared data "
                            "must flow through parameters or lock-guarded "
                            "instance state",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.message))
        yield from findings


def _module_state_mutations(
    model: "SemanticModel", fn: FunctionInfo
) -> List[Tuple[ast.AST, str]]:
    """Module-state mutations inside one function body."""
    # Shares ZS102's definition of "module state": bindings of the
    # enclosing module, plus anything imported at module scope.
    from repro.analysis.semantic.deeprules import (
        _MUTATORS,
        _local_store_names,
        _root_name,
    )

    symbols = model.symbols_of(fn.module)
    if symbols is None:
        return []
    bindings = symbols.bindings
    local = _local_store_names(fn)
    out: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            out.append(
                (node, f"declares {kind} {', '.join(node.names)}")
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                elif isinstance(target, ast.Name):
                    root = target.id
                else:
                    continue
                if (
                    root is not None
                    and root not in ("self", "cls")
                    and root not in local
                    and root in bindings
                ):
                    out.append(
                        (node, f"writes module-level '{root}'")
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _root_name(func.value)
                if (
                    root is not None
                    and root not in local
                    and root in bindings
                    and bindings[root].kind == "mutable"
                ):
                    out.append(
                        (
                            node,
                            f"calls .{func.attr}() on module-level "
                            f"mutable '{root}'",
                        )
                    )
    return out
