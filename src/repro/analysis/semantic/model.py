"""The ZProve semantic model and the ``lint --deep`` driver.

:class:`SemanticModel` ties the layers together — module graph, symbol
tables, origin evaluator, call graph — and provides the name-resolution
services the deep rules and the call-graph builder share (chasing
re-export chains, module aliases, and class methods across the analyzed
tree).

:func:`run_deep` is the entry point the CLI uses: build the model over
a set of paths, run every registered deep rule module by module,
filter suppressions against the *flagged* file (a deep finding may be
anchored in a different module than the one whose analysis produced
it), and consult the incremental cache so unchanged modules are free.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.lint.engine import (
    PARSE_ERROR_CODE,
    Finding,
    LintReport,
    LintSource,
)
from repro.analysis.semantic.cache import AnalysisCache
from repro.analysis.semantic.callgraph import CallGraph
from repro.analysis.semantic.dataflow import OriginEvaluator
from repro.analysis.semantic.modulegraph import ModuleGraph
from repro.analysis.semantic.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    extract_symbols,
)

#: re-export chains longer than this are treated as unresolvable
_MAX_CHASE = 12


class SemanticModel:
    """Whole-program view: modules, symbols, origins, and calls."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        self._symbols: Dict[str, ModuleSymbols] = {}
        self.evaluator = OriginEvaluator(self)
        self._callgraph: Optional[CallGraph] = None

    @classmethod
    def build(cls, paths: Iterable[Union[str, Path]]) -> "SemanticModel":
        """Parse and link everything under ``paths``."""
        return cls(ModuleGraph.build(paths))

    # -- layers ------------------------------------------------------------
    def symbols_of(self, module: str) -> Optional[ModuleSymbols]:
        """The (memoized) symbol table for an analyzed module."""
        if module not in self.graph.modules:
            return None
        table = self._symbols.get(module)
        if table is None:
            table = extract_symbols(module, self.graph.modules[module].tree)
            self._symbols[module] = table
        return table

    @property
    def callgraph(self) -> CallGraph:
        """The call graph (built on first use)."""
        if self._callgraph is None:
            self._callgraph = CallGraph.build(self)
        return self._callgraph

    # -- name resolution ---------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, depth: int = 0
    ) -> Optional[Tuple[str, object]]:
        """What ``name`` means at module scope of ``module``.

        Returns ``("function", FunctionInfo)``, ``("class", ClassInfo)``
        or ``("module", dotted_name)``; re-export chains (``from x
        import y`` where ``x`` itself imported ``y``) are chased.
        """
        if depth > _MAX_CHASE:
            return None
        symbols = self.symbols_of(module)
        if symbols is not None:
            if name in symbols.functions:
                return ("function", symbols.functions[name])
            if name in symbols.classes:
                return ("class", symbols.classes[name])
        imported = self.graph.imported(module, name)
        if imported is None:
            return None
        if imported.symbol is None:
            return ("module", imported.module) if imported.internal else None
        if not imported.internal:
            return None
        return self.resolve_symbol(imported.module, imported.symbol, depth + 1)

    def resolve_class(self, module: str, name: str) -> Optional[ClassInfo]:
        """``name`` as an analyzed class visible from ``module``."""
        resolved = self.resolve_symbol(module, name)
        if resolved is not None and resolved[0] == "class":
            info = resolved[1]
            assert isinstance(info, ClassInfo)
            return info
        return None

    def resolve_callable(
        self, module: str, name: str
    ) -> Optional[FunctionInfo]:
        """``name`` as an analyzed function; classes give ``__init__``."""
        resolved = self.resolve_symbol(module, name)
        if resolved is None:
            return None
        kind, info = resolved
        if kind == "function":
            assert isinstance(info, FunctionInfo)
            return info
        if kind == "class":
            assert isinstance(info, ClassInfo)
            return info.methods.get("__init__")
        return None

    def resolve_method(
        self, module: str, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        """A method of a class visible from ``module``."""
        cls = self.resolve_class(module, class_name)
        if cls is None:
            return None
        return cls.methods.get(method)

    def resolve_dotted_callable(
        self, module: str, chain: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``a.b`` / ``a.b.c`` call targets through aliases."""
        parts = chain.split(".")
        if len(parts) == 1:
            return self.resolve_callable(module, parts[0])
        resolved = self.resolve_symbol(module, parts[0])
        if resolved is None:
            return None
        kind, info = resolved
        if kind == "module":
            assert isinstance(info, str)
            if len(parts) == 2:
                return self.resolve_callable(info, parts[1])
            if len(parts) == 3:
                return self.resolve_method(info, parts[1], parts[2])
            return None
        if kind == "class" and len(parts) == 2:
            assert isinstance(info, ClassInfo)
            return info.methods.get(parts[1])
        return None


@dataclasses.dataclass(slots=True)
class DeepRunStats:
    """Bookkeeping from one ``run_deep`` invocation."""

    modules_total: int = 0
    modules_analyzed: int = 0
    cache_hits: int = 0
    parse_errors: int = 0

    def render(self) -> str:
        """One-line summary for stderr/CI logs."""
        return (
            f"zprove: {self.modules_total} module(s), "
            f"{self.modules_analyzed} analyzed, "
            f"{self.cache_hits} from cache"
        )


def _sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.column, f.code)


def _filter_suppressed(
    graph: ModuleGraph,
    findings: List[Finding],
    sources: Dict[str, LintSource],
) -> List[Finding]:
    """Drop findings silenced by ``# zsan: ignore`` in the flagged file.

    Suppression is evaluated against the file the finding is anchored
    in — for cross-module findings (ZS102 reachability) that is the
    helper's file, not the dispatcher's.
    """
    by_path = {str(info.path): info for info in graph.modules.values()}
    kept: List[Finding] = []
    for f in findings:
        info = by_path.get(f.path)
        if info is None:
            kept.append(f)
            continue
        src = sources.get(f.path)
        if src is None:
            src = LintSource(info.path, info.text)
            sources[f.path] = src
        if not src.suppressed(f.code, f.line):
            kept.append(f)
    return kept


def run_deep(
    paths: Iterable[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_path: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    rules: Optional[Sequence[object]] = None,
) -> Tuple[LintReport, DeepRunStats]:
    """Run the deep (whole-program) rules over ``paths``.

    ``select``/``ignore`` filter by rule code at report time; the
    cache always stores the full rule output, so one cache file serves
    any selection. Passing explicit ``rules`` (tests) disables the
    cache to keep its contents canonical.
    """
    from repro.analysis.semantic.deeprules import default_deep_rules

    pool = list(rules) if rules is not None else default_deep_rules()
    known = {r.code for r in pool}  # type: ignore[attr-defined]
    selected: Optional[Set[str]] = None
    if select is not None:
        selected = {c.upper() for c in select}
        unknown = selected - known
        if unknown:
            raise ValueError(f"unknown deep rule code(s): {sorted(unknown)}")
    ignored: Set[str] = (
        {c.upper() for c in ignore} if ignore is not None else set()
    )

    graph = ModuleGraph.build(paths)
    model = SemanticModel(graph)
    stats = DeepRunStats(
        modules_total=len(graph), parse_errors=len(graph.parse_errors)
    )

    cache: Optional[AnalysisCache] = None
    if cache_path is not None and use_cache and rules is None:
        from repro.analysis.semantic.deeprules import rules_signature

        # rules is None here, so the default rule set is the active one.
        cache = AnalysisCache(cache_path, rules_hash=rules_signature())
        cache.load()

    sources: Dict[str, LintSource] = {}
    collected: List[Finding] = []
    for path_str in sorted(graph.parse_errors):
        collected.append(
            Finding(
                code=PARSE_ERROR_CODE,
                message=graph.parse_errors[path_str],
                path=path_str,
                line=1,
            )
        )

    for module in sorted(graph.modules):
        fingerprint = graph.fingerprint(module)
        module_findings = (
            cache.get(module, fingerprint) if cache is not None else None
        )
        if module_findings is None:
            info = graph.modules[module]
            module_findings = []
            for rule in pool:
                if not rule.applies_to_module(  # type: ignore[attr-defined]
                    module, info.path
                ):
                    continue
                module_findings.extend(
                    rule.check_module(model, module)  # type: ignore[attr-defined]
                )
            module_findings = _filter_suppressed(
                graph, module_findings, sources
            )
            module_findings.sort(key=_sort_key)
            stats.modules_analyzed += 1
            if cache is not None:
                cache.put(module, fingerprint, module_findings)
        else:
            stats.cache_hits += 1
        collected.extend(module_findings)

    if cache is not None:
        cache.prune(sorted(graph.modules))
        cache.save()

    # Report-time filtering and cross-module dedup.
    seen: Set[Tuple[str, str, int, int, str]] = set()
    final: List[Finding] = []
    for f in collected:
        if f.code != PARSE_ERROR_CODE:
            if selected is not None and f.code not in selected:
                continue
            if f.code in ignored:
                continue
        key = (f.code, f.path, f.line, f.column, f.message)
        if key in seen:
            continue
        seen.add(key)
        final.append(f)
    final.sort(key=_sort_key)

    report = LintReport(
        findings=final,
        files_checked=len(graph.modules) + len(graph.parse_errors),
    )
    return report, stats
