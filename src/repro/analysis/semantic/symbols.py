"""Per-module symbol tables for the ZProve semantic model.

The second layer: every module gets a :class:`ModuleSymbols` with its
top-level functions, classes (methods included), and a classification
of module-level assignments into *frozen constants* (immutable values a
worker process can safely re-import) and *mutable globals* (hidden
cross-run state — the ZS104 target and the thing worker-reachable code
must never mutate, per ZS102). Extraction is purely syntactic; nothing
from the analyzed tree is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: constructors whose call produces a mutable container
MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)
#: constructors/values that freeze their contents
FROZEN_CALLS = frozenset({"frozenset", "tuple", "MappingProxyType"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve an attribute chain to ``root.attr.attr`` or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def classify_value(node: Optional[ast.expr]) -> str:
    """``"mutable"`` / ``"frozen"`` / ``"other"`` for an assigned value."""
    if node is None:
        return "other"
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(node, ast.Constant):
        return "frozen"
    if isinstance(node, ast.Tuple):
        return "frozen"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        tail = name.split(".")[-1] if name else ""
        if tail in MUTABLE_CALLS:
            return "mutable"
        if tail in FROZEN_CALLS:
            return "frozen"
    return "other"


@dataclass
class FunctionInfo:
    """One function or method, with everything the dataflow layer needs."""

    module: str
    qualname: str  #: ``"f"`` for functions, ``"C.m"`` for methods
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    params: Tuple[str, ...]
    defaults: Dict[str, ast.expr] = field(default_factory=dict)
    class_name: Optional[str] = None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


def _function_info(
    module: str,
    node: ast.AST,
    class_name: Optional[str] = None,
) -> FunctionInfo:
    args = node.args  # type: ignore[attr-defined]
    params: List[str] = [
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    defaults: Dict[str, ast.expr] = {}
    positional = [*args.posonlyargs, *args.args]
    for param, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        defaults[param.arg] = default
    for param, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            defaults[param.arg] = kw_default
    name = node.name  # type: ignore[attr-defined]
    qualname = f"{class_name}.{name}" if class_name else name
    return FunctionInfo(
        module=module,
        qualname=qualname,
        node=node,
        params=tuple(params),
        defaults=defaults,
        class_name=class_name,
    )


@dataclass
class ClassInfo:
    """One class definition with its methods and declared counter fields."""

    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...]  #: dotted base expressions, as written
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: literal ``_COUNTER_FIELDS`` tuple elements, when declared
    counter_fields: Optional[Tuple[str, ...]] = None

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def base_tails(self) -> set[str]:
        """Last components of the base names (``obs.RegistryStats`` ->
        ``RegistryStats``), for inheritance checks across import styles."""
        return {b.split(".")[-1] for b in self.bases}


@dataclass
class ModuleLevelBinding:
    """One module-level name binding and its mutability classification."""

    name: str
    lineno: int
    col: int
    kind: str  #: "mutable" | "frozen" | "other"


@dataclass
class ModuleSymbols:
    """Everything defined at the top level of one module."""

    module: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    bindings: Dict[str, ModuleLevelBinding] = field(default_factory=dict)

    def lookup_function(self, qualname: str) -> Optional[FunctionInfo]:
        """Find ``"f"`` or ``"C.m"`` among this module's definitions."""
        if qualname in self.functions:
            return self.functions[qualname]
        if "." in qualname:
            cls, method = qualname.split(".", 1)
            info = self.classes.get(cls)
            if info is not None:
                return info.methods.get(method)
        return None

    def all_functions(self) -> List[FunctionInfo]:
        """Top-level functions plus every method, deterministic order."""
        out = [self.functions[k] for k in sorted(self.functions)]
        for cname in sorted(self.classes):
            cls = self.classes[cname]
            out.extend(cls.methods[m] for m in sorted(cls.methods))
        return out

    def mutable_globals(self) -> List[ModuleLevelBinding]:
        """Module-level names bound to mutable containers (sans __all__)."""
        return [
            b
            for name, b in sorted(self.bindings.items())
            if b.kind == "mutable" and name != "__all__"
        ]


def _counter_fields(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    for item in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target, value = item.targets[0], item.value
        elif isinstance(item, ast.AnnAssign):
            target, value = item.target, item.value
        if (
            isinstance(target, ast.Name)
            and target.id == "_COUNTER_FIELDS"
            and isinstance(value, (ast.Tuple, ast.List))
        ):
            fields: List[str] = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    fields.append(elt.value)
            return tuple(fields)
    return None


def extract_symbols(module: str, tree: ast.Module) -> ModuleSymbols:
    """Build the symbol table for one parsed module."""
    symbols = ModuleSymbols(module=module)
    for stmt in _toplevel(tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, stmt)
            symbols.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(
                b for b in (dotted_name(base) for base in stmt.bases) if b
            )
            cls = ClassInfo(
                module=module,
                name=stmt.name,
                node=stmt,
                bases=bases,
                counter_fields=_counter_fields(stmt),
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = _function_info(
                        module, item, class_name=stmt.name
                    )
            symbols.classes[stmt.name] = cls
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                targets = [stmt.target]
                value = stmt.value
            kind = classify_value(value)
            for target in targets:
                names = (
                    [target]
                    if isinstance(target, ast.Name)
                    else [
                        e for e in getattr(target, "elts", [])
                        if isinstance(e, ast.Name)
                    ]
                )
                for name_node in names:
                    existing = symbols.bindings.get(name_node.id)
                    # A rebinding that turns a constant mutable wins.
                    if existing is None or kind == "mutable":
                        symbols.bindings[name_node.id] = ModuleLevelBinding(
                            name=name_node.id,
                            lineno=stmt.lineno,
                            col=stmt.col_offset,
                            kind=kind,
                        )
    return symbols


def _toplevel(body: List[ast.stmt]) -> List[ast.stmt]:
    """Module-level statements, looking through top-level ``if``/``try``.

    ``if TYPE_CHECKING:`` blocks are skipped — bindings there never
    exist at runtime.
    """
    out: List[ast.stmt] = []
    for stmt in body:
        if isinstance(stmt, ast.If):
            test = stmt.test
            name = dotted_name(test)
            if name and name.split(".")[-1] == "TYPE_CHECKING":
                continue
            out.extend(_toplevel(stmt.body))
            out.extend(_toplevel(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            out.extend(_toplevel(stmt.body))
            for handler in stmt.handlers:
                out.extend(_toplevel(handler.body))
            out.extend(_toplevel(stmt.orelse))
            out.extend(_toplevel(stmt.finalbody))
        else:
            out.append(stmt)
    return out
