"""Incremental analysis cache for the deep lint pass.

Whole-program analysis is the expensive half of ``lint --deep``, and CI
runs it on every push. The cache keys each module's findings by its
*closure fingerprint* — a hash over the content of the module plus
everything it transitively imports (:meth:`ModuleGraph.fingerprint`) —
so a warm run re-analyzes only changed modules **and their
dependents**, which is exactly the soundness condition for
interprocedural rules: a finding can depend on any module in the
import closure, and on nothing else.

Stored findings are post-suppression but pre-``--select`` (suppression
comments live in the hashed source text; select/ignore are run-time
choices applied after retrieval), so one cache serves any rule
selection.

The on-disk format is a small JSON document. Loading is tolerant: a
missing, corrupt, or version-mismatched file simply behaves as an
empty cache — the cache can never make the lint result wrong, only
slower or faster.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.lint.engine import Finding

#: bump when the cache *format* or finding semantics change (rule-logic
#: changes are caught by the ``rules_hash`` field instead)
CACHE_VERSION = 3


class AnalysisCache:
    """Fingerprint-keyed store of per-module deep findings.

    ``rules_hash`` (see
    :func:`repro.analysis.semantic.deeprules.rules_signature`) binds the
    cache to the rule *logic* that produced it: a stored file written
    under a different hash loads as empty, so editing a rule re-analyzes
    every module even when no analyzed source changed.
    """

    def __init__(
        self, path: Union[str, Path], rules_hash: Optional[str] = None
    ) -> None:
        self.path = Path(path)
        self.rules_hash = rules_hash
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_entries = 0

    # -- persistence -------------------------------------------------------
    def load(self) -> None:
        """Read the cache file; any problem yields an empty cache."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        if (
            self.rules_hash is not None
            and payload.get("rules_hash") != self.rules_hash
        ):
            return
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return
        for module, entry in entries.items():
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("fingerprint"), str)
                and isinstance(entry.get("findings"), list)
            ):
                self._entries[module] = entry
        self._loaded_entries = len(self._entries)

    def save(self) -> None:
        """Write the cache file (parents created as needed)."""
        payload: Dict[str, object] = {
            "version": CACHE_VERSION,
            "entries": {
                module: self._entries[module]
                for module in sorted(self._entries)
            },
        }
        if self.rules_hash is not None:
            payload["rules_hash"] = self.rules_hash
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=1) + "\n", encoding="utf-8"
        )

    # -- lookups -----------------------------------------------------------
    def get(self, module: str, fingerprint: str) -> Optional[List[Finding]]:
        """Cached findings for ``module``, or None on miss/stale entry."""
        entry = self._entries.get(module)
        if entry is None or entry.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        findings: List[Finding] = []
        for raw in entry["findings"]:
            try:
                findings.append(
                    Finding(
                        code=str(raw["code"]),
                        message=str(raw["message"]),
                        path=str(raw["path"]),
                        line=int(raw["line"]),
                        column=int(raw.get("column", 0)),
                    )
                )
            except (KeyError, TypeError, ValueError):
                self.misses += 1
                return None  # malformed entry: treat as a miss
        self.hits += 1
        return findings

    def put(
        self, module: str, fingerprint: str, findings: List[Finding]
    ) -> None:
        """Record ``module``'s findings under its closure fingerprint."""
        self._entries[module] = {
            "fingerprint": fingerprint,
            "findings": [f.to_dict() for f in findings],
        }

    def prune(self, keep_modules: List[str]) -> None:
        """Drop entries for modules no longer in the analyzed set."""
        keep = set(keep_modules)
        for module in list(self._entries):
            if module not in keep:
                del self._entries[module]

    def __len__(self) -> int:
        return len(self._entries)
