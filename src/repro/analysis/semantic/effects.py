"""Interprocedural effect inference and the ZS105–ZS108 deep rules.

Built on the ZProve semantic model (symbol tables + call graph), this
layer classifies every analyzed function by the *effects* it can have
on simulator state:

- **mutates array state** — writes/deletes through the canonical
  storage attributes (``_lines``, ``_pos``, ``_free``, ``tags``),
  whether by assignment, ``del``, or an in-place mutator method call;
- **folds a registered Counter** — ``sc["name"].value += n`` /
  ``self._c_name.value += n`` accumulations into the metrics registry;
- **draws raw RNG** — entropy taken directly from the ``random`` /
  ``numpy`` *modules* rather than a seeded ``random.Random`` instance
  (or its bit-synced :class:`~repro.kernels.rng.MTStream` twin);
- **may raise** — explicit ``raise`` statements, positioned relative
  to the function's first mutation.

Direct effects are extracted per function; reachable effects close
over the static call graph. Four deep rules consume the analysis:

- **ZS105 two-phase purity** — candidate collection (every
  ``build_replacement`` / ``build_reinsertion`` and the turbo walk
  kernels' ``collect``) must not reach an array-state mutation: the
  walk phase of the two-phase protocol is read-only by contract
  (paper Section III-D; the off-lock walk discipline in "Limited
  Associativity Makes Concurrent Software Caches a Breeze").
- **ZS106 exception-state safety** — a function that both mutates
  array state and raises *after* its first mutation can strand a
  half-applied update exactly when the caller retries; guards must
  precede mutation (or the function carries ``# zspec: atomic``).
- **ZS107 engine fold parity** — the static dual of
  ``scripts/diff_engines.py``: every counter folded on the reference
  access path (``Cache`` + ``ZCacheArray``) must also be folded on the
  ``TurboCore`` path, minus the documented exemptions.
- **ZS108 RNG-draw discipline** — simulator packages (``core``,
  ``kernels``) must route all entropy through seeded ``random.Random``
  instances or MTStream-synced kernels; raw module-level draws are
  unreproducible and break engine lockstep.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.lint.engine import Finding
from repro.analysis.semantic.callgraph import FuncKey, func_key
from repro.analysis.semantic.deeprules import DeepRule, register_deep_rule
from repro.analysis.semantic.symbols import ClassInfo, FunctionInfo, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.semantic.model import SemanticModel

#: the canonical array-storage attributes (see ``CacheArray`` and
#: ``TurboCore``): any write through these is an array-state mutation
STATE_ATTRS = frozenset({"_lines", "_pos", "_free", "tags"})

#: receiver methods that mutate their target in place
_STATE_MUTATORS = frozenset(
    {"add", "append", "extend", "insert", "remove", "discard", "clear",
     "update", "pop", "popitem", "setdefault"}
)

#: draw methods that consume entropy (constructors are deliberately
#: absent: ``random.Random(seed)`` *creates* a sanctioned stream)
_DRAW_METHODS = frozenset(
    {"random", "randrange", "randint", "getrandbits", "choice", "choices",
     "shuffle", "sample", "uniform", "gauss", "normalvariate", "betavariate",
     "rand", "randn", "integers", "permutation"}
)

#: external modules whose direct draws ZS108 flags
_RNG_MODULES = frozenset({"random", "numpy", "numpy.random"})

#: counters the reference path folds that the turbo path, by design,
#: never can: the turbo engine declines pinned caches (pin_overflows)
#: and candidate-limited walks (truncated_walks) in try_build_turbo,
#: so those counters are structurally zero under turbo
TURBO_EXEMPT_COUNTERS = frozenset({"pin_overflows", "truncated_walks"})

#: marker comment exempting a function from ZS106 (the author asserts
#: the raise-after-mutation either restores state or is unreachable)
_ATOMIC_MARKER = "# zspec: atomic"


def _attr_parts(node: ast.expr) -> List[str]:
    """Attribute names along a Name/Attribute/Subscript chain, in order.

    ``self._lines[way][index]`` -> ``["self", "_lines"]``;
    ``zc._c_walks.value`` -> ``["zc", "_c_walks", "value"]``.
    """
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _touches_state(node: ast.expr) -> Optional[str]:
    """The state attribute a store/delete target writes through, if any."""
    for part in _attr_parts(node):
        if part in STATE_ATTRS:
            return part
    return None


@dataclass
class MutationSite:
    """One direct array-state mutation inside a function."""

    line: int
    attr: str  #: which of :data:`STATE_ATTRS` is written
    desc: str  #: human-readable site description


@dataclass
class RngSite:
    """One direct raw-module RNG draw inside a function."""

    line: int
    desc: str


@dataclass
class FunctionEffects:
    """Direct (non-transitive) effects of one analyzed function."""

    key: FuncKey
    mutations: List[MutationSite] = field(default_factory=list)
    folds: Set[str] = field(default_factory=set)
    rng_draws: List[RngSite] = field(default_factory=list)
    raise_lines: List[int] = field(default_factory=list)

    @property
    def mutates(self) -> bool:
        return bool(self.mutations)

    def first_mutation_line(self) -> Optional[int]:
        """Source line of the lexically first mutation, if any."""
        return min((m.line for m in self.mutations), default=None)


def _fold_name(target: ast.expr) -> Optional[str]:
    """The counter name a ``<x>.value += n`` target folds into, if any.

    Recognizes the two idioms the engines use:
    ``sc["name"].value += n`` (registry subscript) and
    ``obj._c_name.value += n`` (bound counter reference).
    """
    if not (isinstance(target, ast.Attribute) and target.attr == "value"):
        return None
    owner = target.value
    if isinstance(owner, ast.Subscript):
        index = owner.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            return index.value
        return None
    if isinstance(owner, ast.Attribute) and owner.attr.startswith("_c_"):
        return owner.attr[len("_c_"):]
    return None


def _rng_draw(model: "SemanticModel", module: str, call: ast.Call) -> Optional[str]:
    """Describe ``call`` when it draws from a raw RNG module."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _DRAW_METHODS:
        return None
    chain = dotted_name(func)
    if chain is None:
        return None
    parts = chain.split(".")
    root = parts[0]
    if root in ("self", "cls"):
        return None
    imported = model.graph.imported(module, root)
    if imported is None or imported.internal:
        return None
    target = imported.module
    if imported.symbol is not None:
        target = f"{imported.module}.{imported.symbol}"
    if target in _RNG_MODULES or any(
        target == m or target.startswith(m + ".") for m in _RNG_MODULES
    ):
        return chain
    return None


class EffectAnalysis:
    """Lazy per-function effect extraction plus call-graph closure."""

    def __init__(self, model: "SemanticModel") -> None:
        self.model = model
        self._direct: Dict[FuncKey, FunctionEffects] = {}

    # -- direct effects ------------------------------------------------------
    def direct(self, info: FunctionInfo) -> FunctionEffects:
        """Direct effects of one function (memoized)."""
        key = func_key(info)
        cached = self._direct.get(key)
        if cached is not None:
            return cached
        eff = FunctionEffects(key=key)
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets: Iterable[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                else:
                    targets = node.targets
                for target in targets:
                    attr = _touches_state(target)
                    if attr is not None:
                        verb = "del" if isinstance(node, ast.Delete) else "write"
                        eff.mutations.append(
                            MutationSite(
                                line=node.lineno,
                                attr=attr,
                                desc=f"{verb} through '{attr}'",
                            )
                        )
                if isinstance(node, ast.AugAssign):
                    name = _fold_name(node.target)
                    if name is not None:
                        eff.folds.add(name)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _STATE_MUTATORS
                ):
                    attr = _touches_state(func.value)
                    if attr is not None:
                        eff.mutations.append(
                            MutationSite(
                                line=node.lineno,
                                attr=attr,
                                desc=f".{func.attr}() on '{attr}'",
                            )
                        )
                draw = _rng_draw(self.model, info.module, node)
                if draw is not None:
                    eff.rng_draws.append(
                        RngSite(line=node.lineno, desc=draw)
                    )
            elif isinstance(node, ast.Raise):
                eff.raise_lines.append(node.lineno)
        self._direct[key] = eff
        return eff

    # -- closure over the call graph ----------------------------------------
    def reachable_effects(
        self, roots: Iterable[FuncKey]
    ) -> Iterator[Tuple[FunctionInfo, FunctionEffects]]:
        """Direct effects of every function reachable from ``roots``."""
        graph = self.model.callgraph
        for key in sorted(graph.reachable(roots)):
            info = graph.functions[key]
            yield info, self.direct(info)

    def reachable_mutations(
        self, roots: Iterable[FuncKey]
    ) -> List[Tuple[FunctionInfo, MutationSite]]:
        """Every mutation site reachable from ``roots``, stable order."""
        out: List[Tuple[FunctionInfo, MutationSite]] = []
        for info, eff in self.reachable_effects(roots):
            out.extend((info, site) for site in eff.mutations)
        return out

    def reachable_folds(self, roots: Iterable[FuncKey]) -> Set[str]:
        """Every counter name folded anywhere reachable from ``roots``."""
        folds: Set[str] = set()
        for _info, eff in self.reachable_effects(roots):
            folds |= eff.folds
        return folds


def _model_effects(model: "SemanticModel") -> EffectAnalysis:
    """The per-model memoized :class:`EffectAnalysis` instance."""
    analysis = getattr(model, "_effect_analysis", None)
    if analysis is None:
        analysis = EffectAnalysis(model)
        model._effect_analysis = analysis  # type: ignore[attr-defined]
    return analysis


def _classes_named(
    model: "SemanticModel", name: str
) -> List[Tuple[str, ClassInfo]]:
    """Every analyzed class with ``name``, as ``(module, info)`` pairs."""
    out: List[Tuple[str, ClassInfo]] = []
    for module in sorted(model.graph.modules):
        symbols = model.symbols_of(module)
        if symbols is not None and name in symbols.classes:
            out.append((module, symbols.classes[name]))
    return out


_SIM_PACKAGES = frozenset({"core", "kernels"})

#: candidate-collection entry points: the read-only phase of the
#: two-phase protocol, in both engines
_WALK_METHODS = frozenset({"build_replacement", "build_reinsertion"})
_WALK_KERNEL_METHOD = "collect"


# ---------------------------------------------------------------------------
# ZS105: two-phase purity
# ---------------------------------------------------------------------------


@register_deep_rule
class TwoPhasePurityRule(DeepRule):
    """ZS105: candidate collection must not reach a state mutation."""

    code = "ZS105"
    name = "two-phase-purity"
    summary = (
        "build_replacement/build_reinsertion walks and turbo walk "
        "kernels are read-only: no array-state mutation may be "
        "reachable from candidate collection"
    )

    def _roots(
        self, model: "SemanticModel", module: str
    ) -> List[FuncKey]:
        """Walk entry points *defined in* ``module``."""
        symbols = model.symbols_of(module)
        if symbols is None:
            return []
        roots: List[FuncKey] = []
        for cname in sorted(symbols.classes):
            cls = symbols.classes[cname]
            for mname in sorted(cls.methods):
                is_walk = mname in _WALK_METHODS or (
                    mname == _WALK_KERNEL_METHOD and cname.endswith("Walk")
                )
                if is_walk:
                    roots.append(func_key(cls.methods[mname]))
        return roots

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        roots = self._roots(model, module)
        if not roots:
            return
        effects = _model_effects(model)
        findings: List[Finding] = []
        for info, site in effects.reachable_mutations(roots):
            owner = model.graph.modules.get(info.module)
            if owner is None:
                continue
            findings.append(
                Finding(
                    code=self.code,
                    message=(
                        f"'{info.qualname}' mutates array state "
                        f"({site.desc}) and is reachable from a "
                        f"candidate-collection walk; the walk phase is "
                        f"read-only — mutations belong in commit"
                    ),
                    path=str(owner.path),
                    line=site.line,
                )
            )
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.message))
        yield from findings


# ---------------------------------------------------------------------------
# ZS106: exception-state safety
# ---------------------------------------------------------------------------


@register_deep_rule
class ExceptionStateSafetyRule(DeepRule):
    """ZS106: no raise after the first mutation without restoration."""

    code = "ZS106"
    name = "exception-state-safety"
    summary = (
        "a function mutating array state must not raise after its "
        "first mutation (guards precede writes, or mark the function "
        "'# zspec: atomic')"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return bool(_SIM_PACKAGES & set(path.parts))

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        symbols = model.symbols_of(module)
        info = model.graph.modules.get(module)
        if symbols is None or info is None:
            return
        effects = _model_effects(model)
        source_lines = info.text.splitlines()
        findings: List[Finding] = []
        for fn in symbols.all_functions():
            eff = effects.direct(fn)
            first = eff.first_mutation_line()
            if first is None:
                continue
            def_line = source_lines[fn.lineno - 1] if (
                0 < fn.lineno <= len(source_lines)
            ) else ""
            if _ATOMIC_MARKER in def_line:
                continue
            for raise_line in eff.raise_lines:
                if raise_line > first:
                    findings.append(
                        Finding(
                            code=self.code,
                            message=(
                                f"'{fn.qualname}' raises at line "
                                f"{raise_line} after mutating array state "
                                f"(first mutation at line {first}); a "
                                f"rejected operation must leave state "
                                f"untouched — hoist the guard above the "
                                f"mutation or mark the def "
                                f"'{_ATOMIC_MARKER}'"
                            ),
                            path=str(info.path),
                            line=raise_line,
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.message))
        yield from findings


# ---------------------------------------------------------------------------
# ZS107: engine fold parity
# ---------------------------------------------------------------------------

#: reference-path roots: controller surface plus the array operations
#: the controller invokes through ``self.array`` (attribute calls on
#: values are invisible to the static call graph, so they are listed
#: as explicit roots)
_REFERENCE_ROOTS = (
    ("Cache", ("access", "invalidate", "absorb_writeback")),
    ("ZCacheArray", ("build_replacement", "commit_replacement")),
)
_TURBO_ROOTS = (("TurboCore", ("access", "invalidate")),)


@register_deep_rule
class EngineFoldParityRule(DeepRule):
    """ZS107: reference-path counter folds must exist on the turbo path."""

    code = "ZS107"
    name = "engine-fold-parity"
    summary = (
        "every Counter folded on the reference access path must be "
        "folded on the TurboCore path (static dual of "
        "scripts/diff_engines.py)"
    )

    def _root_keys(
        self,
        model: "SemanticModel",
        spec: Tuple[Tuple[str, Tuple[str, ...]], ...],
    ) -> List[FuncKey]:
        keys: List[FuncKey] = []
        for cname, methods in spec:
            for _module, cls in _classes_named(model, cname):
                for mname in methods:
                    fn = cls.methods.get(mname)
                    if fn is not None:
                        keys.append(func_key(fn))
        return keys

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        symbols = model.symbols_of(module)
        info = model.graph.modules.get(module)
        if symbols is None or info is None:
            return
        turbo = symbols.classes.get("TurboCore")
        if turbo is None:
            return  # parity is checked from TurboCore's defining module
        effects = _model_effects(model)
        ref_roots = self._root_keys(model, _REFERENCE_ROOTS)
        turbo_roots = self._root_keys(model, _TURBO_ROOTS)
        if not ref_roots or not turbo_roots:
            return
        ref_folds = effects.reachable_folds(ref_roots)
        turbo_folds = effects.reachable_folds(turbo_roots)
        missing = sorted(ref_folds - turbo_folds - TURBO_EXEMPT_COUNTERS)
        if missing:
            yield Finding(
                code=self.code,
                message=(
                    f"TurboCore path never folds counter(s) "
                    f"{', '.join(missing)} that the reference path "
                    f"folds; the engines would silently diverge on "
                    f"statistics (diff_engines would catch it at "
                    f"runtime — fix the kernel fold)"
                ),
                path=str(info.path),
                line=turbo.lineno,
            )


# ---------------------------------------------------------------------------
# ZS108: RNG-draw discipline
# ---------------------------------------------------------------------------


@register_deep_rule
class RngDisciplineRule(DeepRule):
    """ZS108: core/kernels entropy routes through seeded streams."""

    code = "ZS108"
    name = "rng-draw-discipline"
    summary = (
        "core/ and kernels/ must draw entropy only from seeded "
        "random.Random instances or MTStream-synced kernels, never "
        "from the raw random/numpy modules"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return bool(_SIM_PACKAGES & set(path.parts))

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules.get(module)
        if info is None:
            return
        findings: List[Finding] = []
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            draw = _rng_draw(model, module, node)
            if draw is not None:
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"raw module-level RNG draw '{draw}()' in a "
                            f"simulator package; route entropy through a "
                            f"seeded random.Random (or its MTStream "
                            f"twin) so runs replay bit-identically"
                        ),
                        path=str(info.path),
                        line=node.lineno,
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.message))
        yield from findings


__all__ = [
    "STATE_ATTRS",
    "TURBO_EXEMPT_COUNTERS",
    "EffectAnalysis",
    "FunctionEffects",
    "MutationSite",
    "RngSite",
    "EngineFoldParityRule",
    "ExceptionStateSafetyRule",
    "RngDisciplineRule",
    "TwoPhasePurityRule",
]
