"""ZProve: whole-program semantic analysis for the repository.

Layers (each its own module):

- :mod:`repro.analysis.semantic.modulegraph` — module discovery,
  import resolution, closures, fingerprints, cycle detection;
- :mod:`repro.analysis.semantic.symbols` — per-module symbol tables
  (functions, classes, module-level bindings with mutability);
- :mod:`repro.analysis.semantic.dataflow` — def-use origin tracking
  with interprocedural function summaries;
- :mod:`repro.analysis.semantic.callgraph` — static call edges and
  reachability;
- :mod:`repro.analysis.semantic.cache` — fingerprint-keyed incremental
  analysis cache;
- :mod:`repro.analysis.semantic.deeprules` — the rule registry and the
  ZS101–ZS104 rules;
- :mod:`repro.analysis.semantic.effects` — interprocedural effect
  inference (array-state mutation, counter folds, RNG draws, raises)
  and the ZS105–ZS108 effect/typestate rules;
- :mod:`repro.analysis.semantic.race` — thread roots, per-call-path
  locksets, the lock-acquisition graph, and the ZS110–ZS113 race
  rules (ZRace);
- :mod:`repro.analysis.semantic.model` — the
  :class:`~repro.analysis.semantic.model.SemanticModel` facade and the
  :func:`~repro.analysis.semantic.model.run_deep` driver behind
  ``zcache-repro lint --deep``.
"""

from repro.analysis.semantic.cache import AnalysisCache, CACHE_VERSION
from repro.analysis.semantic.callgraph import CallGraph, func_key
from repro.analysis.semantic.dataflow import OriginEvaluator, ScopeWalker
from repro.analysis.semantic.deeprules import (
    DEEP_RULE_REGISTRY,
    DeepRule,
    default_deep_rules,
    register_deep_rule,
    rules_signature,
)
from repro.analysis.semantic.effects import (
    EffectAnalysis,
    FunctionEffects,
)
from repro.analysis.semantic.race import (
    LockDisciplineRule,
    LockOrderRule,
    OffLockPurityRule,
    RaceAnalysis,
    ThreadEscapeRule,
)
from repro.analysis.semantic.model import (
    DeepRunStats,
    SemanticModel,
    run_deep,
)
from repro.analysis.semantic.modulegraph import (
    ImportedName,
    ModuleGraph,
    ModuleInfo,
    module_name_for,
)
from repro.analysis.semantic.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    extract_symbols,
)

__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "CallGraph",
    "ClassInfo",
    "DEEP_RULE_REGISTRY",
    "DeepRule",
    "DeepRunStats",
    "EffectAnalysis",
    "FunctionEffects",
    "FunctionInfo",
    "ImportedName",
    "LockDisciplineRule",
    "LockOrderRule",
    "ModuleGraph",
    "ModuleInfo",
    "ModuleSymbols",
    "OffLockPurityRule",
    "OriginEvaluator",
    "RaceAnalysis",
    "ScopeWalker",
    "SemanticModel",
    "ThreadEscapeRule",
    "default_deep_rules",
    "extract_symbols",
    "func_key",
    "module_name_for",
    "register_deep_rule",
    "rules_signature",
    "run_deep",
]
