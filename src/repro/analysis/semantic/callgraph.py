"""Call graph over the analyzed tree, built from resolved call sites.

Edges connect function *definitions* — ``(module, qualname)`` pairs —
wherever a call expression resolves statically to a function defined
inside the analyzed tree. Resolution is name-based and conservative:

- ``helper(...)`` resolves through the module's own definitions, then
  its import table (re-export chains are chased, so ``from repro.obs
  import ObsContext`` reaches the defining module);
- ``mod.helper(...)`` / ``mod.Class(...)`` resolve through module
  aliases, including ``from x import f as g`` aliasing;
- ``self.method(...)`` / ``cls.method(...)`` resolve within the
  enclosing class; bare ``cls(...)`` resolves to ``__init__``;
- ``Class.method(...)`` resolves when ``Class`` names an analyzed
  class; constructing ``Class(...)`` resolves to its ``__init__``.

Method calls on arbitrary *values* (``obj.run()``) are not resolved —
the model has no type inference — so the graph under-approximates
dynamic dispatch. For the deep rules that consume it (ZS102 worker
reachability) an under-approximation flags only real code, which is
the right bias for a lint gate.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.semantic.symbols import FunctionInfo, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.semantic.model import SemanticModel

#: a function definition key: (module name, qualified name)
FuncKey = Tuple[str, str]


def func_key(info: FunctionInfo) -> FuncKey:
    """The graph key for a function definition."""
    return (info.module, info.qualname)


class CallGraph:
    """Static call edges between analyzed function definitions."""

    def __init__(self) -> None:
        self.edges: Dict[FuncKey, Set[FuncKey]] = {}
        self.functions: Dict[FuncKey, FunctionInfo] = {}

    @classmethod
    def build(cls, model: "SemanticModel") -> "CallGraph":
        """Resolve every call site in every analyzed function."""
        graph = cls()
        for module in sorted(model.graph.modules):
            symbols = model.symbols_of(module)
            if symbols is None:
                continue
            for info in symbols.all_functions():
                key = func_key(info)
                graph.functions[key] = info
                graph.edges.setdefault(key, set())
                for call in _calls_in(info.node):
                    target = resolve_call(model, module, call, info)
                    if target is not None:
                        graph.edges[key].add(func_key(target))
        return graph

    def callees(self, key: FuncKey) -> Set[FuncKey]:
        """Direct callees of one function."""
        return self.edges.get(key, set())

    def reachable(self, roots: Iterable[FuncKey]) -> Set[FuncKey]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[FuncKey] = set()
        stack: List[FuncKey] = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.edges.get(key, ()))
        return seen

    def __len__(self) -> int:
        return len(self.functions)


def _calls_in(node: ast.AST) -> List[ast.Call]:
    """All Call expressions in a function body (nested defs included)."""
    return [n for n in ast.walk(node) if isinstance(n, ast.Call)]


def resolve_call(
    model: "SemanticModel",
    module: str,
    call: ast.Call,
    enclosing: Optional[FunctionInfo] = None,
) -> Optional[FunctionInfo]:
    """Resolve one call expression to an analyzed function, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if (
            func.id == "cls"
            and enclosing is not None
            and enclosing.class_name is not None
        ):
            return model.resolve_method(
                module, enclosing.class_name, "__init__"
            )
        return model.resolve_callable(module, func.id)
    if isinstance(func, ast.Attribute):
        chain = dotted_name(func)
        if chain is None:
            return None
        parts = chain.split(".")
        if (
            parts[0] in ("self", "cls")
            and len(parts) == 2
            and enclosing is not None
            and enclosing.class_name is not None
        ):
            return model.resolve_method(
                module, enclosing.class_name, parts[1]
            )
        return model.resolve_dotted_callable(module, chain)
    return None
