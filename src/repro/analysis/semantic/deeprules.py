"""Deep (whole-program) lint rules: registry plus ZS101–ZS104, ZS109.

Where the classic ZSan rules (ZS001–ZS006) look at one file at a time,
deep rules run against the :class:`~repro.analysis.semantic.model.
SemanticModel` and may follow values through calls, imports, and the
call graph:

- **ZS101 seed-provenance** — every seed that reaches an RNG
  constructor or a ``seed=``/``hash_seed=`` keyword must trace back to
  a config field, a function parameter, or ``derive_job_seed``; bare
  constants and nondeterministic sources (wall clock, ``id()``,
  ``hash()``, OS entropy) are flagged.
- **ZS102 parallel-safety** — code reachable from a process-pool
  ``submit`` dispatch must not mutate module-level state, declare
  ``global``/``nonlocal``, or open file handles, and the dispatch
  itself must not pass lambdas, locally-defined functions, open
  handles, or module-level mutables across the process boundary.
- **ZS103 merge-completeness** — stats facades and metric registries
  must fold *every* metric they register in their merge paths, so the
  parallel sweep's deterministic merge cannot silently drop a counter.
- **ZS104 hidden-module-state** — simulator packages (``core``,
  ``sim``, ``replacement``) must not keep module-level mutable
  globals; state belongs in objects threaded through calls.
- **ZS109 span-discipline** — ``core``/``kernels``/``experiments``
  code opens ZTrace spans only as ``with`` items (or through
  ``record_span``), so a raising body can never leak an open span.

The effect/typestate rules (ZS105–ZS108) live in
:mod:`repro.analysis.semantic.effects` and register here through the
same decorator.

Rules register via :func:`register_deep_rule` (codes ``ZS1xx``,
deliberately disjoint from the classic registry) and are driven by
:func:`repro.analysis.semantic.model.run_deep`.
"""

from __future__ import annotations

import abc
import ast
import hashlib
import inspect
import re
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.engine import Finding
from repro.analysis.semantic.callgraph import func_key, resolve_call
from repro.analysis.semantic.dataflow import (
    CONST,
    LOCAL_FUNCTION,
    MODULE_MUTABLE,
    OPEN_HANDLE,
    Origins,
    ScopeWalker,
    is_taint,
)
from repro.analysis.semantic.modulegraph import ModuleInfo
from repro.analysis.semantic.symbols import ClassInfo, FunctionInfo, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.semantic.model import SemanticModel

_DEEP_CODE_RE = re.compile(r"^ZS[1-9]\d{2}$")


class DeepRule(abc.ABC):
    """Base class for whole-program rules."""

    #: unique rule code, ``ZS1xx`` (deep codes start at 100)
    code: ClassVar[str] = ""
    #: short kebab-case identifier (shown in ``lint --rules``)
    name: ClassVar[str] = ""
    #: one-line description of what the rule enforces
    summary: ClassVar[str] = ""

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        """Whether this rule runs for ``module`` (default: always)."""
        return True

    @abc.abstractmethod
    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        """Yield every violation attributable to analyzing ``module``."""

    def finding(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node of ``info``'s file."""
        return Finding(
            code=self.code,
            message=message,
            path=str(info.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


#: code -> deep rule class, populated by :func:`register_deep_rule`
DEEP_RULE_REGISTRY: Dict[str, type] = {}


def register_deep_rule(cls: type) -> type:
    """Class decorator adding a rule to :data:`DEEP_RULE_REGISTRY`."""
    code = getattr(cls, "code", "")
    if not _DEEP_CODE_RE.match(code):
        raise ValueError(
            f"deep rule code {code!r} does not match ZS1xx (>= ZS100)"
        )
    existing = DEEP_RULE_REGISTRY.get(code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate deep rule code {code}: {existing.__name__} and "
            f"{cls.__name__}"
        )
    DEEP_RULE_REGISTRY[code] = cls
    return cls


def default_deep_rules() -> List[DeepRule]:
    """One instance of every registered deep rule, code order."""
    # The effect and race rules register on import; imported lazily
    # here because both modules import DeepRule from this one.
    from repro.analysis.semantic import effects, race  # noqa: F401

    return [DEEP_RULE_REGISTRY[c]() for c in sorted(DEEP_RULE_REGISTRY)]


def rules_signature(rules: Optional[List[DeepRule]] = None) -> str:
    """A short content hash over the active rules' source code.

    Folded into the analysis cache so editing a rule's *logic* — not
    just the analyzed modules — invalidates cached findings. Without
    this, a rule fix would silently keep serving stale results for
    every module whose closure fingerprint did not change.
    """
    pool = rules if rules is not None else default_deep_rules()
    digest = hashlib.sha256()
    for chunk in sorted(
        rule.code + inspect.getsource(type(rule)) for rule in pool
    ):
        digest.update(chunk.encode("utf-8"))
    return digest.hexdigest()[:16]


def _sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.column, f.code)


# ---------------------------------------------------------------------------
# ZS101: seed provenance
# ---------------------------------------------------------------------------

#: call keywords that materialize a seed wherever they appear
_SEED_KEYWORDS = frozenset({"seed", "hash_seed", "base_seed"})
_RNG_TAILS = frozenset({"Random", "default_rng", "SeedSequence"})


def _seed_sites(
    model: "SemanticModel", module: str, call: ast.Call
) -> List[Tuple[ast.expr, str]]:
    """The (seed expression, site description) pairs in one call."""
    sites: List[Tuple[ast.expr, str]] = []
    seen: Set[int] = set()
    func = call.func
    parts: Optional[List[str]] = None
    if isinstance(func, ast.Name):
        parts = [func.id]
    elif isinstance(func, ast.Attribute):
        chain = dotted_name(func)
        parts = chain.split(".") if chain else None
    tail = parts[-1] if parts else None
    if (
        parts is not None
        and tail in _RNG_TAILS
        and parts[0] not in ("self", "cls")
        and model.resolve_dotted_callable(module, ".".join(parts)) is None
    ):
        seed_expr: Optional[ast.expr] = call.args[0] if call.args else None
        if seed_expr is None:
            for kw in call.keywords:
                if kw.arg in ("seed", "x", "entropy"):
                    seed_expr = kw.value
                    break
        if seed_expr is not None:
            sites.append((seed_expr, f"{tail}()"))
            seen.add(id(seed_expr))
    for kw in call.keywords:
        if kw.arg in _SEED_KEYWORDS and id(kw.value) not in seen:
            label = tail if tail is not None else "call"
            sites.append((kw.value, f"{label}({kw.arg}=...)"))
            seen.add(id(kw.value))
    return sites


@register_deep_rule
class SeedProvenanceRule(DeepRule):
    """ZS101: seeds must trace to config, parameters, or derive_job_seed."""

    code = "ZS101"
    name = "seed-provenance"
    summary = (
        "RNG seeds must derive from config fields, parameters, or "
        "derive_job_seed — never constants or nondeterministic sources"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        # The analysis tooling itself seeds fixed RNGs on purpose
        # (sanitizer probes, fixtures); everything else is simulator
        # code where seed provenance is a correctness property.
        return not module.startswith("repro.analysis")

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules[module]
        findings: List[Finding] = []
        evaluator = model.evaluator

        def visit(call: ast.Call, envs: List[Dict[str, Origins]]) -> None:
            for seed_expr, desc in _seed_sites(model, module, call):
                origins = evaluator.expr_origins(module, seed_expr, list(envs))
                taints = sorted(t for t in origins if is_taint(t))
                if taints:
                    findings.append(
                        self.finding(
                            info,
                            seed_expr,
                            f"{desc} seeded from nondeterministic source "
                            f"({', '.join(taints)}); seeds must derive "
                            f"from config fields, parameters, or "
                            f"derive_job_seed",
                        )
                    )
                elif origins and origins <= frozenset({CONST}):
                    findings.append(
                        self.finding(
                            info,
                            seed_expr,
                            f"{desc} takes a bare constant seed; thread "
                            f"it through a parameter or config field (or "
                            f"derive_job_seed) so sweeps stay reproducible",
                        )
                    )

        walker = ScopeWalker(evaluator, module, visit=visit)
        walker.run(list(info.tree.body), [{}])
        findings.sort(key=_sort_key)
        yield from findings


# ---------------------------------------------------------------------------
# ZS102: parallel safety
# ---------------------------------------------------------------------------

#: method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault", "pop",
        "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
        "write", "writelines",
    }
)


def _root_name(node: ast.expr) -> Optional[str]:
    """The base Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_store_names(func: FunctionInfo) -> Set[str]:
    """Parameters plus every name the function (re)binds locally."""
    names: Set[str] = set(func.params)
    for node in ast.walk(func.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _is_obs_module(module: str) -> bool:
    """Whether ``module`` belongs to the observability layer.

    The obs sinks are the sanctioned channel for a worker to record
    span/trace data: each worker opens its *own* per-process file from
    a path handed across the pickle boundary, so no handle is shared
    with the parent. Mirrors the ZS005 exemption for the same layer.
    """
    return module == "repro.obs" or module.startswith("repro.obs.")


@register_deep_rule
class ParallelSafetyRule(DeepRule):
    """ZS102: worker-reachable code must be pure w.r.t. module state.

    The ``open()`` check exempts functions defined under ``repro.obs``:
    per-worker span/trace sinks (see :mod:`repro.obs.spans`) are the
    designed mechanism for workers to record observability data, and
    they open worker-local paths rather than sharing parent handles.
    """

    code = "ZS102"
    name = "parallel-safety"
    summary = (
        "code dispatched to worker processes must not capture or mutate "
        "module-level state, hold open handles, or cross the pickle "
        "boundary with local functions"
    )

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules[module]
        findings: List[Finding] = []
        workers: List[FunctionInfo] = []
        evaluator = model.evaluator

        def visit(call: ast.Call, envs: List[Dict[str, Origins]]) -> None:
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
                return
            if not call.args:
                return
            worker_expr = call.args[0]
            if isinstance(worker_expr, ast.Lambda):
                findings.append(
                    self.finding(
                        info,
                        worker_expr,
                        "lambda submitted to a process pool is not "
                        "picklable; dispatch a module-level function",
                    )
                )
            else:
                target: Optional[FunctionInfo] = None
                origins = evaluator.expr_origins(
                    module, worker_expr, list(envs)
                )
                if LOCAL_FUNCTION in origins:
                    findings.append(
                        self.finding(
                            info,
                            worker_expr,
                            "locally-defined function submitted to a "
                            "process pool is not picklable; dispatch a "
                            "module-level function",
                        )
                    )
                elif isinstance(worker_expr, (ast.Name, ast.Attribute)):
                    fake_call = ast.Call(
                        func=worker_expr, args=[], keywords=[]
                    )
                    target = resolve_call(model, module, fake_call)
                if target is not None:
                    workers.append(target)
            for arg in [*call.args[1:], *[kw.value for kw in call.keywords]]:
                origins = evaluator.expr_origins(module, arg, list(envs))
                if isinstance(arg, ast.Lambda) or LOCAL_FUNCTION in origins:
                    findings.append(
                        self.finding(
                            info,
                            arg,
                            "unpicklable callable (lambda or local "
                            "function) passed as a worker argument",
                        )
                    )
                elif OPEN_HANDLE in origins:
                    findings.append(
                        self.finding(
                            info,
                            arg,
                            "open file handle passed across the process "
                            "boundary; pass a path and open in the worker",
                        )
                    )
                elif MODULE_MUTABLE in origins:
                    findings.append(
                        self.finding(
                            info,
                            arg,
                            "module-level mutable state passed to a "
                            "worker; the child gets a copy and mutations "
                            "are lost — pass values and merge returns",
                        )
                    )

        walker = ScopeWalker(evaluator, module, visit=visit)
        walker.run(list(info.tree.body), [{}])

        reached = model.callgraph.reachable(func_key(w) for w in workers)
        for key in sorted(reached):
            worker_fn = model.callgraph.functions[key]
            findings.extend(self._scan_reachable(model, worker_fn))

        findings.sort(key=_sort_key)
        yield from findings

    def _scan_reachable(
        self, model: "SemanticModel", fn: FunctionInfo
    ) -> List[Finding]:
        """Structural violations inside one worker-reachable function."""
        out: List[Finding] = []
        info = model.graph.modules.get(fn.module)
        if info is None:
            return out
        symbols = model.symbols_of(fn.module)
        bindings = symbols.bindings if symbols is not None else {}
        local = _local_store_names(fn)
        where = f"'{fn.qualname}' is reachable from a worker dispatch but"
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                out.append(
                    self.finding(
                        info,
                        node,
                        f"{where} declares '{kind} "
                        f"{', '.join(node.names)}'; mutate nothing outside "
                        f"the call — return results instead",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = _root_name(target)
                    if root is None or root in ("self", "cls"):
                        continue
                    if root in local:
                        continue
                    if root in bindings or (
                        model.graph.imported(fn.module, root) is not None
                    ):
                        out.append(
                            self.finding(
                                info,
                                target,
                                f"{where} mutates module-level state "
                                f"'{root}'; worker results must flow "
                                f"through return values",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "open"
                    and not _is_obs_module(fn.module)
                ):
                    out.append(
                        self.finding(
                            info,
                            node,
                            f"{where} opens a file handle; workers must "
                            f"not touch host files directly",
                        )
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id not in local
                    and func.value.id in bindings
                    and bindings[func.value.id].kind == "mutable"
                ):
                    out.append(
                        self.finding(
                            info,
                            node,
                            f"{where} calls .{func.attr}() on module-level "
                            f"mutable '{func.value.id}'; worker results "
                            f"must flow through return values",
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# ZS103: merge completeness
# ---------------------------------------------------------------------------

_FACTORIES = frozenset(
    {"counter", "gauge", "histogram", "int_histogram", "reservoir"}
)
_METRIC_CLASSES = frozenset(
    {"Counter", "Gauge", "Histogram", "IntHistogram", "ReservoirHistogram"}
)


def _referenced_names(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr appearing under ``node``."""
    refs: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            refs.add(child.id)
        elif isinstance(child, ast.Attribute):
            refs.add(child.attr)
    return refs


def _factory_tail(node: ast.expr) -> Optional[str]:
    """The factory name when ``node`` is a metric-factory call."""
    if not isinstance(node, ast.Call):
        return None
    chain = dotted_name(node.func)
    if chain is None:
        return None
    tail = chain.split(".")[-1]
    return tail if tail in _FACTORIES else None


def _extra_metric_attrs(cls: ClassInfo) -> List[Tuple[str, int]]:
    """``self.<attr> = registry.<factory>(...)`` bindings in initializers.

    Both plain attribute assignment and the frozen-dataclass
    ``object.__setattr__(self, "attr", factory(...))`` shape count.
    """
    out: List[Tuple[str, int]] = []
    for mname in ("__init__", "__post_init__"):
        method = cls.methods.get(mname)
        if method is None:
            continue
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _factory_tail(node.value) is not None
                ):
                    out.append((target.attr, node.lineno))
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if (
                    chain == "object.__setattr__"
                    and len(node.args) == 3
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                    and _factory_tail(node.args[2]) is not None
                ):
                    out.append((node.args[1].value, node.lineno))
    return sorted(set(out))


@register_deep_rule
class MergeCompletenessRule(DeepRule):
    """ZS103: every registered metric must be covered by a merge path."""

    code = "ZS103"
    name = "merge-completeness"
    summary = (
        "stats facades and metric registries must fold every metric "
        "they register in merge()/merge_snapshot(), or the parallel "
        "sweep silently drops data"
    )

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules[module]
        symbols = model.symbols_of(module)
        if symbols is None:
            return
        findings: List[Finding] = []
        for cname in sorted(symbols.classes):
            cls = symbols.classes[cname]
            findings.extend(self._check_stats_facade(info, cls))
            findings.extend(self._check_registry(info, cls))
        findings.sort(key=_sort_key)
        yield from findings

    def _check_stats_facade(
        self, info: ModuleInfo, cls: ClassInfo
    ) -> List[Finding]:
        """RegistryStats subclasses: merge() must cover what they add."""
        out: List[Finding] = []
        if "RegistryStats" not in cls.base_tails():
            return out
        extra = _extra_metric_attrs(cls)
        merge = cls.methods.get("merge")
        if merge is None:
            for attr, lineno in extra:
                out.append(
                    self.finding(
                        info,
                        cls.node,
                        f"{cls.name} registers metric attribute "
                        f"'{attr}' (line {lineno}) but defines no "
                        f"merge(); parallel sweeps would drop it",
                    )
                )
            return out
        refs = _referenced_names(merge.node)
        for attr, _lineno in extra:
            if attr not in refs:
                out.append(
                    self.finding(
                        info,
                        merge.node,
                        f"{cls.name}.merge() does not fold metric "
                        f"attribute '{attr}'; every registered metric "
                        f"must be merged",
                    )
                )
        if cls.counter_fields and "merge_counters" not in refs:
            missing = [f for f in cls.counter_fields if f not in refs]
            if missing:
                out.append(
                    self.finding(
                        info,
                        merge.node,
                        f"{cls.name}.merge() neither calls "
                        f"merge_counters() nor folds counter field(s) "
                        f"{', '.join(missing)}",
                    )
                )
        return out

    def _check_registry(
        self, info: ModuleInfo, cls: ClassInfo
    ) -> List[Finding]:
        """Registry classes: merge_snapshot must fold every metric kind."""
        out: List[Finding] = []
        factories: Dict[str, str] = {}
        for mname in sorted(cls.methods):
            for node in ast.walk(cls.methods[mname].node):
                if not isinstance(node, ast.Call):
                    continue
                chain = dotted_name(node.func)
                if chain is None or chain.split(".")[-1] != "_register":
                    continue
                if len(node.args) >= 2 and isinstance(node.args[1], ast.Call):
                    metric_chain = dotted_name(node.args[1].func)
                    if metric_chain is not None:
                        metric = metric_chain.split(".")[-1]
                        if metric in _METRIC_CLASSES:
                            factories[mname] = metric
        merge_snapshot = cls.methods.get("merge_snapshot")
        if not factories or merge_snapshot is None:
            return out
        refs = _referenced_names(merge_snapshot.node)
        for factory in sorted(factories):
            metric = factories[factory]
            if factory not in refs and metric not in refs:
                out.append(
                    self.finding(
                        info,
                        merge_snapshot.node,
                        f"{cls.name}.merge_snapshot() does not fold "
                        f"'{factory}' metrics ({metric}); snapshot "
                        f"entries of that kind would be dropped or "
                        f"crash the merge",
                    )
                )
        return out


# ---------------------------------------------------------------------------
# ZS104: hidden module state
# ---------------------------------------------------------------------------

_SIM_PACKAGES = frozenset({"core", "sim", "replacement"})


@register_deep_rule
class HiddenModuleStateRule(DeepRule):
    """ZS104: simulator packages keep no module-level mutable globals."""

    code = "ZS104"
    name = "hidden-module-state"
    summary = (
        "core/, sim/, and replacement/ modules must not hold mutable "
        "module-level globals; simulator state lives in objects"
    )

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return bool(_SIM_PACKAGES & set(path.parts))

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules[module]
        symbols = model.symbols_of(module)
        if symbols is None:
            return
        for binding in symbols.mutable_globals():
            yield Finding(
                code=self.code,
                message=(
                    f"module-level mutable global '{binding.name}'; "
                    f"simulator state must live in objects threaded "
                    f"through calls (freeze constants with tuple/"
                    f"frozenset/MappingProxyType)"
                ),
                path=str(info.path),
                line=binding.lineno,
                column=binding.col,
            )


# ---------------------------------------------------------------------------
# ZS109: span discipline
# ---------------------------------------------------------------------------

#: span-opening method names that must appear as a ``with`` item
_SPAN_OPENERS = frozenset({"span", "turbo_batches", "_start"})


@register_deep_rule
class SpanDisciplineRule(DeepRule):
    """ZS109: spans open only as ``with`` items in simulation code.

    A span (or a tracker-managed helper like ``turbo_batches``) opened
    outside a ``with`` statement leaks open when the enclosed work
    raises: its duration is never recorded and every later span on the
    thread parents under a ghost. ``record_span`` (an already-measured
    interval) is the sanctioned non-``with`` spelling.
    """

    code = "ZS109"
    name = "span-discipline"
    summary = (
        "core/, kernels/ and experiments/ code must open spans as "
        "`with tracker.span(...)` (or a tracker-managed helper) so "
        "spans cannot leak open on exceptions"
    )

    _SCOPED = frozenset({"core", "kernels", "experiments"})

    @classmethod
    def applies_to_module(cls, module: str, path: Path) -> bool:
        return bool(cls._SCOPED & set(path.parts))

    def check_module(
        self, model: "SemanticModel", module: str
    ) -> Iterator[Finding]:
        info = model.graph.modules[module]
        with_items: Set[int] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SPAN_OPENERS
            ):
                continue
            if id(node) in with_items:
                continue
            yield self.finding(
                info,
                node,
                f"'.{func.attr}(...)' opens a span outside a 'with' "
                f"statement; use `with tracker.{func.attr}(...)` so the "
                f"span closes on exceptions (record_span is the "
                f"sanctioned non-with form)",
            )
