"""Intra-procedural def-use chains with interprocedural summaries.

The ZProve dataflow layer answers one kind of question: *where does
this value come from?* Every expression evaluates to a set of origin
tokens over a small lattice:

- ``const`` — literals and values derived only from literals;
- ``param:<name>`` — a function parameter (symbolic, so function
  return summaries can be re-bound at each call site);
- ``config`` — an attribute load (``scale.seed``, ``self.seed``,
  ``cfg.l2_blocks``): named state threaded explicitly;
- ``seed-derived`` — the result of ``derive_job_seed`` (the sanctioned
  per-job seed derivation);
- ``module-mutable`` — a module-level mutable global;
- ``local-function`` — a lambda or nested ``def`` (unpicklable);
- ``open-handle`` — the result of builtin ``open()``;
- ``taint:wall-clock`` / ``taint:object-identity`` /
  ``taint:salted-hash`` / ``taint:os-entropy`` — nondeterministic
  sources that must never reach a seed;
- ``unknown`` — anything the analysis cannot prove.

Statements are interpreted in order (assignments rebind, augmented
assignments accumulate, loop targets take the iterable's origins), and
calls to functions inside the analyzed tree substitute the callee's
*return summary* with the caller's argument origins bound to the
callee's parameters — provenance flows through helper functions, which
is what makes the deep rules whole-program rather than per-file.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Set, Tuple,
)

from repro.analysis.semantic.symbols import FunctionInfo, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.semantic.model import SemanticModel

Origins = FrozenSet[str]

CONST = "const"
CONFIG = "config"
SEED_DERIVED = "seed-derived"
MODULE_MUTABLE = "module-mutable"
LOCAL_FUNCTION = "local-function"
OPEN_HANDLE = "open-handle"
UNKNOWN = "unknown"
TAINT_WALLCLOCK = "taint:wall-clock"
TAINT_ID = "taint:object-identity"
TAINT_HASH = "taint:salted-hash"
TAINT_ENTROPY = "taint:os-entropy"

CONST_SET: Origins = frozenset({CONST})
UNKNOWN_SET: Origins = frozenset({UNKNOWN})

PARAM_PREFIX = "param:"


def param_token(name: str) -> str:
    """The symbolic origin token for parameter ``name``."""
    return PARAM_PREFIX + name


def is_param(token: str) -> bool:
    """True for ``param:<name>`` tokens."""
    return token.startswith(PARAM_PREFIX)


def is_taint(token: str) -> bool:
    """True for nondeterministic-source tokens."""
    return token.startswith("taint:")


#: host-clock readers in the ``time`` module (mirrors ZS005's list)
_WALLCLOCK_ATTRS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns",
    }
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: builtins whose result derives entirely from their arguments
_PASSTHROUGH_BUILTINS = frozenset(
    {
        "abs", "int", "float", "round", "min", "max", "sum", "len", "ord",
        "pow", "divmod", "range", "sorted", "tuple", "list", "str", "repr",
        "enumerate", "zip", "reversed",
    }
)
#: deterministic mixers the repo treats as seed-preserving
_PASSTHROUGH_NAMES = frozenset({"crc32", "splitmix64", "adler32"})
#: RNG constructors: the produced generator carries its seed's origins
_RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "default_rng",
                               "Generator", "SeedSequence"})


class OriginEvaluator:
    """Evaluates expression origins against a :class:`SemanticModel`."""

    #: recursion guard for interprocedural summary substitution
    MAX_DEPTH = 8

    def __init__(self, model: "SemanticModel") -> None:
        self.model = model
        self._summaries: Dict[Tuple[str, str], Origins] = {}
        self._in_progress: Set[Tuple[str, str]] = set()

    # -- summaries ---------------------------------------------------------
    def summary(self, func: FunctionInfo) -> Origins:
        """Origins of ``func``'s return value, parameters symbolic."""
        key = (func.module, func.qualname)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return UNKNOWN_SET  # recursion: stay conservative
        self._in_progress.add(key)
        try:
            walker = ScopeWalker(self, func.module, module_scope=False)
            env = {p: frozenset({param_token(p)}) for p in func.params}
            walker.run(list(func.node.body), [env])  # type: ignore[attr-defined]
            if walker.returns:
                result: Origins = frozenset().union(*walker.returns)
            else:
                result = CONST_SET  # implicit `return None`
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = result
        return result

    # -- expressions -------------------------------------------------------
    def expr_origins(
        self, module: str, node: Optional[ast.expr],
        envs: List[Dict[str, Origins]], depth: int = 0,
    ) -> Origins:
        """Origin set of ``node`` evaluated in scope chain ``envs``."""
        if node is None or depth > self.MAX_DEPTH:
            return UNKNOWN_SET
        if isinstance(node, ast.Constant):
            return CONST_SET
        if isinstance(node, ast.Name):
            return self._name_origins(module, node.id, envs)
        if isinstance(node, ast.Attribute):
            return frozenset({CONFIG})
        if isinstance(node, ast.BinOp):
            return self.expr_origins(
                module, node.left, envs, depth
            ) | self.expr_origins(module, node.right, envs, depth)
        if isinstance(node, ast.UnaryOp):
            return self.expr_origins(module, node.operand, envs, depth)
        if isinstance(node, ast.BoolOp):
            return self._union(module, node.values, envs, depth)
        if isinstance(node, ast.IfExp):
            return self.expr_origins(
                module, node.body, envs, depth
            ) | self.expr_origins(module, node.orelse, envs, depth)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._union(module, node.elts, envs, depth) or CONST_SET
        if isinstance(node, ast.Dict):
            vals = [v for v in node.values if v is not None]
            return self._union(module, vals, envs, depth) or CONST_SET
        if isinstance(node, ast.Subscript):
            return self.expr_origins(module, node.value, envs, depth)
        if isinstance(node, ast.Starred):
            return self.expr_origins(module, node.value, envs, depth)
        if isinstance(node, ast.Lambda):
            return frozenset({LOCAL_FUNCTION})
        if isinstance(node, ast.Call):
            return self._call_origins(module, node, envs, depth)
        if isinstance(node, ast.Compare):
            return CONST_SET  # a bool: never a meaningful seed source
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return self._union(
                module,
                [
                    v.value if isinstance(v, ast.FormattedValue) else v
                    for v in getattr(node, "values", [node])
                    if isinstance(v, (ast.FormattedValue, ast.Constant))
                ]
                or [],
                envs,
                depth,
            ) or CONST_SET
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = self._comprehension_env(module, node.generators, envs, depth)
            return self.expr_origins(module, node.elt, envs + [comp_env], depth)
        if isinstance(node, ast.DictComp):
            comp_env = self._comprehension_env(module, node.generators, envs, depth)
            return self.expr_origins(module, node.value, envs + [comp_env], depth)
        if isinstance(node, ast.NamedExpr):
            return self.expr_origins(module, node.value, envs, depth)
        return UNKNOWN_SET

    def _union(
        self, module: str, nodes: List[ast.expr],
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Origins:
        out: Origins = frozenset()
        for n in nodes:
            out |= self.expr_origins(module, n, envs, depth)
        return out

    def _comprehension_env(
        self, module: str, generators: List[ast.comprehension],
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Dict[str, Origins]:
        env: Dict[str, Origins] = {}
        for gen in generators:
            iter_origins = self.expr_origins(module, gen.iter, envs + [env], depth)
            for name in _target_names(gen.target):
                env[name] = iter_origins
        return env

    def _name_origins(
        self, module: str, name: str, envs: List[Dict[str, Origins]]
    ) -> Origins:
        for env in reversed(envs):
            if name in env:
                return env[name]
        symbols = self.model.symbols_of(module)
        if symbols is not None:
            binding = symbols.bindings.get(name)
            if binding is not None:
                if binding.kind == "frozen":
                    return CONST_SET
                if binding.kind == "mutable":
                    return frozenset({MODULE_MUTABLE})
                return UNKNOWN_SET
            if name in symbols.functions or name in symbols.classes:
                return UNKNOWN_SET
        return UNKNOWN_SET

    # -- calls -------------------------------------------------------------
    def _call_origins(
        self, module: str, node: ast.Call,
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Origins:
        arg_exprs: List[ast.expr] = list(node.args) + [
            kw.value for kw in node.keywords
        ]

        func = node.func
        if isinstance(func, ast.Name):
            return self._named_call_origins(module, func.id, node, envs, depth)
        if isinstance(func, ast.Attribute):
            chain = dotted_name(func)
            if chain is not None:
                resolved = self._chain_call_origins(
                    module, chain, node, envs, depth
                )
                if resolved is not None:
                    return resolved
            # A method call on an evaluable object: the result derives
            # from the object plus the arguments (rng.randrange(n),
            # key.encode(), cfg.derived_seed(), ...).
            return self.expr_origins(
                module, func.value, envs, depth
            ) | self._union(module, arg_exprs, envs, depth)
        return UNKNOWN_SET

    def _named_call_origins(
        self, module: str, name: str, node: ast.Call,
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Origins:
        arg_exprs: List[ast.expr] = list(node.args) + [
            kw.value for kw in node.keywords
        ]
        for env in reversed(envs):
            if name in env:  # calling a local value: best effort
                if env[name] & frozenset({LOCAL_FUNCTION}):
                    return UNKNOWN_SET
                return env[name] | self._union(module, arg_exprs, envs, depth)
        if name == "id":
            return frozenset({TAINT_ID})
        if name == "hash":
            return frozenset({TAINT_HASH})
        if name == "open":
            return frozenset({OPEN_HANDLE})
        if name in _PASSTHROUGH_BUILTINS:
            return self._union(module, arg_exprs, envs, depth) or CONST_SET
        if name == "derive_job_seed":
            return frozenset({SEED_DERIVED})
        if name in _PASSTHROUGH_NAMES:
            return self._union(module, arg_exprs, envs, depth) or CONST_SET
        if name in _RNG_CONSTRUCTORS:
            return self._union(module, arg_exprs, envs, depth) or CONST_SET
        target = self.model.resolve_callable(module, name)
        if target is not None:
            return self._substitute(module, target, node, envs, depth)
        return UNKNOWN_SET

    def _chain_call_origins(
        self, module: str, chain: str, node: ast.Call,
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Optional[Origins]:
        """Origins for an ``a.b.c(...)`` call, or None to fall back."""
        parts = chain.split(".")
        root, tail = parts[0], parts[-1]
        arg_exprs: List[ast.expr] = list(node.args) + [
            kw.value for kw in node.keywords
        ]
        for env in reversed(envs):
            if root in env:
                return None  # method call on a local value
        imported = self.model.graph.imported(module, root)
        ext = imported.module if imported is not None and not imported.internal \
            else None
        if ext == "time" and tail in _WALLCLOCK_ATTRS:
            return frozenset({TAINT_WALLCLOCK})
        if (ext == "datetime" or "datetime" in parts[:-1] or
                parts[-2:-1] == ["date"]) and tail in _DATETIME_ATTRS:
            return frozenset({TAINT_WALLCLOCK})
        if ext == "os" and tail == "urandom":
            return frozenset({TAINT_ENTROPY})
        if ext in ("uuid", "secrets") or root in ("uuid", "secrets"):
            return frozenset({TAINT_ENTROPY})
        if tail in _PASSTHROUGH_NAMES or tail in _RNG_CONSTRUCTORS:
            return self._union(module, arg_exprs, envs, depth) or CONST_SET
        if tail == "derive_job_seed":
            return frozenset({SEED_DERIVED})
        target = self.model.resolve_dotted_callable(module, chain)
        if target is not None:
            return self._substitute(module, target, node, envs, depth)
        return None

    def _substitute(
        self, module: str, func: FunctionInfo, node: ast.Call,
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Origins:
        """Bind the call's arguments into ``func``'s return summary."""
        summary = self.summary(func)
        bound = self._bind_arguments(module, func, node, envs, depth)
        out: Set[str] = set()
        for token in summary:
            if is_param(token):
                name = token[len(PARAM_PREFIX):]
                out |= bound.get(name, UNKNOWN_SET)
            else:
                out.add(token)
        return frozenset(out) or CONST_SET

    def _bind_arguments(
        self, module: str, func: FunctionInfo, node: ast.Call,
        envs: List[Dict[str, Origins]], depth: int,
    ) -> Dict[str, Origins]:
        bound: Dict[str, Origins] = {}
        params = [p for p in func.params]
        # Methods called as Class.method(...) or self.method(...): the
        # binding of `self`/`cls` is positional-shifted; drop it.
        if func.class_name is not None and params and params[0] in (
            "self", "cls"
        ):
            params = params[1:]
        for param, arg in zip(params, node.args):
            bound[param] = self.expr_origins(module, arg, envs, depth + 1)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in func.params:
                bound[kw.arg] = self.expr_origins(
                    module, kw.value, envs, depth + 1
                )
        # Parameters left unbound take their declared default's origins
        # (evaluated in the callee's module, empty scope).
        for param, default in func.defaults.items():
            if param not in bound:
                bound[param] = self.expr_origins(
                    func.module, default, [{}], depth + 1
                )
        return bound


def _target_names(target: ast.expr) -> List[str]:
    """Names bound by an assignment/loop target (nested tuples walked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


#: callback invoked for every Call expression, with the scope chain
#: in effect at that point in execution order
CallVisitor = Callable[[ast.Call, List[Dict[str, Origins]]], None]


class ScopeWalker:
    """Interprets a statement block, tracking name origins in order.

    Drives two consumers: :meth:`OriginEvaluator.summary` (collects
    ``returns``) and the deep rules (pass ``visit`` to observe every
    call expression with the environment at that program point —
    including inside nested functions and lambdas, whose parameters
    are pushed as an inner scope).
    """

    def __init__(
        self,
        evaluator: OriginEvaluator,
        module: str,
        visit: Optional[CallVisitor] = None,
        module_scope: bool = True,
    ) -> None:
        self.evaluator = evaluator
        self.module = module
        self.visit = visit
        #: whether the outermost env passed to :meth:`run` is module
        #: scope — a ``def`` there is a plain module function, not an
        #: unpicklable local one
        self.module_scope = module_scope
        self.returns: List[Origins] = []

    # -- entry points ------------------------------------------------------
    def run(
        self, body: List[ast.stmt], envs: List[Dict[str, Origins]]
    ) -> None:
        """Interpret ``body`` (mutating the innermost scope in place)."""
        for stmt in body:
            self._stmt(stmt, envs)

    def _bind(
        self, name: str, origins: Origins, envs: List[Dict[str, Origins]]
    ) -> None:
        """Record a name binding in the innermost scope.

        Module-level names are deliberately *not* tracked in the env:
        they resolve through the symbol table instead, which preserves
        the mutable/frozen classification (a ``CACHE = {}`` global must
        stay ``module-mutable``, not the empty dict's ``const``).
        """
        if self.module_scope and len(envs) == 1:
            return
        envs[-1][name] = origins

    # -- statements --------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, envs: List[Dict[str, Origins]]) -> None:
        ev = self.evaluator
        module = self.module
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self._expr(dec, envs)
            inner = {
                a.arg: frozenset({param_token(a.arg)})
                for a in (
                    *stmt.args.posonlyargs, *stmt.args.args,
                    *stmt.args.kwonlyargs,
                )
            }
            self.run(list(stmt.body), envs + [inner])
            if len(envs) > 1 or not self.module_scope:
                envs[-1][stmt.name] = frozenset({LOCAL_FUNCTION})
            return
        if isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self._expr(dec, envs)
            self.run(list(stmt.body), envs + [{}])
            self._bind(stmt.name, UNKNOWN_SET, envs)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, envs)
                self.returns.append(ev.expr_origins(module, stmt.value, envs))
            else:
                self.returns.append(CONST_SET)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, envs)
            origins = ev.expr_origins(module, stmt.value, envs)
            for target in stmt.targets:
                for name in _target_names(target):
                    self._bind(name, origins, envs)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, envs)
                origins = ev.expr_origins(module, stmt.value, envs)
                for name in _target_names(stmt.target):
                    self._bind(name, origins, envs)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, envs)
            added = ev.expr_origins(module, stmt.value, envs)
            for name in _target_names(stmt.target):
                previous = ev._name_origins(module, name, envs)
                self._bind(name, previous | added, envs)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, envs)
            iter_origins = ev.expr_origins(module, stmt.iter, envs)
            for name in _target_names(stmt.target):
                self._bind(name, iter_origins, envs)
            self.run(list(stmt.body), envs)
            self.run(list(stmt.orelse), envs)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, envs)
            self.run(list(stmt.body), envs)
            self.run(list(stmt.orelse), envs)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, envs)
            self.run(list(stmt.body), envs)
            self.run(list(stmt.orelse), envs)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, envs)
                if item.optional_vars is not None:
                    origins = ev.expr_origins(module, item.context_expr, envs)
                    for name in _target_names(item.optional_vars):
                        self._bind(name, origins, envs)
            self.run(list(stmt.body), envs)
            return
        if isinstance(stmt, ast.Try):
            self.run(list(stmt.body), envs)
            for handler in stmt.handlers:
                self.run(list(handler.body), envs)
            self.run(list(stmt.orelse), envs)
            self.run(list(stmt.finalbody), envs)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value, envs)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, envs)
            return
        # Import/Global/Nonlocal/Pass/Break/Continue: no value flow here.

    # -- expression traversal (for the visit hook) -------------------------
    def _expr(
        self, node: ast.expr, envs: List[Dict[str, Origins]]
    ) -> None:
        """Visit every Call under ``node`` with the current scope chain."""
        if self.visit is None:
            return
        if isinstance(node, ast.Call):
            self.visit(node, envs)
            self._expr(node.func, envs)
            for arg in node.args:
                self._expr(arg, envs)
            for kw in node.keywords:
                self._expr(kw.value, envs)
            return
        if isinstance(node, ast.Lambda):
            inner = {
                a.arg: frozenset({param_token(a.arg)})
                for a in (
                    *node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs,
                )
            }
            self._expr(node.body, envs + [inner])
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            comp_env = self.evaluator._comprehension_env(
                self.module, node.generators, envs, 0
            )
            scoped = envs + [comp_env]
            for gen in node.generators:
                self._expr(gen.iter, envs)
                for cond in gen.ifs:
                    self._expr(cond, scoped)
            if isinstance(node, ast.DictComp):
                self._expr(node.key, scoped)
                self._expr(node.value, scoped)
            else:
                self._expr(node.elt, scoped)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, envs)
