"""Module graph: discovery and import resolution over a source tree.

The first layer of the ZProve whole-program model. Every ``*.py`` file
under the analyzed roots becomes a :class:`ModuleInfo` (parsed AST plus
a content hash); import statements are resolved to *internal* modules
where the target lives inside the analyzed tree, giving a directed
module graph with forward edges (``imports``), reverse edges
(``dependents``), closures for cache fingerprinting, and cycle
detection (strongly connected components).

Resolution handles the shapes this repository uses — absolute
``import x`` / ``import x as y`` / ``from pkg.mod import name as
alias`` — plus relative imports for robustness. ``from pkg import sub``
is disambiguated against the analyzed tree: when ``pkg.sub`` is an
internal module the alias binds that module, otherwise it binds a
symbol of ``pkg``.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union


@dataclass(frozen=True)
class ImportedName:
    """One local alias bound by an import statement.

    ``symbol`` is None when the alias binds a module object itself
    (``import x``, ``from pkg import submodule``); otherwise the alias
    binds attribute ``symbol`` of ``module``. ``internal`` marks
    modules that are part of the analyzed tree.
    """

    module: str
    symbol: Optional[str]
    internal: bool
    lineno: int = 0


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package structure on disk.

    Walks up while parent directories contain ``__init__.py``, so
    ``src/repro/core/zcache.py`` -> ``repro.core.zcache`` regardless of
    which root the analysis was pointed at. A standalone file outside
    any package is its own single-segment module.
    """
    resolved = path.resolve()
    parts: List[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) or resolved.stem


class ModuleInfo:
    """One parsed module: source text, AST, and a content hash."""

    def __init__(self, name: str, path: Union[str, Path], text: str) -> None:
        self.name = name
        self.path = Path(path)
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self.content_hash = hashlib.sha256(text.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return f"ModuleInfo({self.name!r})"


def _discover_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    # Dedup while keeping a stable order.
    seen: Set[Path] = set()
    out: List[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            out.append(f)
    return out


class ModuleGraph:
    """The analyzed modules plus resolved import edges between them."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: module -> local alias -> what the alias is bound to
        self.import_table: Dict[str, Dict[str, ImportedName]] = {}
        #: forward edges: module -> internal modules it imports
        self.imports: Dict[str, Set[str]] = {name: set() for name in modules}
        #: reverse edges: module -> internal modules importing it
        self.dependents: Dict[str, Set[str]] = {name: set() for name in modules}
        #: modules whose source failed to parse (path -> error message)
        self.parse_errors: Dict[str, str] = {}
        for name, info in modules.items():
            self.import_table[name] = self._resolve_imports(name, info.tree)
        for name, table in self.import_table.items():
            for imported in table.values():
                if imported.internal and imported.module != name:
                    self.imports[name].add(imported.module)
                    self.dependents[imported.module].add(name)

    @classmethod
    def build(cls, paths: Iterable[Union[str, Path]]) -> "ModuleGraph":
        """Discover, parse, and link every ``*.py`` under ``paths``.

        Unparsable files are excluded from the model and recorded in
        :attr:`parse_errors` (the classic engine reports them as ZS000;
        the deep pass must not crash on them).
        """
        modules: Dict[str, ModuleInfo] = {}
        errors: Dict[str, str] = {}
        for f in _discover_files(paths):
            name = module_name_for(f)
            try:
                modules[name] = ModuleInfo(
                    name, f, f.read_text(encoding="utf-8")
                )
            except SyntaxError as exc:
                errors[str(f)] = f"syntax error: {exc.msg}"
        graph = cls(modules)
        graph.parse_errors = errors
        return graph

    # -- import resolution -------------------------------------------------
    def _package_of(self, module: str) -> str:
        """The package containing ``module`` (itself, if a package)."""
        info = self.modules.get(module)
        if info is not None and info.path.name == "__init__.py":
            return module
        return module.rsplit(".", 1)[0] if "." in module else ""

    def _relative_base(self, module: str, level: int) -> str:
        base = self._package_of(module)
        for _ in range(level - 1):
            base = base.rsplit(".", 1)[0] if "." in base else ""
        return base

    def _resolve_imports(
        self, module: str, tree: ast.Module
    ) -> Dict[str, ImportedName]:
        table: Dict[str, ImportedName] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    local = alias.asname or target.split(".")[0]
                    bound = target if alias.asname else target.split(".")[0]
                    table[local] = ImportedName(
                        module=bound,
                        symbol=None,
                        internal=bound in self.modules,
                        lineno=node.lineno,
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._relative_base(module, node.level)
                    source = f"{base}.{node.module}" if node.module else base
                else:
                    source = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    submodule = f"{source}.{alias.name}"
                    if submodule in self.modules:
                        table[local] = ImportedName(
                            module=submodule,
                            symbol=None,
                            internal=True,
                            lineno=node.lineno,
                        )
                    else:
                        table[local] = ImportedName(
                            module=source,
                            symbol=alias.name,
                            internal=source in self.modules,
                            lineno=node.lineno,
                        )
        return table

    def imported(self, module: str, local_name: str) -> Optional[ImportedName]:
        """What ``local_name`` is bound to in ``module`` by imports."""
        return self.import_table.get(module, {}).get(local_name)

    # -- closures ----------------------------------------------------------
    def _closure(
        self, roots: Iterable[str], edges: Dict[str, Set[str]]
    ) -> Set[str]:
        seen: Set[str] = set()
        stack = [r for r in roots if r in edges]
        while stack:
            mod = stack.pop()
            if mod in seen:
                continue
            seen.add(mod)
            stack.extend(edges.get(mod, ()))
        return seen

    def import_closure(self, module: str) -> Set[str]:
        """``module`` plus everything it transitively imports."""
        return self._closure([module], self.imports)

    def dependent_closure(self, module: str) -> Set[str]:
        """``module`` plus everything transitively importing it."""
        return self._closure([module], self.dependents)

    def fingerprint(self, module: str) -> str:
        """Content hash over ``module``'s import closure.

        Stable iff neither the module nor anything it (transitively)
        imports changed — the incremental-cache key: a module whose
        fingerprint matches needs no re-analysis, and a changed
        dependency invalidates every dependent's fingerprint.
        """
        digest = hashlib.sha256()
        for name in sorted(self.import_closure(module)):
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(self.modules[name].content_hash.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    # -- cycles ------------------------------------------------------------
    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one module.

        Iterative Tarjan, deterministic order (sorted roots and edges).
        Import cycles are legal Python but a maintenance smell; the
        model surfaces them for tests and future rules.
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.imports[root])))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for succ in edges:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.imports[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for name in sorted(self.modules):
            if name not in index:
                strongconnect(name)
        return sccs

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: str) -> bool:
        return name in self.modules
