"""Exhaustive bounded model checking over tiny cache geometries.

The third ZSpec backend: where the sanitizer checks the registry
invariants along *one* concrete run and the deep rules check them
statically, the model checker enumerates **every** access sequence up
to a configured depth over deliberately tiny geometries (a 2-way
zcache with 2 lines per way has 4 blocks — small enough that a few
addresses exercise every fill/evict/relocate interleaving) and checks:

- every ``state``-scope registry invariant after every transition;
- reference ↔ turbo bit-identity (results, statistics, and full array
  state) when the configuration has a turbo twin — the exhaustive dual
  of ``scripts/diff_engines.py``'s sampled differential runs;
- that no transition raises (an :class:`InvariantViolation` from a
  sanitized reference array surfaces here with the exact access
  sequence that produced it).

States are memoized under a canonical form (line contents, policy
recency order, dirty set, and the turbo twin's dense mirrors) so the
search visits each distinct state once per remaining depth; the
counterexample for any violation is the concrete op sequence, directly
replayable in a debugger.

ROADMAP item 5 (fault injection) can reuse the harness unchanged:
plant a fault in a scratch module, point a
:class:`ModelConfig` builder at it, and the checker either proves the
bounded state space clean or returns the minimal-depth access sequence
reaching corruption — see ``tests/analysis/test_modelcheck.py``'s
planted commit-order bug for the pattern.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import SanitizedArray
from repro.analysis.spec import SCOPE_STATE, StateCheck, invariants_for
from repro.core.base import CacheArray
from repro.core.controller import Cache
from repro.core.setassoc import SetAssociativeArray
from repro.core.twophase import TwoPhaseZCache
from repro.core.zcache import ZCacheArray
from repro.replacement.lru import LRU

#: an op is ("r" | "w" | "inv", address)
Op = Tuple[str, int]

_STATE_INVARIANTS = invariants_for(SCOPE_STATE)

#: stop collecting counterexamples per config beyond this many
_MAX_VIOLATIONS = 8


@dataclass(frozen=True)
class ModelConfig:
    """One machine to check: builders plus the op alphabet.

    ``build_reference`` must return a reference-engine cache (its array
    may be wrapped in a :class:`SanitizedArray`); ``build_turbo``, when
    set, must return the *same* machine with ``engine="turbo"`` — the
    checker asserts the turbo kernel actually engaged rather than
    silently falling back to reference.
    """

    name: str
    description: str
    addresses: Tuple[int, ...]
    build_reference: Callable[[], Cache]
    build_turbo: Optional[Callable[[], Cache]] = None
    #: subset of ``addresses`` also exercised as writes / invalidates —
    #: kept small deliberately: every op multiplies the branch factor,
    #: and a couple of dirty-able addresses already reach every
    #: dirty-set/writeback interaction on a 4-block array
    write_addresses: Tuple[int, ...] = ()
    invalidate_addresses: Tuple[int, ...] = ()

    def ops(self) -> Tuple[Op, ...]:
        """The op alphabet: one transition per (kind, address)."""
        out: List[Op] = [("r", a) for a in self.addresses]
        out.extend(("w", a) for a in self.write_addresses)
        out.extend(("inv", a) for a in self.invalidate_addresses)
        return tuple(out)


@dataclass
class ModelViolation:
    """One counterexample: a config, an op sequence, and what broke."""

    config: str
    sequence: Tuple[str, ...]
    message: str

    def render(self) -> str:
        """One-line report: config, replayable op trail, failure."""
        trail = " ".join(self.sequence)
        return f"{self.config}: [{trail}] {self.message}"


@dataclass
class ConfigResult:
    """Exploration summary for one :class:`ModelConfig`."""

    config: str
    depth: int
    states: int = 0
    transitions: int = 0
    violations: List[ModelViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ModelCheckResult:
    """All per-config results from one :func:`run_model_check`."""

    depth: int
    results: List[ConfigResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def violations(self) -> List[ModelViolation]:
        """Every counterexample across all configs, in config order."""
        return [v for r in self.results for v in r.violations]

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else f"{len(r.violations)} violation(s)"
            lines.append(
                f"model {r.config}: depth {r.depth}, {r.states} state(s), "
                f"{r.transitions} transition(s) — {status}"
            )
            for v in r.violations:
                lines.append(f"  {v.render()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# canonical state
# ---------------------------------------------------------------------------


def _bare(array: object) -> CacheArray:
    """Unwrap a SanitizedArray (or return the array itself)."""
    if isinstance(array, SanitizedArray):
        return array.array
    assert isinstance(array, CacheArray)
    return array


def _policy_canon(cache: Cache) -> Optional[Tuple[int, ...]]:
    """Recency/insertion order of the reference policy, if stamp-based.

    LRU/FIFO keep a ``_stamp`` dict whose iteration order *is* the
    eviction order; the absolute stamp values grow without bound and
    must not enter the canonical form.
    """
    stamp = getattr(cache.policy, "_stamp", None)
    if isinstance(stamp, dict):
        return tuple(stamp)
    return None


def _turbo_canon(cache: Cache) -> Optional[tuple]:
    """Canonical form of the turbo core's dense mirrors, if engaged."""
    turbo = cache._turbo
    if turbo is None:
        return None
    tags = tuple(int(t) for t in turbo.tags)
    stamp = getattr(turbo.pk, "stamp", None)
    order: Optional[Tuple[int, ...]] = None
    if stamp is not None:
        occupied = [slot for slot, tag in enumerate(tags) if tag >= 0]
        order = tuple(sorted(occupied, key=lambda s: int(stamp[s])))
    return (tags, order)


def _cache_canon(cache: Cache) -> tuple:
    """Full canonical state of one cache (reference or turbo)."""
    array = _bare(cache.array)
    lines = tuple(tuple(way) for way in array._lines)
    return (
        lines,
        _policy_canon(cache),
        frozenset(cache._dirty),
        _turbo_canon(cache),
    )


# ---------------------------------------------------------------------------
# transition checking
# ---------------------------------------------------------------------------


def _op_label(op: Op) -> str:
    kind, addr = op
    return f"{kind}:{addr:#x}"


def _apply(cache: Cache, op: Op) -> object:
    kind, addr = op
    if kind == "inv":
        return cache.invalidate(addr)
    return cache.access(addr, is_write=(kind == "w"))


def _state_detail(array: CacheArray) -> Optional[str]:
    """First failing ``state``-scope invariant, rendered, or None."""
    ctx = StateCheck(array)
    for inv in _STATE_INVARIANTS:
        detail = inv.check(ctx)
        if detail is not None:
            return f"[{inv.kind}] {detail} (invariant: {inv.name})"
    return None


def _step(
    cfg: ModelConfig, ref: Cache, turbo: Optional[Cache], op: Op
) -> Optional[str]:
    """Apply ``op`` to both twins; return a violation message or None."""
    try:
        ref_out = _apply(ref, op)
    except Exception:
        tail = traceback.format_exc(limit=1).strip().splitlines()[-1]
        return f"reference engine raised: {tail}"
    detail = _state_detail(_bare(ref.array))
    if detail is not None:
        return f"reference state invariant failed: {detail}"
    if turbo is None:
        return None
    try:
        turbo_out = _apply(turbo, op)
    except Exception:
        tail = traceback.format_exc(limit=1).strip().splitlines()[-1]
        return f"turbo engine raised: {tail}"
    detail = _state_detail(_bare(turbo.array))
    if detail is not None:
        return f"turbo state invariant failed: {detail}"
    if ref_out != turbo_out:
        return f"result divergence: reference={ref_out!r} turbo={turbo_out!r}"
    ref_stats = ref.stats.as_dict()
    turbo_stats = turbo.stats.as_dict()
    if ref_stats != turbo_stats:
        diff = {
            k: (ref_stats[k], turbo_stats.get(k))
            for k in ref_stats
            if ref_stats[k] != turbo_stats.get(k)
        }
        return f"statistics divergence: {diff}"
    ref_array, turbo_array = _bare(ref.array), _bare(turbo.array)
    if ref_array._lines != turbo_array._lines:
        return (
            f"array divergence: reference lines {ref_array._lines} != "
            f"turbo lines {turbo_array._lines}"
        )
    if ref_array._pos != turbo_array._pos:
        return "position-map divergence between engines"
    return None


# ---------------------------------------------------------------------------
# exhaustive search
# ---------------------------------------------------------------------------


def _explore(cfg: ModelConfig, depth: int, result: ConfigResult) -> None:
    ops = cfg.ops()
    memo: Dict[tuple, int] = {}

    ref = cfg.build_reference()
    turbo: Optional[Cache] = None
    if cfg.build_turbo is not None:
        turbo = cfg.build_turbo()
        if turbo.engine != "turbo":
            raise ValueError(
                f"config {cfg.name!r}: build_turbo produced a cache whose "
                f"turbo kernel declined (engine={turbo.engine!r})"
            )

    def walk(
        ref: Cache, turbo: Optional[Cache], remaining: int, trail: Tuple[str, ...]
    ) -> None:
        canon = (_cache_canon(ref), None if turbo is None else _cache_canon(turbo))
        if memo.get(canon, -1) >= remaining:
            return
        if canon not in memo:
            result.states += 1
        memo[canon] = remaining
        if remaining == 0 or len(result.violations) >= _MAX_VIOLATIONS:
            return
        # One dump per expanded node, one load per branch: measurably
        # cheaper than deepcopy-per-branch, and the snapshot cost is
        # what dominates the whole search.
        blob = pickle.dumps((ref, turbo), protocol=pickle.HIGHEST_PROTOCOL)
        for op in ops:
            branch_ref, branch_turbo = pickle.loads(blob)
            result.transitions += 1
            message = _step(cfg, branch_ref, branch_turbo, op)
            next_trail = trail + (_op_label(op),)
            if message is not None:
                result.violations.append(
                    ModelViolation(
                        config=cfg.name, sequence=next_trail, message=message
                    )
                )
                if len(result.violations) >= _MAX_VIOLATIONS:
                    return
                continue
            walk(branch_ref, branch_turbo, remaining - 1, next_trail)

    walk(ref, turbo, depth, ())


# ---------------------------------------------------------------------------
# default configurations
# ---------------------------------------------------------------------------


def _tiny_zcache(engine: str, sanitized: bool) -> Cache:
    array: CacheArray = ZCacheArray(2, 2, levels=2, hash_kind="h3", hash_seed=7)
    if sanitized:
        array = SanitizedArray(array, deep_check_interval=1)
    return Cache(array, LRU(), name="model-z", engine=engine)


def _tiny_setassoc(engine: str, sanitized: bool) -> Cache:
    array: CacheArray = SetAssociativeArray(2, 2, hash_kind="bitsel")
    if sanitized:
        array = SanitizedArray(array, deep_check_interval=1)
    return Cache(array, LRU(), name="model-sa", engine=engine)


def _tiny_twophase() -> Cache:
    # hash_seed=11 chosen empirically: its collision pattern produces
    # phase-2 wins (the interesting two-phase commit path) within
    # depth 6 on this geometry; most seeds never reach that path.
    cache = TwoPhaseZCache(
        ZCacheArray(2, 2, levels=2, hash_kind="h3", hash_seed=11),
        LRU(),
        name="model-2p",
    )
    # The constructor type-checks for a bare ZCacheArray, so the
    # sanitizer wraps afterwards; the controller reads ``self.array``
    # on every operation and sees the wrapper from then on.
    cache.array = SanitizedArray(cache.array, deep_check_interval=1)
    return cache


def default_configs() -> Tuple[ModelConfig, ...]:
    """The CI gate's geometries: two engine-lockstep, one two-phase."""
    return (
        ModelConfig(
            name="zcache-2w2l-lru",
            description=(
                "2-way/2-line zcache, LRU: sanitized reference vs turbo "
                "ZWalk kernel in lockstep"
            ),
            addresses=(1, 2, 3, 4, 5),
            build_reference=lambda: _tiny_zcache("reference", sanitized=True),
            build_turbo=lambda: _tiny_zcache("turbo", sanitized=False),
            write_addresses=(1, 2),
        ),
        ModelConfig(
            name="setassoc-2w2s-lru",
            description=(
                "2-way/2-set set-associative, LRU: sanitized reference vs "
                "turbo SetWalk kernel in lockstep"
            ),
            addresses=(1, 2, 3, 4),
            build_reference=lambda: _tiny_setassoc("reference", sanitized=True),
            build_turbo=lambda: _tiny_setassoc("turbo", sanitized=False),
            write_addresses=(1, 2),
            invalidate_addresses=(3,),
        ),
        ModelConfig(
            name="twophase-2w2l-lru",
            description=(
                "2-way/2-line two-phase zcache, LRU: sanitized reference "
                "(phase-scope invariants active on every commit attempt)"
            ),
            addresses=(1, 2, 3, 4, 5),
            build_reference=_tiny_twophase,
        ),
    )


def run_model_check(
    depth: int = 6, configs: Optional[Tuple[ModelConfig, ...]] = None
) -> ModelCheckResult:
    """Exhaustively check every config to ``depth`` accesses."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    result = ModelCheckResult(depth=depth)
    for cfg in configs if configs is not None else default_configs():
        cfg_result = ConfigResult(config=cfg.name, depth=depth)
        _explore(cfg, depth, cfg_result)
        result.results.append(cfg_result)
    return result


__all__ = [
    "ConfigResult",
    "ModelCheckResult",
    "ModelConfig",
    "ModelViolation",
    "Op",
    "default_configs",
    "run_model_check",
]
