"""Mechanical fixes for a safe subset of ZSan findings (``lint --fix``).

Two rules have fixes that are provably behavior-preserving at the
source level and are therefore automated:

- **ZS004** — insert ``slots=True`` into a ``@dataclass`` decoration
  that lacks it (``@dataclass`` -> ``@dataclass(slots=True)``,
  ``@dataclass(frozen=True)`` -> ``@dataclass(frozen=True,
  slots=True)``);
- **ZS001** (import form) — rewrite ``from random import <global RNG
  helpers>`` to ``from random import Random``, keeping any already-safe
  names. Call sites of the removed helpers then surface as ordinary
  ZS001 findings to be reseeded by hand — the fixer never guesses what
  seed a call should use.

Fixes are computed from the AST but applied as minimal text edits, so
untouched formatting and comments survive byte-for-byte. Findings
suppressed with ``# zsan: ignore[...]`` are honoured: a suppressed
site is left alone. Fixing is idempotent — a second pass finds
nothing to change.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.lint.engine import LintSource
from repro.analysis.lint.rules import DataclassSlots, UnseededRandomness

#: codes ``--fix`` knows how to repair
FIXABLE_CODES = frozenset({"ZS001", "ZS004"})


@dataclass(slots=True)
class FixResult:
    """Outcome of fixing one file."""

    path: str
    fixes: int = 0
    codes: Set[str] = field(default_factory=set)
    new_text: Optional[str] = None  #: None when nothing changed

    @property
    def changed(self) -> bool:
        return self.new_text is not None


#: one text edit: absolute (start, end) offsets and the replacement
_Edit = Tuple[int, int, str, str]


def _offset(text: str, line: int, col: int) -> int:
    """Absolute offset of 1-based ``line`` / 0-based ``col``."""
    pos = 0
    for _ in range(line - 1):
        pos = text.index("\n", pos) + 1
    return pos + col


def _dataclass_edits(src: LintSource) -> List[_Edit]:
    """``slots=True`` insertions for ZS004 sites (minus suppressed)."""
    edits: List[_Edit] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if src.suppressed("ZS004", node.lineno):
            continue
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            parts: List[str] = []
            t: ast.AST = target
            while isinstance(t, ast.Attribute):
                parts.append(t.attr)
                t = t.value
            if isinstance(t, ast.Name):
                parts.append(t.id)
            name = ".".join(reversed(parts))
            if not name or name.split(".")[-1] != "dataclass":
                continue
            if isinstance(dec, ast.Call):
                if any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                ):
                    continue
                close = _offset(
                    src.text, dec.end_lineno or dec.lineno,
                    (dec.end_col_offset or 1) - 1,
                )
                before = src.text[:close].rstrip()
                if before.endswith(("(", ",")):
                    insert = "slots=True"
                else:
                    insert = ", slots=True"
                edits.append((close, close, insert, "ZS004"))
            else:
                end = _offset(
                    src.text, dec.end_lineno or dec.lineno,
                    dec.end_col_offset or 0,
                )
                edits.append((end, end, "(slots=True)", "ZS004"))
    return edits


def _random_import_edits(src: LintSource) -> List[_Edit]:
    """Rewrites of unsafe ``from random import ...`` statements."""
    safe = UnseededRandomness._SAFE_FROM_RANDOM
    edits: List[_Edit] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.module != "random" or node.level != 0:
            continue
        if src.suppressed("ZS001", node.lineno):
            continue
        unsafe = [a for a in node.names if a.name not in safe]
        if not unsafe:
            continue
        kept: List[str] = []
        names_present: Set[str] = set()
        for alias in node.names:
            if alias.name in safe:
                rendered = (
                    f"{alias.name} as {alias.asname}"
                    if alias.asname
                    else alias.name
                )
                kept.append(rendered)
                names_present.add(alias.name)
        if "Random" not in names_present:
            kept.insert(0, "Random")
        start = _offset(src.text, node.lineno, node.col_offset)
        end = _offset(
            src.text, node.end_lineno or node.lineno,
            node.end_col_offset or 0,
        )
        edits.append(
            (start, end, f"from random import {', '.join(kept)}", "ZS001")
        )
    return edits


def fix_text(
    text: str, path: Union[str, Path] = "<string>"
) -> Tuple[str, FixResult]:
    """Apply every automatic fix to ``text``; returns (new text, result).

    Unparsable sources are returned untouched — ``--fix`` never edits
    a file it cannot read structurally.
    """
    result = FixResult(path=str(path))
    try:
        src = LintSource(path, text)
    except SyntaxError:
        return text, result
    edits: List[_Edit] = []
    p = Path(path)
    if DataclassSlots.applies_to(p):
        edits.extend(_dataclass_edits(src))
    edits.extend(_random_import_edits(src))
    if not edits:
        return text, result
    new_text = text
    for start, end, replacement, code in sorted(edits, reverse=True):
        new_text = new_text[:start] + replacement + new_text[end:]
        result.fixes += 1
        result.codes.add(code)
    result.new_text = new_text
    return new_text, result


def fix_paths(paths: Iterable[Union[str, Path]]) -> List[FixResult]:
    """Fix every ``*.py`` under ``paths`` in place; report per file.

    Only files that actually change are rewritten (and reported).
    """
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    results: List[FixResult] = []
    for f in files:
        original = f.read_text(encoding="utf-8")
        new_text, result = fix_text(original, f)
        if result.changed and new_text != original:
            f.write_text(new_text, encoding="utf-8")
            results.append(result)
    return results
