"""ZSan: the repository's AST lint layer.

Public surface: the engine (:class:`LintEngine`, :class:`Finding`,
:class:`LintReport`), the rule framework (:class:`LintRule`,
:func:`register_rule`), and the registered repository rules (imported
for their registration side effect). See ``docs/lint_rules.md`` for the
rule catalogue and ``zcache-repro lint --rules`` for a live listing.
"""

from repro.analysis.lint.autofix import (
    FIXABLE_CODES,
    FixResult,
    fix_paths,
    fix_text,
)
from repro.analysis.lint.engine import (
    ALL_CODES,
    PARSE_ERROR_CODE,
    RULE_REGISTRY,
    Finding,
    LintEngine,
    LintReport,
    LintRule,
    LintSource,
    default_rules,
    register_rule,
)
from repro.analysis.lint.rules import (
    DataclassSlots,
    FloatEquality,
    PolicyContract,
    UnseededRandomness,
    WallClockGlobalState,
)

__all__ = [
    "ALL_CODES",
    "FIXABLE_CODES",
    "FixResult",
    "fix_paths",
    "fix_text",
    "PARSE_ERROR_CODE",
    "RULE_REGISTRY",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRule",
    "LintSource",
    "default_rules",
    "register_rule",
    "UnseededRandomness",
    "FloatEquality",
    "PolicyContract",
    "DataclassSlots",
    "WallClockGlobalState",
]
