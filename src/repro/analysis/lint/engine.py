"""The ZSan lint engine: an AST rule framework for this repository.

The simulator's correctness rests on conventions no general-purpose
linter knows about — all randomness must flow through injected seeded
``random.Random`` instances, statistics code must not compare floats
with ``==``, replacement policies must honour the
:class:`~repro.replacement.base.ReplacementPolicy` contract, and hot
``core/`` dataclasses must declare ``slots=True``. This module provides
the machinery; :mod:`repro.analysis.lint.rules` provides the repository
rules (codes ``ZS001``–``ZS006``, catalogued in ``docs/lint_rules.md``).

Design:

- :class:`LintRule` subclasses declare a ``code``/``name``/``summary``
  and implement :meth:`LintRule.check` over a parsed
  :class:`LintSource`. Registration is a decorator
  (:func:`register_rule`) feeding a module-level registry, so adding a
  rule is a single self-contained class.
- Suppression is per line: a ``# zsan: ignore[ZS001]`` (or bare
  ``# zsan: ignore``) comment on the flagged line silences it.
- Output is human-readable (``path:line:col: CODE message``) or JSON
  (``--format json``) for CI consumption.

Unparsable files are reported as code ``ZS000`` rather than crashing
the run, so one syntax error cannot hide findings elsewhere.
"""

from __future__ import annotations

import abc
import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Optional, Sequence, Union

#: Code reserved for files the engine could not parse.
PARSE_ERROR_CODE = "ZS000"

_SUPPRESS_RE = re.compile(
    r"#\s*zsan:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)
_CODE_RE = re.compile(r"^ZS\d{3}$")

#: Sentinel stored for a bare ``# zsan: ignore`` (suppresses every code).
ALL_CODES = frozenset({"*"})


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint violation: a rule code anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stable key order)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line span ``(start, end)`` of every statement in ``tree``.

    Simple statements span every physical line they occupy (including
    backslash continuations and multi-line call expressions, via
    ``end_lineno``). Compound statements (``if``/``for``/``def``/...)
    contribute only their *header* — from the keyword (or the first
    decorator) to the line before their first body statement — so a
    suppression inside a function body never silences findings on other
    statements of that function.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            for dec in getattr(node, "decorator_list", None) or []:
                start = min(start, dec.lineno)
            end = max(node.lineno, body[0].lineno - 1)
        else:
            end = node.end_lineno or node.lineno
        spans.append((start, end))
    return spans


def _line_span_index(tree: ast.Module) -> dict[int, tuple[int, int]]:
    """Map each source line to the innermost statement span covering it."""
    index: dict[int, tuple[int, int]] = {}
    # Wider spans first, so nested (narrower) spans overwrite them.
    for start, end in sorted(
        _statement_spans(tree), key=lambda s: s[0] - s[1]
    ):
        for line in range(start, end + 1):
            index[line] = (start, end)
    return index


def _collect_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of suppressed codes (``ALL_CODES`` = all).

    A plain per-line regex scan: comments inside string literals can
    theoretically match, but a false *suppression* is benign and the
    simplicity keeps the engine dependency-free.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        raw = m.group("codes")
        if raw is None:
            out[lineno] = ALL_CODES
        else:
            codes = frozenset(
                c.strip().upper() for c in raw.split(",") if c.strip()
            )
            out[lineno] = codes or ALL_CODES
    return out


class LintSource:
    """A parsed Python file handed to each rule.

    Attributes
    ----------
    path:
        File path (used by :meth:`LintRule.applies_to` scoping and in
        findings).
    text:
        Raw source text.
    tree:
        The parsed ``ast.Module``.
    """

    def __init__(self, path: Union[str, Path], text: str) -> None:
        self.path = Path(path)
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self._suppressions = _collect_suppressions(text)
        self._line_spans = _line_span_index(self.tree)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "LintSource":
        """Parse ``path`` from disk (UTF-8)."""
        p = Path(path)
        return cls(p, p.read_text(encoding="utf-8"))

    def statement_span(self, line: int) -> tuple[int, int]:
        """Full line span of the innermost statement covering ``line``."""
        return self._line_spans.get(line, (line, line))

    def suppressed(self, code: str, line: int) -> bool:
        """True if ``code`` is suppressed on ``line`` by a zsan comment.

        The lookup covers the whole physical span of the statement the
        finding is anchored in, so a ``# zsan: ignore[...]`` works on
        backslash-continued lines and anywhere inside a multi-line call
        expression — not only on the exact flagged line.
        """
        start, end = self.statement_span(line)
        for lineno in range(start, end + 1):
            codes = self._suppressions.get(lineno)
            if codes is not None and (codes is ALL_CODES or code in codes):
                return True
        return False


class LintRule(abc.ABC):
    """Base class for ZSan rules.

    Subclasses set the class attributes and implement :meth:`check`;
    they are registered with the :func:`register_rule` decorator.
    """

    #: Unique rule code, ``ZSnnn``.
    code: ClassVar[str] = ""
    #: Short kebab-case identifier (shown in ``lint --rules``).
    name: ClassVar[str] = ""
    #: One-line description of what the rule enforces.
    summary: ClassVar[str] = ""

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        """Whether this rule runs on ``path`` (default: every file)."""
        return True

    @abc.abstractmethod
    def check(self, src: LintSource) -> Iterator[Finding]:
        """Yield every violation of this rule in ``src``."""

    def finding(self, src: LintSource, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            code=self.code,
            message=message,
            path=str(src.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


#: code -> rule class, populated by :func:`register_rule`.
RULE_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`.

    Validates the code format (``ZSnnn``) and rejects duplicates, so a
    bad rule module fails at import time rather than silently shadowing
    another rule.
    """
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code {cls.code!r} does not match ZSnnn")
    if cls.code == PARSE_ERROR_CODE:
        raise ValueError(f"{PARSE_ERROR_CODE} is reserved for parse errors")
    existing = RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule code {cls.code}: {existing.__name__} and "
            f"{cls.__name__}"
        )
    RULE_REGISTRY[cls.code] = cls
    return cls


def default_rules() -> list[LintRule]:
    """One instance of every registered rule (imports the rule module)."""
    from repro.analysis.lint import rules as _rules  # noqa: F401  (registers)

    return [cls() for _, cls in sorted(RULE_REGISTRY.items())]


@dataclass(slots=True)
class LintReport:
    """The outcome of linting a set of paths."""

    findings: list[Finding]
    files_checked: int

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding (parse errors included)."""
        return 1 if self.findings else 0

    def codes(self) -> set[str]:
        """The distinct rule codes present in the findings."""
        return {f.code for f in self.findings}

    def render_text(self) -> str:
        """Human-readable report (one line per finding plus a summary)."""
        lines = [f.render() for f in self.findings]
        noun = "file" if self.files_checked == 1 else "files"
        if self.findings:
            lines.append(
                f"zsan: {len(self.findings)} finding(s) in "
                f"{self.files_checked} {noun}"
            )
        else:
            lines.append(f"zsan: clean ({self.files_checked} {noun})")
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON report: ``{files_checked, findings: [...]}``."""
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=1,
        )


def _sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.column, f.code)


class LintEngine:
    """Runs a set of rules over files and directories.

    Parameters
    ----------
    rules:
        Rule instances to run; default = every registered rule.
    select:
        If given, only these codes run.
    ignore:
        Codes to skip (applied after ``select``).
    """

    def __init__(
        self,
        rules: Optional[Sequence[LintRule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        pool = list(rules) if rules is not None else default_rules()
        if select is not None:
            wanted = {c.upper() for c in select}
            unknown = wanted - {r.code for r in pool}
            if unknown:
                raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
            pool = [r for r in pool if r.code in wanted]
        if ignore is not None:
            dropped = {c.upper() for c in ignore}
            pool = [r for r in pool if r.code not in dropped]
        self.rules = pool

    def lint_text(
        self, text: str, path: Union[str, Path] = "<string>"
    ) -> list[Finding]:
        """Lint a source string as if it lived at ``path``."""
        try:
            src = LintSource(path, text)
        except SyntaxError as exc:
            return [
                Finding(
                    code=PARSE_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                    path=str(path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                )
            ]
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(src.path):
                continue
            for f in rule.check(src):
                if not src.suppressed(f.code, f.line):
                    findings.append(f)
        findings.sort(key=_sort_key)
        return findings

    def lint_file(self, path: Union[str, Path]) -> list[Finding]:
        """Lint one file from disk."""
        p = Path(path)
        return self.lint_text(p.read_text(encoding="utf-8"), p)

    def lint_paths(self, paths: Iterable[Union[str, Path]]) -> LintReport:
        """Lint files and directories (directories recurse over ``*.py``)."""
        files: list[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
        findings: list[Finding] = []
        for f in files:
            findings.extend(self.lint_file(f))
        findings.sort(key=_sort_key)
        return LintReport(findings=findings, files_checked=len(files))
