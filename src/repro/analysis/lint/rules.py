"""The repository rule set, codes ZS001–ZS006.

Each rule encodes one of the simulator's correctness conventions; the
rationale for every code lives in ``docs/lint_rules.md``. Rules are
pure AST checks — no imports of the checked code are performed, so the
linter can run on broken trees and fixtures safely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.lint.engine import (
    Finding,
    LintRule,
    LintSource,
    register_rule,
)


def _dotted(node: ast.AST) -> Optional[str]:
    """Resolve an attribute chain to ``root.attr.attr`` or None.

    ``np.random.rand`` -> ``"np.random.rand"``; anything rooted in a
    call or subscript resolves to None (not a plain module reference).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``module`` by ``import`` statements."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    names.add(alias.asname or module.split(".")[0])
    return names


@register_rule
class UnseededRandomness(LintRule):
    """ZS001: all randomness must flow through a seeded ``random.Random``.

    The determinism contract (``tests/test_determinism.py``) requires
    every simulation to be bit-reproducible from explicit seeds. Calls
    into the process-global RNG — ``random.random()``,
    ``random.choice()``, ``random.seed()``, ``numpy.random.rand()`` and
    friends — or an *unseeded* ``random.Random()`` break that contract
    silently: results drift between runs with no error.
    """

    code = "ZS001"
    name = "unseeded-randomness"
    summary = "randomness must come from an injected, seeded random.Random"

    #: names importable from ``random`` without tripping the rule
    _SAFE_FROM_RANDOM = frozenset({"Random", "SystemRandom"})
    #: bit-generator classes: deterministic when (and only when) seeded,
    #: so they get the same treatment as ``default_rng``
    _NP_BIT_GENERATORS = frozenset({"MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64"})
    #: numpy.random attributes that are seedable-by-construction
    _SAFE_FROM_NP_RANDOM = (
        frozenset({"Generator", "SeedSequence", "default_rng"}) | _NP_BIT_GENERATORS
    )

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag global-RNG imports and calls in ``src``."""
        tree = src.tree
        random_names = _import_aliases(tree, "random")
        numpy_names = _import_aliases(tree, "numpy")

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(src, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(src, node, random_names, numpy_names)

    def _check_import_from(
        self, src: LintSource, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in self._SAFE_FROM_RANDOM:
                    yield self.finding(
                        src,
                        node,
                        f"'from random import {alias.name}' binds the "
                        "process-global RNG; import random.Random and seed it",
                    )
        elif node.module in ("numpy.random", "numpy"):
            for alias in node.names:
                if node.module == "numpy" and alias.name != "random":
                    continue
                if (
                    node.module == "numpy.random"
                    and alias.name in self._SAFE_FROM_NP_RANDOM
                ):
                    continue
                yield self.finding(
                    src,
                    node,
                    "importing numpy's global random state; use "
                    "numpy.random.default_rng(seed) and pass the generator",
                )

    def _check_call(
        self,
        src: LintSource,
        node: ast.Call,
        random_names: set[str],
        numpy_names: set[str],
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        root, tail = parts[0], parts[-1]
        if root in random_names and len(parts) == 2:
            if tail == "SystemRandom":
                return
            if tail == "Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        src,
                        node,
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
                return
            yield self.finding(
                src,
                node,
                f"random.{tail}() uses the process-global RNG; thread a "
                "seeded random.Random through instead",
            )
        elif root in numpy_names and len(parts) >= 3 and parts[1] == "random":
            if tail in ("Generator", "SeedSequence"):
                return
            if tail == "default_rng" or tail in self._NP_BIT_GENERATORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        src,
                        node,
                        f"numpy.random.{tail}() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
                return
            yield self.finding(
                src,
                node,
                f"numpy.random.{tail}() uses numpy's global RNG; use a "
                "seeded default_rng(seed) generator",
            )


def _is_float_literal(node: ast.AST) -> bool:
    """True for ``1.5`` and ``-1.5`` (unary minus of a float constant)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class FloatEquality(LintRule):
    """ZS002: no ``==`` / ``!=`` against float literals.

    The statistics and associativity pipelines accumulate floating
    point; exact comparison against a float literal is almost always a
    latent bug (``0.1 + 0.2 != 0.3``). Use ``math.isclose`` or an
    explicit tolerance. Intentional sentinel comparisons can be
    suppressed with ``# zsan: ignore[ZS002]``.
    """

    code = "ZS002"
    name = "float-equality"
    summary = "compare floats with math.isclose or a tolerance, not ==/!="

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag ``==``/``!=`` comparisons with a float-literal operand."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for (left, right), op in zip(
                zip(operands, operands[1:]), node.ops
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        src,
                        node,
                        f"float literal compared with '{sym}'; use "
                        "math.isclose or an explicit tolerance",
                    )
                    break


@register_rule
class PolicyContract(LintRule):
    """ZS003: ``ReplacementPolicy`` subclasses must honour the contract.

    Direct subclasses must override the four abstract hooks
    (``on_insert``/``on_access``/``on_evict``/``score``), and no policy
    method may mutate a ``candidates`` parameter — the controller owns
    the candidate list and hands the same sequence to instrumentation
    wrappers; a policy that sorts or pops it corrupts the measurement
    path.
    """

    code = "ZS003"
    name = "policy-contract"
    summary = "policies override the abstract hooks and never mutate candidates"

    REQUIRED_HOOKS = ("on_insert", "on_access", "on_evict", "score")
    _MUTATORS = frozenset(
        {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
    )

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag contract violations on every policy class in ``src``."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b for b in (_dotted(base) for base in node.bases) if b}
            tails = {b.split(".")[-1] for b in bases}
            if "ReplacementPolicy" not in tails:
                continue
            yield from self._check_hooks(src, node)
            yield from self._check_mutation(src, node)

    @staticmethod
    def _is_abstract(node: ast.ClassDef) -> bool:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for dec in item.decorator_list:
                name = _dotted(dec)
                if name and name.split(".")[-1] == "abstractmethod":
                    return True
        return False

    def _check_hooks(
        self, src: LintSource, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if self._is_abstract(node):
            return
        defined = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        missing = [h for h in self.REQUIRED_HOOKS if h not in defined]
        if missing:
            yield self.finding(
                src,
                node,
                f"policy class {node.name} does not override required "
                f"hook(s): {', '.join(missing)}",
            )

    def _check_mutation(
        self, src: LintSource, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in ast.walk(node):
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = item.args
            params = {
                a.arg
                for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                )
            }
            if "candidates" not in params:
                continue
            for stmt in ast.walk(item):
                bad = self._mutation_site(stmt)
                if bad is not None:
                    yield self.finding(
                        src,
                        stmt,
                        f"method {item.name} mutates the 'candidates' "
                        f"parameter ({bad}); copy it first",
                    )

    def _mutation_site(self, stmt: ast.AST) -> Optional[str]:
        if isinstance(stmt, ast.Call):
            func = stmt.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "candidates"
                and func.attr in self._MUTATORS
            ):
                return f"candidates.{func.attr}()"
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                stmt.targets
                if isinstance(stmt, (ast.Assign, ast.Delete))
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "candidates"
                ):
                    return "item assignment"
                if (
                    isinstance(stmt, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id == "candidates"
                ):
                    return "augmented assignment"
        return None


@register_rule
class DataclassSlots(LintRule):
    """ZS004: ``core/`` dataclasses must declare ``slots=True``.

    The hot paths allocate result and statistics objects per access;
    ``slots=True`` cuts per-instance memory and speeds attribute access,
    and rejects typo'd attribute writes that a ``__dict__`` would
    silently absorb (exactly the failure mode a sanitizer exists to
    catch).
    """

    code = "ZS004"
    name = "dataclass-slots"
    summary = "core/ dataclasses declare slots=True"

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        """Only files under a ``core`` directory are hot-path scoped."""
        return "core" in path.parts

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag ``@dataclass`` decorations lacking ``slots=True``."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for dec in node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                name = _dotted(target)
                if not name or name.split(".")[-1] != "dataclass":
                    continue
                if isinstance(dec, ast.Call) and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                ):
                    continue
                yield self.finding(
                    src,
                    node,
                    f"dataclass {node.name} in core/ must declare "
                    "slots=True (hot-path allocation)",
                )


@register_rule
class WallClockGlobalState(LintRule):
    """ZS005: no wall-clock reads or ``global`` state in simulation logic.

    Simulated time comes from the timeline model, never the host clock;
    a ``time.time()`` in a simulation path makes results
    machine-dependent. Likewise ``global`` statements introduce hidden
    cross-run state that defeats seed-based reproducibility. The CLI,
    the analysis tooling, the observability layer (whose profiler
    and heartbeat legitimately measure the simulator *process*), and
    the ZServe service layer (which measures real request latency on
    real traffic) are out of scope.
    """

    code = "ZS005"
    name = "wall-clock-global-state"
    summary = "simulation logic reads no host clock and mutates no globals"

    _WALLCLOCK = frozenset(
        {
            "time", "time_ns", "perf_counter", "perf_counter_ns",
            "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        }
    )
    _DATETIME = frozenset({"now", "utcnow", "today"})

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        """Everything except the CLI, analysis, obs and serve layers."""
        posix = path.as_posix()
        if posix.endswith("repro/cli.py"):
            return False
        if "repro/obs" in posix or "repro/serve" in posix:
            return False
        return "repro/analysis" not in posix

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag host-clock reads, clock imports, and global statements."""
        tree = src.tree
        time_names = _import_aliases(tree, "time")
        datetime_names = _import_aliases(tree, "datetime")
        for node in ast.walk(tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    src,
                    node,
                    "'global' statement mutates module state; pass state "
                    "explicitly (seed-reproducibility contract)",
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._WALLCLOCK:
                            yield self.finding(
                                src,
                                node,
                                f"'from time import {alias.name}' pulls the "
                                "host clock into simulation logic",
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in time_names
                    and parts[1] in self._WALLCLOCK
                ):
                    yield self.finding(
                        src,
                        node,
                        f"{dotted}() reads the host clock; simulated time "
                        "comes from the timeline model",
                    )
                elif (
                    len(parts) >= 2
                    and parts[-1] in self._DATETIME
                    and (
                        parts[0] in datetime_names
                        or "datetime" in parts[:-1]
                        or parts[-2] in ("datetime", "date")
                    )
                ):
                    yield self.finding(
                        src,
                        node,
                        f"{dotted}() reads the wall clock; simulation "
                        "results must not depend on the host date",
                    )


@register_rule
class CounterBypass(LintRule):
    """ZS006: hot-path counters go through the metrics registry.

    Since the ZScope layer, every statistics counter in ``core/`` and
    ``sim/`` is a registered :class:`~repro.obs.metrics.Counter`; the
    sanctioned increment is ``counter.value += 1`` on a cached counter
    reference (or through a :class:`~repro.obs.metrics.RegistryStats`
    facade's ``counters()`` dict). A plain attribute increment —
    ``self.stats.hits += 1`` or a bare ``self.total_misses += 1`` —
    creates a shadow counter the registry never sees, so metric
    snapshots, ``zcache-repro stats`` and trace summaries silently
    under-report. Private epoch-local accumulators (underscore-prefixed)
    are fine: they are bookkeeping, not reported statistics.

    The ZTurbo kernels (``kernels/``) add a second hazard at their
    accumulator fold points: a vectorized stage computes a batch delta
    and must fold it *additively* into the registered counter. A plain
    assignment — ``counter.value = batch_total`` — overwrites whatever
    the counter already held (reference-path warm-up, invalidations,
    counts surviving a stats swap), so in kernels modules any ``=`` on
    a ``.value`` attribute is flagged alongside the facade bypasses.
    """

    code = "ZS006"
    name = "counter-bypass"
    summary = "core/sim counters increment registered Counters, not attributes"

    #: bare attribute names that are always reported statistics
    _VOCAB = frozenset(
        {
            "accesses", "reads", "writes", "hits", "misses", "evictions",
            "writebacks", "relocations", "invalidations", "walks",
            "candidates", "repeats", "swaps", "epochs", "upgrades",
        }
    )
    #: suffixes that mark an attribute as a counting statistic
    _SUFFIXES = (
        "_hits", "_misses", "_reads", "_writes", "_accesses", "_walks",
        "_wins", "_retries", "_probes", "_overflows", "_sent", "_fills",
    )

    @classmethod
    def applies_to(cls, path: Path) -> bool:
        """The hot-path packages (``core``/``sim``/``kernels`` dirs)."""
        return (
            "core" in path.parts
            or "sim" in path.parts
            or "kernels" in path.parts
        )

    def check(self, src: LintSource) -> Iterator[Finding]:
        """Flag ``+=``/``-=`` on counter-looking attributes.

        In kernels modules, additionally flag plain assignment to a
        ``.value`` attribute (an accumulator fold point must add, not
        overwrite).
        """
        in_kernels = "kernels" in src.path.parts
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AugAssign):
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                message = self._bypass_message(node.target)
                if message is not None:
                    yield self.finding(src, node, message)
            elif in_kernels and isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "value"
                    ):
                        yield self.finding(
                            src,
                            node,
                            "'=' on a Counter's .value overwrites counts "
                            "accumulated outside this kernel; fold the "
                            "batch delta additively (counter.value += delta)",
                        )

    def _bypass_message(self, target: ast.AST) -> Optional[str]:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return None
        name = node.attr
        if name == "value":
            # counter.value += 1 — the sanctioned registry increment.
            return None
        parent = node.value
        # (a) anything incremented through a stats facade:
        # self.stats.hits, cache.stats.data_writes, self.victim_stats.swaps
        parent_name = None
        if isinstance(parent, ast.Attribute):
            parent_name = parent.attr
        elif isinstance(parent, ast.Name):
            parent_name = parent.id
        if parent_name is not None and parent_name != "self" and (
            parent_name == "stats" or parent_name.endswith("_stats")
        ):
            return (
                f"'{parent_name}.{name} +=' bypasses the metrics registry; "
                "increment the registered Counter's .value (see "
                "repro.obs.metrics.RegistryStats.counters)"
            )
        # (b) a bare counter attribute on self: self.writeback_hits += 1
        if (
            isinstance(parent, ast.Name)
            and parent.id == "self"
            and not name.startswith("_")
            and (name in self._VOCAB or name.endswith(self._SUFFIXES))
        ):
            return (
                f"'self.{name} +=' keeps an ad-hoc counter the registry "
                "never sees; register it (repro.obs.metrics) and increment "
                "the Counter's .value"
            )
        return None
